"""Mergeable log-bucketed quantile sketch + the shared exact quantile.

``ServeMetrics`` used to keep the *full* latency sample list per source
and call ``np.percentile`` over it — O(requests) memory that cannot
merge across the sharded replicas the ROADMAP scale-out item demands.
:class:`QuantileSketch` is the replacement substrate: a from-scratch
DDSketch-style summary with

* **guaranteed relative error** — bucket ``k`` covers
  ``(γ^(k-1), γ^k]`` with ``γ = (1 + α) / (1 - α)``, so the bucket
  midpoint ``2 γ^k / (γ + 1)`` is within ``α`` of every value it
  absorbs; any rank query is therefore within ``α`` (relative) of the
  exact order statistic, and the linear interpolation between two
  adjacent rank estimates is within ``α`` of numpy's default
  interpolated percentile for non-negative data;
* **O(log range) memory** — occupied buckets only, independent of the
  number of observations;
* **exact sidecars** — count, min, max and a fixed-point exact sum
  (every finite double is an integer multiple of ``2**-1074``, so the
  sum is a big int and addition is truly associative/commutative);
* **associative, commutative merge** — bucket counts, the zero/negative
  stores and every sidecar are order-independent accumulators, so
  ``merge(a, b)`` is byte-identical (via :meth:`to_json`) to ingesting
  the union stream in any order — the property shard fan-in needs;
* **byte-stable JSON** — :meth:`to_json` / :meth:`from_json` round-trip
  the exact state with sorted keys and compact separators.

Validity floor: bucket midpoints are reconstructed through
``math.exp``, whose subnormal rounding grows past ``α`` for magnitudes
below ``~1e-320``; such values are still counted exactly (count / sum /
min / max) but their quantile estimate degrades to subnormal spacing.
Every physical timing population is > 1e-12 s, far inside the envelope.

:func:`exact_quantile` is the one shared exact path (moved here from
``obs/profile``): a pure-Python linear-interpolation quantile over a
pre-sorted sequence, matching numpy's default ``linear`` method without
pairwise summation or dtype promotion, so results are a deterministic
function of the input floats.  Bounded populations (per-kind span
durations, a certification pass over a recorded run) use it directly;
unbounded per-request populations go through the sketch.
"""

from __future__ import annotations

import json
import math
from typing import Sequence

__all__ = ["DEFAULT_ALPHA", "QuantileSketch", "exact_quantile"]

#: Default guaranteed relative error for timing populations: 1% is far
#: below any latency SLO band while keeping the bucket count for a
#: nanoseconds-to-minutes range around ~1200.
DEFAULT_ALPHA = 0.01

#: Fixed-point scale for the exact sum sidecar (see
#: :class:`repro.obs.metrics.Histogram`, which uses the same encoding):
#: the smallest positive subnormal double is ``2**-1074``.
_SUM_FIXED_SHIFT = 1074


def _to_fixed(value: float) -> int:
    """Exact big-int encoding of a finite double, scaled by ``2**1074``."""
    num, den = value.as_integer_ratio()
    return num << (_SUM_FIXED_SHIFT - (den.bit_length() - 1))


def exact_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted values, pure Python.

    Matches numpy's default ``linear`` method but avoids pairwise
    summation and dtype promotion entirely — the result is a
    deterministic function of the input floats, independent of numpy
    version or SIMD width.  ``q`` is in [0, 1].
    """
    n = len(sorted_values)
    if n == 0:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(pos)
    if lo >= n - 1:
        return float(sorted_values[n - 1])
    frac = pos - lo
    below = float(sorted_values[lo])
    above = float(sorted_values[lo + 1])
    return below + (above - below) * frac


class QuantileSketch:
    """Deterministic mergeable quantile sketch with relative-error α.

    Parameters
    ----------
    name:
        Metric name (dotted path when registry-owned).
    alpha:
        Guaranteed relative error of any quantile estimate, in (0, 1).
        Two sketches merge only when their ``alpha`` matches exactly —
        bucket indices are not convertible across resolutions.
    """

    __slots__ = (
        "name",
        "alpha",
        "_gamma",
        "_log_gamma",
        "buckets",
        "neg_buckets",
        "n_zero",
        "count",
        "_sum_fixed",
        "vmin",
        "vmax",
    )

    def __init__(self, name: str, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.name = name
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count, for positive observations
        self.buckets: dict[int, int] = {}
        #: bucket index of |v| -> count, for negative observations
        self.neg_buckets: dict[int, int] = {}
        self.n_zero = 0
        self.count = 0
        self._sum_fixed = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    # -- ingestion -----------------------------------------------------

    def _key(self, magnitude: float) -> int:
        """Log-bucket index of a positive magnitude."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_value(self, key: int) -> float:
        """Representative (midpoint) value of bucket ``key``.

        ``exp`` can overflow for keys near the top of the double range;
        the estimate is clamped to the exact ``[vmin, vmax]`` sidecars
        by every caller, so saturating to infinity here is safe.
        """
        try:
            power = math.exp(key * self._log_gamma)
        except OverflowError:
            return float("inf")
        return 2.0 * power / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        """Fold one observation into the buckets and exact sidecars."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"sketch {self.name!r} observed non-finite {value!r}")
        if value > 0.0:
            key = self._key(value)
            self.buckets[key] = self.buckets.get(key, 0) + 1
        elif value < 0.0:
            key = self._key(-value)
            self.neg_buckets[key] = self.neg_buckets.get(key, 0) + 1
        else:
            self.n_zero += 1
        self.count += 1
        self._sum_fixed += _to_fixed(value)
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    # -- exact sidecars ------------------------------------------------

    @property
    def total(self) -> float:
        """Correctly rounded exact sum of all observations."""
        try:
            return self._sum_fixed / (1 << _SUM_FIXED_SHIFT)
        except OverflowError:
            return float("inf") if self._sum_fixed > 0 else float("-inf")

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def n_buckets(self) -> int:
        """Occupied buckets — the memory footprint, O(log range)."""
        return len(self.buckets) + len(self.neg_buckets) + (1 if self.n_zero else 0)

    # -- quantiles -----------------------------------------------------

    def _value_at_rank(self, rank: int) -> float:
        """Estimate of the 0-indexed order statistic ``rank``.

        Walks the buckets in ascending value order: negatives (largest
        |v| first), the zero store, then positives.
        """
        seen = 0
        for key in sorted(self.neg_buckets, reverse=True):
            seen += self.neg_buckets[key]
            if seen > rank:
                return -self._bucket_value(key)
        seen += self.n_zero
        if seen > rank:
            return 0.0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen > rank:
                return self._bucket_value(key)
        return self.vmax

    def quantile(self, q: float) -> float:
        """Quantile estimate, ``q`` in [0, 1]; NaN when empty.

        Interpolates linearly between the two adjacent order-statistic
        estimates at ``q * (count - 1)`` — numpy's default ``linear``
        positioning — and clamps to the exact observed ``[min, max]``,
        so ``q = 0``/``q = 1`` (and any single-observation sketch) are
        exact.  For non-negative data the result is within ``alpha``
        (relative) of the exact interpolated quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        if q == 0.0:
            return self.vmin
        pos = q * (self.count - 1)
        lo = int(pos)
        if lo >= self.count - 1:
            return self.vmax
        frac = pos - lo
        below = self._value_at_rank(lo)
        above = below if frac == 0.0 else self._value_at_rank(lo + 1)
        estimate = below + (above - below) * frac
        return min(max(estimate, self.vmin), self.vmax)

    # -- merge ---------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch with identical ``alpha`` into this one.

        Every accumulator is an order-independent integer (or min/max),
        so merging is associative and commutative and the merged state
        is byte-identical to single-stream ingestion of the union.
        """
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.name!r} has {self.alpha}, {other.name!r} has "
                f"{other.alpha})"
            )
        for key, n in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + n
        for key, n in other.neg_buckets.items():
            self.neg_buckets[key] = self.neg_buckets.get(key, 0) + n
        self.n_zero += other.n_zero
        self.count += other.count
        self._sum_fixed += other._sum_fixed
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    # -- serialization -------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready snapshot (exact sidecars + sparse bucket counts).

        Bucket keys are stringified in ascending numeric order; the
        canonical byte form is :meth:`to_json`.
        """
        return {
            "type": "sketch",
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "zero": self.n_zero,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
            "neg_buckets": {
                str(k): self.neg_buckets[k] for k in sorted(self.neg_buckets)
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable JSON: sorted keys, compact separators."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict, *, name: str | None = None) -> "QuantileSketch":
        """Rebuild a sketch from an :meth:`as_dict` snapshot.

        The exact sum is reconstructed from the correctly rounded
        ``sum`` float; because the true sum of ``count`` doubles each a
        multiple of ``2**-1074`` rounds to a representable double for
        every population this repo produces, the round-trip is lossless
        in practice and :meth:`to_json` of the result is byte-identical
        (asserted by the sketch test suite).
        """
        if payload.get("type") != "sketch":
            raise ValueError(f"not a sketch snapshot: {payload.get('type')!r}")
        sketch = cls(name if name is not None else "sketch", alpha=payload["alpha"])
        sketch.count = int(payload["count"])
        sketch.n_zero = int(payload["zero"])
        sketch.buckets = {int(k): int(n) for k, n in payload["buckets"].items()}
        sketch.neg_buckets = {
            int(k): int(n) for k, n in payload["neg_buckets"].items()
        }
        if sketch.count:
            sketch.vmin = float(payload["min"])
            sketch.vmax = float(payload["max"])
            sketch._sum_fixed = _to_fixed(float(payload["sum"]))
        return sketch

    @classmethod
    def from_json(cls, text: str, *, name: str | None = None) -> "QuantileSketch":
        """Rebuild a sketch from its :meth:`to_json` string."""
        return cls.from_dict(json.loads(text), name=name)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch({self.name!r}, alpha={self.alpha}, "
            f"count={self.count}, n_buckets={self.n_buckets})"
        )
