"""Declarative SLOs, error-budget accounting, multi-window burn alerts.

The paper's effective-speedup argument (§III-D) is about *sustained*
surrogate service; operators of a sustained service reason in SLOs, not
end-of-run averages.  This module puts the SRE vocabulary on top of the
windowed substrate in :mod:`repro.obs.timeseries`:

* an :class:`SLOSpec` declares an objective — ``latency`` ("fraction of
  responses faster than ``threshold_s`` stays above ``target``") or
  ``availability`` ("fraction of requests actually served stays above
  ``target``") — plus the multi-window burn-rate alerting policy;
* the **error budget** is ``1 - target``; a window's *burn rate* is its
  bad-event fraction divided by the budget, so burn 1.0 spends budget
  exactly at the sustainable rate and burn 14 exhausts a 30-day budget
  in ~2 days — the classic SRE calibration;
* alerts use the **multi-window (fast/slow) discipline**: fire only
  when *both* a short trailing window (fast detection) and a longer one
  (evidence the condition is sustained) exceed their burn thresholds.
  Alerts route through the existing
  :class:`~repro.obs.monitor.AlertManager` (cooldown dedup, severity
  ranking, byte-stable logs).

Determinism contract: the engine is a pure function of the span
sequence — events land in tumbling windows keyed by virtual-clock
coordinates, trailing sums are integer arithmetic, and the alert log is
byte-identical between a live run and a trace replay
(``python -m repro.obs slo``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Sequence

from repro.obs.monitor import (
    SEVERITIES,
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
    Alert,
    AlertManager,
)
from repro.obs.span import Span
from repro.obs.timeseries import WindowSpec

__all__ = [
    "SLO_LATENCY",
    "SLO_AVAILABILITY",
    "SLO_KINDS",
    "SLOSpec",
    "SLOEngine",
    "default_slo_specs",
    "slo_report",
    "dumps_slo",
    "render_slo_text",
]

SLO_LATENCY = "latency"
SLO_AVAILABILITY = "availability"
#: Objective kinds an :class:`SLOSpec` can declare.
SLO_KINDS = (SLO_LATENCY, SLO_AVAILABILITY)

#: Span names that count as a served-or-dropped request outcome.
_OUTCOME_SPANS = frozenset(
    {"reject", "shed", "cache_hit", "uq_row", "degraded_row", "fallback"}
)
_DROPPED_SPANS = frozenset({"reject", "shed"})


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective with its alert policy.

    Attributes
    ----------
    name:
        Stable identifier; becomes the alert ``source``.
    kind:
        :data:`SLO_LATENCY` (bad = response slower than ``threshold_s``)
        or :data:`SLO_AVAILABILITY` (bad = request shed or rejected).
    target:
        Objective in (0, 1); the error budget is ``1 - target``.
    threshold_s:
        Latency threshold; required for ``latency`` specs.
    fast_windows / slow_windows:
        Trailing-window lengths in *base windows* for the fast (detect)
        and slow (sustain) burn conditions; ``slow_windows`` must be
        >= ``fast_windows``.
    fast_burn / slow_burn:
        Burn-rate thresholds; an alert needs both trailing windows at
        or above their threshold simultaneously.
    min_events:
        Minimum events in the fast trailing window before it can fire —
        sparse windows make burn a noise amplifier.
    severity:
        Severity of the fired alert (one of
        :data:`~repro.obs.monitor.SEVERITIES`).
    """

    name: str
    kind: str
    target: float
    threshold_s: float | None = None
    fast_windows: int = 2
    slow_windows: int = 8
    fast_burn: float = 10.0
    slow_burn: float = 5.0
    min_events: int = 20
    severity: str = SEVERITY_CRITICAL

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == SLO_LATENCY and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError(
                f"latency SLO {self.name!r} needs threshold_s > 0, "
                f"got {self.threshold_s}"
            )
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError(
                f"require slow_windows >= fast_windows >= 1, got "
                f"fast={self.fast_windows} slow={self.slow_windows}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be > 0")
        if self.min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {self.min_events}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def budget(self) -> float:
        """Error budget: tolerable bad-event fraction, ``1 - target``."""
        return 1.0 - self.target

    def classify(self, span: Span) -> tuple[int, int]:
        """``(events, bad)`` contribution of one span to this objective."""
        if self.kind == SLO_AVAILABILITY:
            if span.name not in _OUTCOME_SPANS:
                return (0, 0)
            if span.name == "uq_row" and span.attrs.get("lat") is None:
                return (0, 0)  # row not yet a response (deferred to fallback)
            return (1, 1 if span.name in _DROPPED_SPANS else 0)
        lat = span.attrs.get("lat")
        if lat is None:
            return (0, 0)
        return (1, 1 if float(lat) > self.threshold_s else 0)

    def to_dict(self) -> dict:
        """JSON-ready declaration (embedded in SLO reports)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold_s": self.threshold_s,
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "min_events": self.min_events,
            "severity": self.severity,
        }


class SLOEngine:
    """Folds a span stream into per-SLO windows and fires burn alerts.

    Two-phase and fully deterministic: :meth:`feed` lands every span's
    ``(events, bad)`` contribution in its virtual-time window as plain
    integer counts (order-independent addition), then :meth:`evaluate`
    walks the occupied window range once, maintains trailing fast/slow
    sums, and routes multi-window burn alerts through the
    :class:`~repro.obs.monitor.AlertManager`.  Feeding a trace replay
    produces the same alert log byte-for-byte as the live run.
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec],
        *,
        window: float = 0.05,
        origin: float = 0.0,
        manager: AlertManager | None = None,
    ):
        if not specs:
            raise ValueError("SLOEngine needs at least one spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO spec names: {names}")
        self.specs = list(specs)
        self.spec_window = WindowSpec(float(window), float(origin))
        self.manager = manager if manager is not None else AlertManager(cooldown=0.2)
        #: spec name -> {window index -> [events, bad]}
        self._windows: dict[str, dict[int, list[int]]] = {
            s.name: {} for s in self.specs
        }
        self.n_spans = 0

    def feed(self, spans: Sequence[Span]) -> None:
        """Fold spans into per-spec window counts (no alerts yet)."""
        for span in spans:
            self.n_spans += 1
            for spec in self.specs:
                events, bad = spec.classify(span)
                if events == 0:
                    continue
                idx = self.spec_window.index(span.t_end)
                cell = self._windows[spec.name].get(idx)
                if cell is None:
                    self._windows[spec.name][idx] = [events, bad]
                else:
                    cell[0] += events
                    cell[1] += bad

    def _trailing(self, counts: dict[int, list[int]], idx: int, n: int) -> tuple[int, int]:
        events = bad = 0
        for j in range(idx - n + 1, idx + 1):
            cell = counts.get(j)
            if cell is not None:
                events += cell[0]
                bad += cell[1]
        return events, bad

    def evaluate(self) -> list[Alert]:
        """Walk the occupied windows and fire multi-window burn alerts.

        Returns the fired alerts (post-dedup); the full log stays on
        :attr:`manager`.  Evaluation order is spec order then window
        order, so the log is deterministic.
        """
        fired: list[Alert] = []
        for spec in self.specs:
            counts = self._windows[spec.name]
            if not counts:
                continue
            budget = spec.budget
            for idx in range(min(counts), max(counts) + 1):
                fast_events, fast_bad = self._trailing(counts, idx, spec.fast_windows)
                if fast_events < spec.min_events:
                    continue
                fast_burn = (fast_bad / fast_events) / budget
                if fast_burn < spec.fast_burn:
                    continue
                slow_events, slow_bad = self._trailing(counts, idx, spec.slow_windows)
                slow_burn = (slow_bad / slow_events) / budget
                if slow_burn < spec.slow_burn:
                    continue
                t = self.spec_window.end(idx)
                alert = self.manager.fire(
                    Alert(
                        t=t,
                        source=spec.name,
                        kind="slo_burn",
                        severity=spec.severity,
                        message=(
                            f"{spec.kind} SLO burn: fast {fast_burn:.1f}x over "
                            f"{spec.fast_windows} window(s) "
                            f"({fast_bad}/{fast_events} bad), slow "
                            f"{slow_burn:.1f}x over {spec.slow_windows} "
                            f"(target {spec.target:g})"
                        ),
                        attrs={
                            "window": int(idx),
                            "fast_burn": float(fast_burn),
                            "slow_burn": float(slow_burn),
                            "fast_bad": int(fast_bad),
                            "fast_events": int(fast_events),
                            "slow_bad": int(slow_bad),
                            "slow_events": int(slow_events),
                            "target": spec.target,
                        },
                    )
                )
                if alert is not None:
                    fired.append(alert)
        return fired

    def budget_summary(self, spec: SLOSpec) -> dict:
        """Whole-run error-budget accounting for one spec."""
        counts = self._windows[spec.name]
        events = sum(c[0] for c in counts.values())
        bad = sum(c[1] for c in counts.values())
        bad_fraction = bad / events if events else 0.0
        consumed = bad_fraction / spec.budget if events else 0.0
        return {
            "spec": spec.to_dict(),
            "events": int(events),
            "bad": int(bad),
            "bad_fraction": bad_fraction,
            "budget": spec.budget,
            "budget_consumed": consumed,
            "budget_remaining": 1.0 - consumed,
            "compliant": bad_fraction <= spec.budget,
            "n_windows": len(counts),
        }


def default_slo_specs(
    *,
    latency_threshold_s: float = 0.25,
    latency_target: float = 0.9,
    availability_target: float = 0.95,
) -> tuple[SLOSpec, ...]:
    """The canonical serve SLOs.

    Tuned against the committed serve traces: the healthy trace (steady
    mixed cache/NN/fallback traffic) stays inside budget and fires
    nothing, while the drift trace's monitor-triggered retrain stall —
    a burst of batched lookups stuck behind the 0.5 s virtual retrain —
    pushes the fast and slow latency burn over threshold within a few
    windows of the injection.  Both the bench and the ``repro.obs slo``
    CLI build specs here, the precondition for byte-identical live and
    replayed SLO reports.
    """
    return (
        SLOSpec(
            name="serve_latency",
            kind=SLO_LATENCY,
            target=latency_target,
            threshold_s=latency_threshold_s,
            fast_windows=2,
            slow_windows=8,
            fast_burn=5.0,
            slow_burn=2.5,
            min_events=20,
            severity=SEVERITY_CRITICAL,
        ),
        SLOSpec(
            name="serve_availability",
            kind=SLO_AVAILABILITY,
            target=availability_target,
            fast_windows=2,
            slow_windows=8,
            fast_burn=5.0,
            slow_burn=2.5,
            min_events=20,
            severity=SEVERITY_WARNING,
        ),
    )


def slo_report(
    spans: Sequence[Span],
    specs: Sequence[SLOSpec] | None = None,
    *,
    window: float = 0.05,
    origin: float = 0.0,
    cooldown: float = 0.2,
) -> dict:
    """JSON-ready SLO evaluation of a recorded span stream.

    Pure function of the spans (plus the spec/window/cooldown
    configuration): the report embeds each spec's declaration, its
    whole-run error-budget accounting, the fired alert log, and each
    spec's first alert time — the burn-rate detection latency anchor
    the drift bench measures against the injection time.
    """
    specs = tuple(specs) if specs is not None else default_slo_specs()
    engine = SLOEngine(
        specs,
        window=window,
        origin=origin,
        manager=AlertManager(cooldown=cooldown),
    )
    engine.feed(spans)
    engine.evaluate()
    alerts = engine.manager.alerts
    first_alert: dict[str, float | None] = {}
    for spec in specs:
        ts = [a.t for a in alerts if a.source == spec.name]
        first_alert[spec.name] = min(ts) if ts else None
    return {
        "meta": {
            "window_s": engine.spec_window.width,
            "origin": engine.spec_window.origin,
            "cooldown_s": cooldown,
            "n_spans": engine.n_spans,
            "n_alerts": len(alerts),
        },
        "slos": {
            spec.name: engine.budget_summary(spec) for spec in specs
        },
        "first_alert_t": first_alert,
        "alerts": [a.to_dict() for a in alerts],
        "alert_summary": engine.manager.summary(),
    }


def dumps_slo(report: dict) -> str:
    """Canonical byte-stable JSON for an :func:`slo_report`."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def render_slo_text(report: dict) -> str:
    """Text dashboard: per-SLO budget lines, then the fired alert log."""
    meta = report["meta"]
    lines = [
        (
            f"slo: {len(report['slos'])} objective(s) over {meta['n_spans']} "
            f"span(s), window {meta['window_s']:g}s"
        )
    ]
    for name in sorted(report["slos"]):
        s = report["slos"][name]
        spec = s["spec"]
        threshold = (
            f" < {spec['threshold_s']:g}s" if spec["threshold_s"] is not None else ""
        )
        status = "OK " if s["compliant"] else "BURN"
        lines.append(
            f"  [{status}] {name} ({spec['kind']}{threshold}, target "
            f"{spec['target']:g}): {s['bad']}/{s['events']} bad "
            f"({s['bad_fraction']:.4f}), budget consumed "
            f"{s['budget_consumed']:.2f}x"
        )
        first = report["first_alert_t"].get(name)
        if first is not None:
            lines.append(f"         first burn alert at t={first:.6g}s")
    alerts = [Alert.from_dict(a) for a in report["alerts"]]
    if alerts:
        lines.append(f"{len(alerts)} burn alert(s):")
        for a in alerts:
            lines.append(
                f"  [{a.severity:<8}] t={a.t:.6g} {a.source}: {a.message}"
            )
    else:
        lines.append("no burn alerts")
    return "\n".join(lines)
