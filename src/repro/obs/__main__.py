"""Module entry point for ``python -m repro.obs``."""

from repro.obs.cli import main

__all__: list[str] = []

if __name__ == "__main__":
    raise SystemExit(main())
