"""Trace export: JSONL event log writer/reader and summary reporters.

The on-disk format is one JSON object per line, deterministic byte for
byte (sorted keys, compact separators) so a replayed run's trace file
can be compared with ``cmp``:

* line 1 — ``{"event": "header", "version": 1, "meta": {...}}`` carrying
  the tracer's free-form metadata (seeds, cost constants, ``t_seq``);
* every further line — ``{"event": "span", ...}`` with the
  :meth:`~repro.obs.span.Span.to_dict` body, in the tracer's *record*
  (completion) order.

Record order — not span-id order — is load-bearing: it is the order the
live monitoring suite (:mod:`repro.obs.monitor`) saw the spans, so
replaying a file through :func:`~repro.obs.monitor.watch_trace`
reproduces the live alert log byte for byte.  Consumers that need a
canonical order (:func:`repro.obs.summary.summarize`,
:func:`repro.obs.summary.ledger_from_spans`) sort by span id internally.

Paths ending in ``.gz`` are read and written gzip-compressed,
transparently and still byte-stably (fixed mtime, no embedded filename),
so large traces can be committed without losing ``cmp``-ability.

The text/JSON reporters follow the same protocol as
:mod:`repro.analysis.reporters`: pure functions from a summary dict to a
string, so the CLI and CI consume one stable surface.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Sequence

from repro.obs.span import Span

__all__ = [
    "TRACE_VERSION",
    "dumps_trace",
    "loads_trace",
    "write_trace",
    "read_trace",
    "render_text",
    "render_json",
]

TRACE_VERSION = 1


def _as_spans(trace) -> list[Span]:
    """Accept a Tracer (anything with ``.spans``/``.meta``) or a span list."""
    return list(trace.spans if hasattr(trace, "spans") else trace)


def dumps_trace(trace, *, meta: dict | None = None) -> str:
    """Serialize a trace to its canonical JSONL string.

    ``trace`` is a :class:`~repro.obs.trace.Tracer` or a sequence of
    spans; ``meta`` overrides the tracer's own metadata when given.
    Output is deterministic: spans in the given (record) order, keys
    sorted, compact separators, trailing newline.
    """
    if meta is None:
        meta = getattr(trace, "meta", None) or {}
    lines = [
        json.dumps(
            {"event": "header", "version": TRACE_VERSION, "meta": meta},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for span in _as_spans(trace):
        body = {"event": "span"}
        body.update(span.to_dict())
        lines.append(json.dumps(body, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def loads_trace(text: str) -> tuple[list[Span], dict]:
    """Parse a JSONL trace string back into ``(spans, meta)``.

    Spans are returned in file order (the tracer's record order, for
    round-trip and alert-replay fidelity).  Unknown event types are
    rejected so a corrupt or foreign file fails loudly rather than
    silently dropping data.
    """
    spans: list[Span] = []
    meta: dict = {}
    saw_header = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        payload = json.loads(raw)
        event = payload.get("event")
        if event == "header":
            if saw_header:
                raise ValueError(f"line {lineno}: duplicate trace header")
            version = payload.get("version")
            if version != TRACE_VERSION:
                raise ValueError(
                    f"line {lineno}: unsupported trace version {version!r}"
                )
            meta = dict(payload.get("meta", {}))
            saw_header = True
        elif event == "span":
            spans.append(Span.from_dict(payload))
        else:
            raise ValueError(f"line {lineno}: unknown trace event {event!r}")
    if not saw_header:
        raise ValueError("trace has no header line")
    return spans, meta


def _is_gzip(path: Path) -> bool:
    return path.suffix == ".gz"


def write_trace(path: str | Path, trace, *, meta: dict | None = None) -> Path:
    """Write a trace as JSONL to ``path``; returns the path.

    A ``.gz`` suffix selects transparent gzip compression.  The gzip
    stream is built with a zeroed mtime and no embedded filename, so the
    compressed bytes — like the plain ones — depend only on the trace
    content.
    """
    path = Path(path)
    text = dumps_trace(trace, meta=meta)
    if _is_gzip(path):
        raw = io.BytesIO()
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as zf:
            zf.write(text.encode("utf-8"))
        path.write_bytes(raw.getvalue())
    else:
        path.write_text(text)
    return path


def read_trace(path: str | Path) -> tuple[list[Span], dict]:
    """Read a JSONL trace file (plain or ``.gz``) into ``(spans, meta)``."""
    path = Path(path)
    if _is_gzip(path):
        text = gzip.decompress(path.read_bytes()).decode("utf-8")
    else:
        text = path.read_text()
    return loads_trace(text)


# ----------------------------------------------------------------------
# Reporters over the summary dict produced by repro.obs.summary.summarize.
def render_text(summary: dict) -> str:
    """Human-readable report: kind table, critical path, slowest spans."""
    lines = [
        f"trace: {summary['n_spans']} spans over "
        f"{summary['wall_seconds']:.6g} s "
        f"[{summary['t_min']:.6g}, {summary['t_max']:.6g}]"
    ]
    lines.append("per-kind totals:")
    for kind, row in summary["kinds"].items():
        lines.append(
            f"  {kind:<12} count {row['count']:>7}  "
            f"total {row['total_seconds']:.6g} s  "
            f"mean {row['mean_seconds']:.3g} s"
        )
    path = summary["critical_path"]
    lines.append(
        f"critical path ({summary['critical_path_seconds']:.6g} s, "
        f"{len(path)} spans):"
    )
    for hop in path:
        lines.append(
            f"  #{hop['id']} {hop['name']} [{hop['kind']}] "
            f"{hop['duration']:.6g} s"
        )
    lines.append("slowest spans:")
    for hop in summary["slowest"]:
        lines.append(
            f"  #{hop['id']} {hop['name']} [{hop['kind']}] "
            f"{hop['duration']:.6g} s @ t={hop['t_start']:.6g}"
        )
    effective = summary.get("effective")
    if effective is not None:
        lines.append(
            "effective speedup (§III-D, from ledger-kind spans alone): "
            f"S = {effective['speedup']:.4g} at "
            f"n_lookup={effective['n_lookup']}, "
            f"n_train={effective['n_train']} "
            f"(lookup limit {effective['lookup_limit']:.4g})"
        )
    else:
        lines.append("effective speedup: n/a (no simulate+lookup spans)")
    return "\n".join(lines)


def render_json(summary: dict) -> str:
    """Machine-readable report: the summary dict, stable key order."""
    return json.dumps(summary, indent=2, sort_keys=True)
