"""Trace export: JSONL event log writer/reader and summary reporters.

The on-disk format is one JSON object per line, deterministic byte for
byte (sorted keys, compact separators) so a replayed run's trace file
can be compared with ``cmp``:

* line 1 — ``{"event": "header", "version": 1, "meta": {...}}`` carrying
  the tracer's free-form metadata (seeds, cost constants, ``t_seq``);
* every further line — ``{"event": "span", ...}`` with the
  :meth:`~repro.obs.span.Span.to_dict` body, in span-id order.

The text/JSON reporters follow the same protocol as
:mod:`repro.analysis.reporters`: pure functions from a summary dict to a
string, so the CLI and CI consume one stable surface.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.obs.span import Span

__all__ = [
    "TRACE_VERSION",
    "dumps_trace",
    "loads_trace",
    "write_trace",
    "read_trace",
    "render_text",
    "render_json",
]

TRACE_VERSION = 1


def _as_spans(trace) -> list[Span]:
    """Accept a Tracer (anything with ``.spans``/``.meta``) or a span list."""
    spans = trace.spans if hasattr(trace, "spans") else list(trace)
    return sorted(spans, key=lambda s: s.span_id)


def dumps_trace(trace, *, meta: dict | None = None) -> str:
    """Serialize a trace to its canonical JSONL string.

    ``trace`` is a :class:`~repro.obs.trace.Tracer` or a sequence of
    spans; ``meta`` overrides the tracer's own metadata when given.
    Output is deterministic: spans sorted by id, keys sorted, compact
    separators, trailing newline.
    """
    if meta is None:
        meta = getattr(trace, "meta", None) or {}
    lines = [
        json.dumps(
            {"event": "header", "version": TRACE_VERSION, "meta": meta},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for span in _as_spans(trace):
        body = {"event": "span"}
        body.update(span.to_dict())
        lines.append(json.dumps(body, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def loads_trace(text: str) -> tuple[list[Span], dict]:
    """Parse a JSONL trace string back into ``(spans, meta)``.

    Spans are returned in span-id order.  Unknown event types are
    rejected so a corrupt or foreign file fails loudly rather than
    silently dropping data.
    """
    spans: list[Span] = []
    meta: dict = {}
    saw_header = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        payload = json.loads(raw)
        event = payload.get("event")
        if event == "header":
            if saw_header:
                raise ValueError(f"line {lineno}: duplicate trace header")
            version = payload.get("version")
            if version != TRACE_VERSION:
                raise ValueError(
                    f"line {lineno}: unsupported trace version {version!r}"
                )
            meta = dict(payload.get("meta", {}))
            saw_header = True
        elif event == "span":
            spans.append(Span.from_dict(payload))
        else:
            raise ValueError(f"line {lineno}: unknown trace event {event!r}")
    if not saw_header:
        raise ValueError("trace has no header line")
    return sorted(spans, key=lambda s: s.span_id), meta


def write_trace(path: str | Path, trace, *, meta: dict | None = None) -> Path:
    """Write a trace as JSONL to ``path``; returns the path."""
    path = Path(path)
    path.write_text(dumps_trace(trace, meta=meta))
    return path


def read_trace(path: str | Path) -> tuple[list[Span], dict]:
    """Read a JSONL trace file back into ``(spans, meta)``."""
    return loads_trace(Path(path).read_text())


# ----------------------------------------------------------------------
# Reporters over the summary dict produced by repro.obs.summary.summarize.
def render_text(summary: dict) -> str:
    """Human-readable report: kind table, critical path, slowest spans."""
    lines = [
        f"trace: {summary['n_spans']} spans over "
        f"{summary['wall_seconds']:.6g} s "
        f"[{summary['t_min']:.6g}, {summary['t_max']:.6g}]"
    ]
    lines.append("per-kind totals:")
    for kind, row in summary["kinds"].items():
        lines.append(
            f"  {kind:<12} count {row['count']:>7}  "
            f"total {row['total_seconds']:.6g} s  "
            f"mean {row['mean_seconds']:.3g} s"
        )
    path = summary["critical_path"]
    lines.append(
        f"critical path ({summary['critical_path_seconds']:.6g} s, "
        f"{len(path)} spans):"
    )
    for hop in path:
        lines.append(
            f"  #{hop['id']} {hop['name']} [{hop['kind']}] "
            f"{hop['duration']:.6g} s"
        )
    lines.append("slowest spans:")
    for hop in summary["slowest"]:
        lines.append(
            f"  #{hop['id']} {hop['name']} [{hop['kind']}] "
            f"{hop['duration']:.6g} s @ t={hop['t_start']:.6g}"
        )
    effective = summary.get("effective")
    if effective is not None:
        lines.append(
            "effective speedup (§III-D, from ledger-kind spans alone): "
            f"S = {effective['speedup']:.4g} at "
            f"n_lookup={effective['n_lookup']}, "
            f"n_train={effective['n_train']} "
            f"(lookup limit {effective['lookup_limit']:.4g})"
        )
    else:
        lines.append("effective speedup: n/a (no simulate+lookup spans)")
    return "\n".join(lines)


def render_json(summary: dict) -> str:
    """Machine-readable report: the summary dict, stable key order."""
    return json.dumps(summary, indent=2, sort_keys=True)
