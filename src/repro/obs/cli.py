"""Command-line interface: ``python -m repro.obs <command> trace.jsonl``.

Nine subcommands:

* ``summarize`` — per-span-kind totals, critical path, top-k slowest
  spans, and (when the trace carries ledger-kind spans) the §III-D
  effective-speedup block reconstructed from the trace alone;
* ``profile`` — the optimization view (:mod:`repro.obs.profile`):
  exclusive self-time per kind, top-k spans by self-time, and
  flame-style root→span name-path aggregation.  Inclusive per-kind
  totals agree with ``summarize`` bitwise; JSON output is byte-stable
  (run twice and ``cmp``);
* ``speedup`` — just the reconstructed
  :class:`~repro.core.effective.EffectiveSpeedupModel` inputs and the
  speedup at the trace's own lookup/simulate mix, as JSON;
* ``monitor`` — replay a trace through the default serve monitor suite
  (:func:`repro.obs.monitor.default_serve_monitors`) and print the alert
  log.  Because traces store spans in record order and the suite is a
  pure function of its span feed, the printed JSONL alert log is
  byte-identical to the one produced live — run it twice and ``cmp``;
* ``latency`` — per-request latency decomposition
  (:mod:`repro.obs.latency`): a tail scorecard from mergeable quantile
  sketches, stage blame by percentile band, and the critical stage per
  band.  Stage sums reproduce each recorded latency to ≤ 1e-9 and the
  JSON output is byte-stable;
* ``whatif`` — counterfactual projection (:mod:`repro.obs.whatif`):
  replay the recorded span trees under a hypothesis (``cache_miss_free``,
  ``half_batch_wait``, ``faster_fallback``) and report projected
  latency / effective-speedup deltas without re-running the DES;
* ``timeline`` — tumbling-window time series over the trace
  (:mod:`repro.obs.timeseries`): per-window response/shed/reject/cache
  counters, latency quantiles, labeled per-source / per-tenant
  children, and the hierarchical merge of every latency window (which
  is byte-identical to the whole-run sketch).  JSON output is
  byte-stable;
* ``slo`` — evaluate declarative SLOs (:mod:`repro.obs.slo`): error
  budgets, multi-window burn-rate alerts through the
  :class:`~repro.obs.monitor.AlertManager`, and per-objective budget
  accounting.  Replayed from a trace the report is byte-identical to
  the live run's — run it twice and ``cmp``;
* ``regress`` — compare a fresh ``BENCH_*.json`` report against the
  committed baseline (:mod:`repro.obs.regress`) and fail on regression.

Trace subcommands accept plain ``.jsonl`` and gzip ``.jsonl.gz`` files.
Exit codes: 0 = success, 1 = ``regress`` found a regression (or
``monitor --fail-on`` matched), 2 = usage or input error (missing file,
malformed JSONL, ``speedup`` on a trace without simulate+lookup spans).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.obs.export import read_trace, render_json, render_text
from repro.obs.latency import (
    DEFAULT_BANDS,
    latency_report,
    render_latency_json,
    render_latency_text,
)
from repro.obs.monitor import (
    SEVERITIES,
    default_serve_monitors,
    dumps_alerts,
    render_alerts_text,
    watch_trace,
)
from repro.obs.profile import profile, render_profile_json, render_profile_text
from repro.obs.regress import render_report_text, run_regress
from repro.obs.sketch import DEFAULT_ALPHA
from repro.obs.slo import (
    default_slo_specs,
    dumps_slo,
    render_slo_text,
    slo_report,
)
from repro.obs.summary import summarize
from repro.obs.timeseries import (
    dumps_timeline,
    render_timeline_text,
    timeline_report,
)
from repro.obs.whatif import (
    HYPOTHESES,
    render_whatif_json,
    render_whatif_text,
    whatif_report,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Summarize a repro.obs JSONL trace: per-kind totals, critical "
            "path, slowest spans, and the reconstructed §III-D effective "
            "speedup."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="profile a trace file")
    p_sum.add_argument("trace", help="JSONL trace file to summarize")
    p_sum.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_sum.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="number of slowest spans to report (default: %(default)s)",
    )

    p_prof = sub.add_parser(
        "profile",
        help="mine a trace for exclusive self-time, hot spans, flame paths",
    )
    p_prof.add_argument("trace", help="JSONL trace file to profile")
    p_prof.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_prof.add_argument(
        "--top-k",
        type=int,
        default=10,
        help="number of hot spans to report by self-time "
        "(default: %(default)s)",
    )

    p_speed = sub.add_parser(
        "speedup", help="emit only the reconstructed §III-D block as JSON"
    )
    p_speed.add_argument("trace", help="JSONL trace file to analyze")

    p_mon = sub.add_parser(
        "monitor", help="replay a trace through the drift/SLO monitor suite"
    )
    p_mon.add_argument("trace", help="JSONL trace file to monitor")
    p_mon.add_argument(
        "--format",
        choices=("jsonl", "text"),
        default="jsonl",
        help="alert log format: byte-stable JSONL or a ranked text report "
        "(default: %(default)s)",
    )
    p_mon.add_argument(
        "--window",
        type=float,
        default=0.05,
        help="window-monitor boundary spacing in trace seconds "
        "(default: %(default)s)",
    )
    p_mon.add_argument(
        "--cooldown",
        type=float,
        default=0.1,
        help="alert dedup cooldown per (source, kind) in trace seconds "
        "(default: %(default)s)",
    )
    p_mon.add_argument(
        "--slo-latency",
        type=float,
        default=0.05,
        help="latency SLO threshold in seconds (default: %(default)s)",
    )
    p_mon.add_argument(
        "--coverage-floor",
        type=float,
        default=0.5,
        help="UQ calibration coverage floor (default: %(default)s)",
    )
    p_mon.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default=None,
        help="exit 1 when any alert at or above this severity fired",
    )

    p_lat = sub.add_parser(
        "latency",
        help="decompose per-request latency into stages and blame the tail",
    )
    p_lat.add_argument("trace", help="JSONL serve trace file to decompose")
    p_lat.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_lat.add_argument(
        "--bands",
        type=float,
        nargs="+",
        default=list(DEFAULT_BANDS),
        help="percentile band boundaries in (0, 1), strictly increasing "
        "(default: %(default)s)",
    )
    p_lat.add_argument(
        "--alpha",
        type=float,
        default=DEFAULT_ALPHA,
        help="scorecard sketch relative-error bound (default: %(default)s)",
    )

    p_what = sub.add_parser(
        "whatif",
        help="project counterfactual latency from a recorded trace",
    )
    p_what.add_argument("trace", help="JSONL serve trace file to project over")
    p_what.add_argument(
        "--hypothesis",
        choices=HYPOTHESES,
        action="append",
        default=None,
        help="hypothesis to project (repeatable; default: all of them)",
    )
    p_what.add_argument(
        "--factor",
        type=float,
        default=0.5,
        help="scaling knob in (0, 1] for half_batch_wait / faster_fallback "
        "(default: %(default)s)",
    )
    p_what.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )

    p_tl = sub.add_parser(
        "timeline",
        help="fold a trace into tumbling-window time series",
    )
    p_tl.add_argument("trace", help="JSONL serve trace file to window")
    p_tl.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_tl.add_argument(
        "--window",
        type=float,
        default=0.05,
        help="tumbling-window width in trace seconds (default: %(default)s)",
    )
    p_tl.add_argument(
        "--downsample",
        type=int,
        default=1,
        help="coarsen by an integer factor via hierarchical window merges "
        "(default: %(default)s)",
    )
    p_tl.add_argument(
        "--alpha",
        type=float,
        default=DEFAULT_ALPHA,
        help="latency sketch relative-error bound (default: %(default)s)",
    )

    p_slo = sub.add_parser(
        "slo",
        help="evaluate SLO error budgets and burn-rate alerts over a trace",
    )
    p_slo.add_argument("trace", help="JSONL serve trace file to evaluate")
    p_slo.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_slo.add_argument(
        "--window",
        type=float,
        default=0.05,
        help="base burn-rate window width in trace seconds "
        "(default: %(default)s)",
    )
    p_slo.add_argument(
        "--latency-threshold",
        type=float,
        default=0.25,
        help="latency SLO threshold in seconds (default: %(default)s)",
    )
    p_slo.add_argument(
        "--latency-target",
        type=float,
        default=0.9,
        help="latency SLO target fraction (default: %(default)s)",
    )
    p_slo.add_argument(
        "--availability-target",
        type=float,
        default=0.95,
        help="availability SLO target fraction (default: %(default)s)",
    )
    p_slo.add_argument(
        "--cooldown",
        type=float,
        default=0.2,
        help="alert dedup cooldown per objective in trace seconds "
        "(default: %(default)s)",
    )
    p_slo.add_argument(
        "--fail-on-burn",
        action="store_true",
        help="exit 1 when any burn alert fired",
    )

    p_reg = sub.add_parser(
        "regress", help="gate a fresh bench report against a committed baseline"
    )
    p_reg.add_argument("baseline", help="committed BENCH_*.json baseline")
    p_reg.add_argument("fresh", help="freshly produced bench report")
    p_reg.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override every metric's own fractional tolerance",
    )
    p_reg.add_argument(
        "--output", default=None, help="also write the JSON report to this path"
    )
    p_reg.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: %(default)s)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the trace analyzer; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "regress":
        try:
            report = run_regress(
                args.baseline,
                args.fresh,
                tolerance=args.tolerance,
                output=args.output,
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: cannot compare bench reports: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report_text(report))
        return 0 if report["ok"] else 1

    trace_path = Path(args.trace)
    try:
        spans, meta = read_trace(trace_path)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {trace_path}: {exc}", file=sys.stderr)
        return 2

    if args.command == "profile":
        try:
            prof = profile(spans, meta=meta, top_k=args.top_k)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(render_profile_json(prof))
        else:
            print(render_profile_text(prof))
        return 0

    if args.command == "latency":
        try:
            report = latency_report(
                spans, meta=meta, bands=tuple(args.bands), alpha=args.alpha
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(render_latency_json(report))
        else:
            print(render_latency_text(report))
        return 0

    if args.command == "whatif":
        hypotheses = tuple(args.hypothesis) if args.hypothesis else HYPOTHESES
        try:
            report = whatif_report(
                spans, meta=meta, hypotheses=hypotheses, factor=args.factor
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(render_whatif_json(report))
        else:
            print(render_whatif_text(report))
        return 0

    if args.command == "speedup":
        summary = summarize(spans, meta=meta)
        effective = summary["effective"]
        if effective is None:
            print(
                f"error: {trace_path} has no simulate+lookup spans; "
                "cannot reconstruct the effective speedup",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(effective, indent=2, sort_keys=True))
        return 0

    if args.command == "timeline":
        try:
            report = timeline_report(
                spans,
                window=args.window,
                alpha=args.alpha,
                downsample=args.downsample,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            sys.stdout.write(dumps_timeline(report))
        else:
            print(render_timeline_text(report))
        return 0

    if args.command == "slo":
        try:
            specs = default_slo_specs(
                latency_threshold_s=args.latency_threshold,
                latency_target=args.latency_target,
                availability_target=args.availability_target,
            )
            report = slo_report(
                spans, specs, window=args.window, cooldown=args.cooldown
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            sys.stdout.write(dumps_slo(report))
        else:
            print(render_slo_text(report))
        if args.fail_on_burn and report["meta"]["n_alerts"]:
            return 1
        return 0

    if args.command == "monitor":
        suite = default_serve_monitors(
            window=args.window,
            cooldown=args.cooldown,
            slo_latency_s=args.slo_latency,
            coverage_floor=args.coverage_floor,
        )
        alerts = watch_trace(spans, suite)
        if args.format == "text":
            print(render_alerts_text(alerts, suite.manager))
        else:
            sys.stdout.write(dumps_alerts(alerts))
        if args.fail_on is not None:
            threshold = SEVERITIES.index(args.fail_on)
            if any(a.severity_rank >= threshold for a in alerts):
                return 1
        return 0

    try:
        summary = summarize(spans, meta=meta, top_k=args.top_k)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(summary))
    else:
        print(render_text(summary))
    return 0
