"""Command-line interface: ``python -m repro.obs <command> trace.jsonl``.

Two subcommands over a JSONL trace file:

* ``summarize`` — per-span-kind totals, critical path, top-k slowest
  spans, and (when the trace carries ledger-kind spans) the §III-D
  effective-speedup block reconstructed from the trace alone;
* ``speedup`` — just the reconstructed
  :class:`~repro.core.effective.EffectiveSpeedupModel` inputs and the
  speedup at the trace's own lookup/simulate mix, as JSON.

Exit codes: 0 = success, 2 = usage or trace error (missing file,
malformed JSONL, ``speedup`` on a trace without simulate+lookup spans).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.obs.export import read_trace, render_json, render_text
from repro.obs.summary import summarize

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Summarize a repro.obs JSONL trace: per-kind totals, critical "
            "path, slowest spans, and the reconstructed §III-D effective "
            "speedup."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="profile a trace file")
    p_sum.add_argument("trace", help="JSONL trace file to summarize")
    p_sum.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_sum.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="number of slowest spans to report (default: %(default)s)",
    )

    p_speed = sub.add_parser(
        "speedup", help="emit only the reconstructed §III-D block as JSON"
    )
    p_speed.add_argument("trace", help="JSONL trace file to analyze")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the trace analyzer; returns the process exit code."""
    args = build_parser().parse_args(argv)
    trace_path = Path(args.trace)
    try:
        spans, meta = read_trace(trace_path)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {trace_path}: {exc}", file=sys.stderr)
        return 2

    if args.command == "speedup":
        summary = summarize(spans, meta=meta)
        effective = summary["effective"]
        if effective is None:
            print(
                f"error: {trace_path} has no simulate+lookup spans; "
                "cannot reconstruct the effective speedup",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(effective, indent=2, sort_keys=True))
        return 0

    try:
        summary = summarize(spans, meta=meta, top_k=args.top_k)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(summary))
    else:
        print(render_text(summary))
    return 0
