"""Trace analysis: per-kind totals, critical path, §III-D reconstruction.

:func:`summarize` folds a span list into the profile the CLI reports;
:func:`ledger_from_spans` is the bridge back to the effective-performance
machinery — spans whose kind is one of
:data:`~repro.obs.span.LEDGER_KINDS` are replayed, in span-id order, into
a fresh :class:`~repro.util.timing.WallClockLedger`, so
:meth:`~repro.core.effective.EffectiveSpeedupModel.from_ledger` computes
the measured §III-D speedup from the trace file alone.  Because the
serving loop emits exactly one ledger-kind span per ledger record, the
reconstructed ledger matches the live one to float rounding and the
speedup agrees with ``BENCH_serve.json`` far inside its 2% acceptance
band.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.effective import EffectiveSpeedupModel
from repro.obs.span import LEDGER_KINDS, Span
from repro.util.timing import WallClockLedger

__all__ = ["ledger_from_spans", "critical_path", "summarize"]


def ledger_from_spans(spans: Sequence[Span]) -> WallClockLedger:
    """Rebuild the wall-clock ledger a traced run recorded.

    Only ledger-kind spans contribute; each adds its duration under its
    kind.  Replay order is span-id order — the order the live run
    recorded in — so float accumulation matches the original ledger.
    """
    ledger = WallClockLedger()
    for span in sorted(spans, key=lambda s: s.span_id):
        if span.kind in LEDGER_KINDS:
            ledger.record(span.kind, span.duration)
    return ledger


def critical_path(spans: Sequence[Span]) -> list[Span]:
    """Deterministic heaviest chain: root → child, maximizing duration.

    A profile-style heuristic, not a scheduling analysis: start from the
    longest root span and repeatedly descend into the longest child
    (ties broken by lowest span id).  On DES traces where the root spans
    the whole run this surfaces the dominant stage at each level.
    """
    if not spans:
        return []
    children: dict[int | None, list[Span]] = {}
    for span in sorted(spans, key=lambda s: s.span_id):
        children.setdefault(span.parent_id, []).append(span)

    def heaviest(candidates: list[Span]) -> Span:
        return max(candidates, key=lambda s: (s.duration, -s.span_id))

    path = [heaviest(children.get(None, sorted(spans, key=lambda s: s.span_id)))]
    while True:
        kids = children.get(path[-1].span_id)
        if not kids:
            return path
        path.append(heaviest(kids))


def _span_row(span: Span) -> dict:
    return {
        "id": span.span_id,
        "name": span.name,
        "kind": span.kind,
        "duration": span.duration,
        "t_start": span.t_start,
    }


def summarize(
    spans: Sequence[Span], *, meta: dict | None = None, top_k: int = 5
) -> dict:
    """Profile a trace into a JSON-ready summary dict.

    The ``effective`` block is present when the trace contains both
    ``simulate`` and ``lookup`` spans: the §III-D model is rebuilt via
    :func:`ledger_from_spans` and evaluated at the trace's own
    lookup/simulate counts, with ``t_seq`` taken from ``meta["t_seq"]``
    when the producer recorded it (the serve bench does) and the
    measured mean simulate time otherwise.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    spans = sorted(spans, key=lambda s: s.span_id)
    meta = dict(meta or {})
    if not spans:
        return {
            "version": 1,
            "n_spans": 0,
            "t_min": 0.0,
            "t_max": 0.0,
            "wall_seconds": 0.0,
            "kinds": {},
            "critical_path": [],
            "critical_path_seconds": 0.0,
            "slowest": [],
            "ledger": {},
            "effective": None,
            "meta": meta,
        }

    kinds: dict[str, dict] = {}
    for span in spans:
        row = kinds.setdefault(
            span.kind, {"count": 0, "total_seconds": 0.0, "mean_seconds": 0.0}
        )
        row["count"] += 1
        row["total_seconds"] += span.duration
    for row in kinds.values():
        row["mean_seconds"] = row["total_seconds"] / row["count"]
    kinds = {k: kinds[k] for k in sorted(kinds)}

    path = critical_path(spans)
    # Equal-duration spans (ubiquitous in DES traces, where costs are
    # modeled constants) are ordered by start time then name so the
    # top-k report is stable against recording-order changes.
    slowest = sorted(
        spans, key=lambda s: (-s.duration, s.t_start, s.name, s.span_id)
    )[:top_k]
    ledger = ledger_from_spans(spans)

    effective = None
    if ledger.count("simulate") and ledger.count("lookup"):
        t_seq = meta.get("t_seq")
        model = EffectiveSpeedupModel.from_ledger(
            ledger, t_seq=float(t_seq) if t_seq is not None else None
        )
        n_lookup = ledger.count("lookup")
        n_train = ledger.count("simulate")
        effective = {
            "t_seq": model.t_seq,
            "t_train": model.t_train,
            "t_learn": model.t_learn,
            "t_lookup": model.t_lookup,
            "n_lookup": n_lookup,
            "n_train": n_train,
            "speedup": model.speedup(n_lookup, n_train),
            "no_ml_limit": model.no_ml_limit,
            "lookup_limit": model.lookup_limit,
        }

    return {
        "version": 1,
        "n_spans": len(spans),
        "t_min": min(s.t_start for s in spans),
        "t_max": max(s.t_end for s in spans),
        "wall_seconds": max(s.t_end for s in spans) - min(s.t_start for s in spans),
        "kinds": kinds,
        "critical_path": [_span_row(s) for s in path],
        "critical_path_seconds": sum(s.duration for s in path),
        "slowest": [_span_row(s) for s in slowest],
        "ledger": ledger.as_dict(),
        "effective": effective,
        "meta": meta,
    }
