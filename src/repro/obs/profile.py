"""Profile mining over span traces: self-time, hot spans, flame paths.

:func:`repro.obs.summary.summarize` answers "how much time did each kind
take, inclusively?".  This module answers the optimization question:
"*where* is the time actually spent?" — the exclusive **self-time** of a
span is its duration minus the time covered by its children, so a parent
that merely delegates scores near zero and the leaves doing real work
float to the top.  That is the view that drove the fused serving kernels
and the buffer-reuse force path: the committed serve trace shows the
``serve`` root almost entirely explained by its children, with
``lookup``/``simulate`` leaves carrying the self-time.

Three aggregations over one parent/child pass:

* **per-kind rows** — call count, inclusive total (accumulated in
  span-id order, so it matches :func:`~repro.obs.summary.summarize`
  bitwise), exclusive self total, mean and a deterministic p99 of the
  inclusive durations, and ``overlap_seconds`` (how much child time
  exceeded the parent — nonzero only for DES traces whose children run
  concurrently under one root, e.g. pipelined serve stages);
* **top-k spans by self-time** — the individual intervals worth fusing,
  ties broken by ``(t_start, name, span_id)`` so reports are stable;
* **flame paths** — self-time grouped by the root→span *name* path
  (``serve;flush;lookup``), the text analogue of a flame graph.

Self-time is clamped at zero: a DES parent whose children overlap in
virtual time can be over-covered, and a negative "exclusive" time is
noise, not signal — the excess is surfaced as ``overlap_seconds``
instead of silently corrupting kind totals.

Reporters follow the :mod:`repro.analysis.reporters` protocol: pure
functions from the profile dict to text / byte-stable JSON (sorted keys,
fixed separators), so ``python -m repro.obs profile`` run twice on the
same trace is ``cmp``-identical.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.obs.sketch import exact_quantile
from repro.obs.span import Span

__all__ = [
    "profile",
    "render_profile_text",
    "render_profile_json",
]


def _name_paths(spans: Sequence[Span]) -> dict[int, str]:
    """Root→span name path per span id, ``;``-joined, iteratively built.

    Spans are walked in span-id order; a tracer assigns parent ids
    before child ids, so every parent's path is already known when its
    child is reached.  Orphaned parents (trace slices) fall back to
    treating the span as a root.
    """
    paths: dict[int, str] = {}
    for span in spans:
        parent = paths.get(span.parent_id) if span.parent_id is not None else None
        paths[span.span_id] = span.name if parent is None else f"{parent};{span.name}"
    return paths


def profile(
    spans: Sequence[Span],
    *,
    meta: dict | None = None,
    top_k: int = 10,
) -> dict:
    """Mine a span list into the JSON-ready profile dict.

    Spans are processed in span-id order.  Inclusive per-kind totals are
    accumulated in exactly the order :func:`~repro.obs.summary.summarize`
    uses, so the two views agree bitwise — the CLI smoke test and
    ``tests/obs/test_profile.py`` assert ≤ 1e-9 relative agreement.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    spans = sorted(spans, key=lambda s: s.span_id)
    meta = dict(meta or {})
    if not spans:
        return {
            "version": 1,
            "n_spans": 0,
            "t_min": 0.0,
            "t_max": 0.0,
            "wall_seconds": 0.0,
            "total_self_seconds": 0.0,
            "total_overlap_seconds": 0.0,
            "kinds": {},
            "hot_spans": [],
            "flame": {},
            "meta": meta,
        }

    # One pass to attribute child time to parents; self-time follows.
    child_seconds: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_seconds[span.parent_id] = (
                child_seconds.get(span.parent_id, 0.0) + span.duration
            )

    self_seconds: dict[int, float] = {}
    overlap_seconds: dict[int, float] = {}
    for span in spans:
        covered = child_seconds.get(span.span_id, 0.0)
        self_seconds[span.span_id] = max(0.0, span.duration - covered)
        overlap_seconds[span.span_id] = max(0.0, covered - span.duration)

    kinds: dict[str, dict] = {}
    durations: dict[str, list[float]] = {}
    for span in spans:
        row = kinds.setdefault(
            span.kind,
            {
                "count": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "overlap_seconds": 0.0,
                "mean_seconds": 0.0,
                "p99_seconds": 0.0,
            },
        )
        row["count"] += 1
        row["total_seconds"] += span.duration
        row["self_seconds"] += self_seconds[span.span_id]
        row["overlap_seconds"] += overlap_seconds[span.span_id]
        durations.setdefault(span.kind, []).append(span.duration)
    for kind, row in kinds.items():
        row["mean_seconds"] = row["total_seconds"] / row["count"]
        row["p99_seconds"] = exact_quantile(sorted(durations[kind]), 0.99)
    kinds = {k: kinds[k] for k in sorted(kinds)}

    hot = sorted(
        spans,
        key=lambda s: (-self_seconds[s.span_id], s.t_start, s.name, s.span_id),
    )[:top_k]
    hot_rows = [
        {
            "id": s.span_id,
            "name": s.name,
            "kind": s.kind,
            "self_seconds": self_seconds[s.span_id],
            "total_seconds": s.duration,
            "t_start": s.t_start,
        }
        for s in hot
    ]

    paths = _name_paths(spans)
    flame: dict[str, dict] = {}
    for span in spans:
        row = flame.setdefault(
            paths[span.span_id],
            {"count": 0, "self_seconds": 0.0, "total_seconds": 0.0},
        )
        row["count"] += 1
        row["self_seconds"] += self_seconds[span.span_id]
        row["total_seconds"] += span.duration
    flame = {p: flame[p] for p in sorted(flame)}

    return {
        "version": 1,
        "n_spans": len(spans),
        "t_min": min(s.t_start for s in spans),
        "t_max": max(s.t_end for s in spans),
        "wall_seconds": max(s.t_end for s in spans) - min(s.t_start for s in spans),
        "total_self_seconds": sum(self_seconds[s.span_id] for s in spans),
        "total_overlap_seconds": sum(overlap_seconds[s.span_id] for s in spans),
        "kinds": kinds,
        "hot_spans": hot_rows,
        "flame": flame,
        "meta": meta,
    }


def render_profile_text(prof: dict) -> str:
    """Human-readable profile: kind table, hot spans, flame paths."""
    lines = [
        f"profile: {prof['n_spans']} spans over {prof['wall_seconds']:.6g} s, "
        f"self {prof['total_self_seconds']:.6g} s, "
        f"child overlap {prof['total_overlap_seconds']:.6g} s"
    ]
    lines.append("per-kind (self = exclusive of children):")
    for kind, row in prof["kinds"].items():
        lines.append(
            f"  {kind:<12} count {row['count']:>7}  "
            f"self {row['self_seconds']:.6g} s  "
            f"total {row['total_seconds']:.6g} s  "
            f"mean {row['mean_seconds']:.3g} s  "
            f"p99 {row['p99_seconds']:.3g} s"
        )
    lines.append("hot spans (by self-time):")
    for row in prof["hot_spans"]:
        lines.append(
            f"  #{row['id']} {row['name']} [{row['kind']}] "
            f"self {row['self_seconds']:.6g} s "
            f"(total {row['total_seconds']:.6g} s) @ t={row['t_start']:.6g}"
        )
    lines.append("flame (self-time by root→span name path):")
    for path, row in prof["flame"].items():
        lines.append(
            f"  {path:<36} self {row['self_seconds']:.6g} s  "
            f"total {row['total_seconds']:.6g} s  (n={row['count']})"
        )
    return "\n".join(lines)


def render_profile_json(prof: dict) -> str:
    """Byte-stable JSON profile: sorted keys, fixed layout."""
    return json.dumps(prof, indent=2, sort_keys=True)
