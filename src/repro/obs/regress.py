"""Performance-regression gate over committed ``BENCH_*.json`` history.

The repo commits benchmark reports (``BENCH_serve.json``,
``BENCH_md_forces.json``) produced by the tier-2 benches; this module
compares a *fresh* run of the same bench against the committed baseline
and fails — exit code 1 — when it regressed beyond tolerance, the
MLPerf-HPC-style discipline that keeps "effective performance" claims
honest run over run.

Two layers of gating:

* **criteria** — every boolean under a ``criteria`` dict (collected
  recursively, so nested blocks like ``trace.criteria`` count) that
  passed in the baseline must still pass in the fresh run.  Criteria are
  the benches' own self-checks (``batched_speedup_ge_5x``,
  ``trace_overhead_lt_5pct``) and are gated *unconditionally* — they are
  designed to hold at any bench size.
* **metrics** — numeric comparisons (speedups, agreement gaps, error
  bounds) with per-metric direction and tolerance.  These are only
  meaningful when the fresh run used the same bench parameters as the
  baseline, so they are gated when the parameter sets match and reported
  as ``skipped`` otherwise (the CI smoke gate runs a reduced bench and
  relies on criteria; a full-size local ``make regress`` also arms the
  numeric layer).

Serve-bench numbers are virtual-clock (discrete-event) quantities and
hence deterministic at fixed parameters, so their tolerances are tight;
md-bench numbers are wall-clock and get generous tolerances that only a
genuine regression (not scheduler noise) can breach.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "MetricSpec",
    "collect_criteria",
    "compare_reports",
    "render_report_text",
    "run_regress",
]


class MetricSpec:
    """One numeric comparison: dotted path, direction, tolerance.

    ``direction`` is ``"higher"`` (regression when the fresh value drops
    more than ``tolerance`` fractionally below baseline) or ``"lower"``
    (regression when it rises above ``baseline + max(tolerance * |baseline|,
    abs_slack)`` — the absolute slack keeps near-zero baselines from
    demanding the impossible).
    """

    __slots__ = ("path", "direction", "tolerance", "abs_slack")

    def __init__(
        self,
        path: str,
        direction: str,
        tolerance: float,
        *,
        abs_slack: float = 0.0,
    ):
        if direction not in ("higher", "lower"):
            raise ValueError(f"direction must be 'higher' or 'lower', got {direction!r}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.path = path
        self.direction = direction
        self.tolerance = float(tolerance)
        self.abs_slack = float(abs_slack)

    def check(self, baseline: float, fresh: float, tolerance: float | None = None) -> bool:
        """True when ``fresh`` is within tolerance of ``baseline``."""
        tol = self.tolerance if tolerance is None else float(tolerance)
        if self.direction == "higher":
            return fresh >= baseline * (1.0 - tol) - self.abs_slack
        return fresh <= baseline + max(tol * abs(baseline), self.abs_slack)


#: Bench parameter keys that must match for numeric gating, per benchmark.
_PARAM_KEYS = {
    "serve": ("n_requests", "seed", "epochs"),
    "md_force_kernels": ("potential", "rcut", "skin", "density", "seed"),
    "gp_doe": (
        "seed",
        "pool_size",
        "n_test",
        "target_mae",
        "relaxed_target_mae",
        "seed_size",
        "batch_size",
        "max_rounds",
        "epochs",
        "n_small",
        "n_query",
        "assumed_sim_cost_s",
    ),
}

#: Serve metrics are virtual-clock deterministic: tight tolerances.
_SERVE_METRICS = (
    MetricSpec("batched_vs_unbatched.speedup", "higher", 0.05),
    MetricSpec("cache.speedup", "higher", 0.10),
    MetricSpec("cache.hit_rate", "higher", 0.02),
    MetricSpec("effective_speedup_agreement.measured_speedup", "higher", 0.05),
    MetricSpec("effective_speedup_agreement.rel_diff", "lower", 0.10, abs_slack=0.02),
    # The serving-kernel micro-bench is the serve bench's one wall-clock
    # section, so it gets an md-style generous tolerance.
    MetricSpec("kernel.predict_f32_speedup", "higher", 0.5),
    # Tail-latency surface: the sketch scorecard quantiles are
    # virtual-clock deterministic at fixed params; the decomposition
    # residual and the what-if projection error are exactness claims
    # gated at their design bounds rather than relative to baseline.
    MetricSpec("latency_scorecard.all.p50_s", "lower", 0.10, abs_slack=1e-6),
    MetricSpec("latency_scorecard.all.p99_s", "lower", 0.10, abs_slack=1e-6),
    MetricSpec("trace.decomposition.max_residual_s", "lower", 0.0, abs_slack=1e-9),
    MetricSpec("trace.whatif.rel_err_mean", "lower", 0.0, abs_slack=0.10),
    MetricSpec("trace.whatif.rel_err_p99", "lower", 0.0, abs_slack=0.10),
    MetricSpec("heavy_tail.gap_cv2", "higher", 0.5),
    # Windowed timeline / SLO surface: virtual-clock deterministic, so
    # the healthy-run budget burn and the drift detection latency are
    # gated tight (both only exist in full traced baselines; reduced
    # runs report them as skipped via the params gate).
    MetricSpec("trace.timeline.merged_latency_count", "higher", 0.05),
    MetricSpec(
        "trace.slo.healthy.serve_latency.budget_consumed",
        "lower",
        0.10,
        abs_slack=0.05,
    ),
    MetricSpec("trace.slo.detection_latency_s", "lower", 0.10, abs_slack=0.05),
)

#: MD metrics are wall-clock: only large drops count.
_MD_METRIC_TEMPLATES = (
    ("speedup_verlet_vs_reference", "higher", 0.6, 0.0),
    ("speedup_verlet_vs_cell", "higher", 0.6, 0.0),
    ("max_rel_force_error", "lower", 0.0, 1e-9),
    ("rel_energy_error", "lower", 0.0, 1e-9),
)

#: GP-DoE sims-to-target counts are deterministic at fixed params (seeded
#: campaigns, no wall-clock in the loop) so they get tight tolerances;
#: the predict-cost and effective-speedup entries are wall-clock and get
#: md-style generous ones.
_GP_DOE_METRICS = (
    MetricSpec("head_to_head.gp_doe_variance.sims_to_target", "lower", 0.25),
    MetricSpec(
        "head_to_head.gp_doe_variance.final_test_mae", "lower", 0.5, abs_slack=0.01
    ),
    MetricSpec("head_to_head.sims_ratio_ann_over_gp", "higher", 0.3),
    MetricSpec("predict_cost.gp_us_per_query", "lower", 1.0, abs_slack=10.0),
    MetricSpec("predict_cost.ann_over_gp", "higher", 0.6),
    MetricSpec("effective_speedup.gp_speedup", "higher", 0.5),
)


def _dig(payload: dict, path: str):
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def collect_criteria(payload: dict, prefix: str = "") -> dict[str, bool]:
    """Recursively collect every boolean under any ``criteria`` dict.

    Returns a flat ``{dotted.path: passed}`` mapping, e.g.
    ``{"criteria.batched_speedup_ge_5x": True,
    "trace.criteria.trace_overhead_lt_5pct": True}``.
    """
    found: dict[str, bool] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if key == "criteria" and isinstance(value, dict):
            for name, passed in value.items():
                if isinstance(passed, bool):
                    found[f"{path}.{name}"] = passed
        elif isinstance(value, dict):
            found.update(collect_criteria(value, prefix=f"{path}."))
    return found


def _metric_specs(benchmark: str, baseline: dict, fresh: dict) -> list[tuple[str, MetricSpec]]:
    """Resolve the (label, spec) comparison list for one benchmark type."""
    if benchmark == "serve":
        specs = [(s.path, s) for s in _SERVE_METRICS]
        base_rates = {
            row["offered_rate"]: row for row in baseline.get("throughput_sweep", [])
        }
        fresh_rates = {
            row["offered_rate"]: row for row in fresh.get("throughput_sweep", [])
        }
        for rate in sorted(set(base_rates) & set(fresh_rates)):
            specs.append(
                (
                    f"throughput_sweep[rate={rate:g}].throughput",
                    MetricSpec(f"__rate|{rate!r}|throughput", "higher", 0.05),
                )
            )
        return specs
    if benchmark == "md_force_kernels":
        base_rows = {row["n"]: row for row in baseline.get("results", [])}
        fresh_rows = {row["n"]: row for row in fresh.get("results", [])}
        specs = []
        for n in sorted(set(base_rows) & set(fresh_rows)):
            for name, direction, tol, slack in _MD_METRIC_TEMPLATES:
                specs.append(
                    (
                        f"results[n={n}].{name}",
                        MetricSpec(f"__row|{n!r}|{name}", direction, tol, abs_slack=slack),
                    )
                )
        # Buffer-reuse kernel A/B (emitted only at full bench sizes; a
        # reduced fresh run simply reports this row as missing).
        specs.append(
            (
                "kernel.engine_reuse_speedup",
                MetricSpec("kernel.engine_reuse_speedup", "higher", 0.6),
            )
        )
        return specs
    if benchmark == "gp_doe":
        return [(s.path, s) for s in _GP_DOE_METRICS]
    return []


def _lookup_metric(payload: dict, spec_path: str):
    """Resolve a spec path, including the ``|``-delimited sweep/row
    pseudo-paths (``|`` because a float's repr contains ``.``)."""
    if spec_path.startswith("__rate|") or spec_path.startswith("__row|"):
        _, key, name = spec_path.split("|", 2)
        rows = (
            payload.get("throughput_sweep", [])
            if spec_path.startswith("__rate|")
            else payload.get("results", [])
        )
        row_key = "offered_rate" if spec_path.startswith("__rate|") else "n"
        for row in rows:
            if repr(row.get(row_key)) == key:
                return row.get(name)
        return None
    return _dig(payload, spec_path)


def compare_reports(
    baseline: dict, fresh: dict, *, tolerance: float | None = None
) -> dict:
    """Compare a fresh bench report against its committed baseline.

    Returns a JSON-ready report with per-criterion and per-metric rows
    and the overall verdict in ``"ok"``; ``tolerance`` (when given)
    overrides every metric's own tolerance.
    """
    benchmark = baseline.get("benchmark", "")
    if fresh.get("benchmark", "") != benchmark:
        raise ValueError(
            f"benchmark type mismatch: baseline {benchmark!r} "
            f"vs fresh {fresh.get('benchmark')!r}"
        )
    param_keys = _PARAM_KEYS.get(benchmark, ())
    params_match = all(baseline.get(k) == fresh.get(k) for k in param_keys)

    criteria_rows = []
    base_criteria = collect_criteria(baseline)
    fresh_criteria = collect_criteria(fresh)
    for name in sorted(base_criteria):
        base_ok = base_criteria[name]
        fresh_ok = fresh_criteria.get(name)
        if not base_ok:
            status = "waived"  # was already failing at the baseline
        elif fresh_ok is None:
            status = "skipped"  # fresh run did not exercise it
        elif fresh_ok:
            status = "ok"
        else:
            status = "regression"
        criteria_rows.append(
            {"name": name, "baseline": base_ok, "fresh": fresh_ok, "status": status}
        )

    metric_rows = []
    for label, spec in _metric_specs(benchmark, baseline, fresh):
        base_value = _lookup_metric(baseline, spec.path)
        fresh_value = _lookup_metric(fresh, spec.path)
        tol = spec.tolerance if tolerance is None else float(tolerance)
        row = {
            "name": label,
            "baseline": base_value,
            "fresh": fresh_value,
            "direction": spec.direction,
            "tolerance": tol,
        }
        if not params_match:
            row["status"] = "skipped"
        elif base_value is None or fresh_value is None:
            row["status"] = "missing"
        elif spec.check(float(base_value), float(fresh_value), tolerance):
            row["status"] = "ok"
        else:
            row["status"] = "regression"
        metric_rows.append(row)

    n_regressions = sum(
        1 for row in criteria_rows + metric_rows if row["status"] == "regression"
    )
    return {
        "benchmark": benchmark,
        "params_match": params_match,
        "param_keys": list(param_keys),
        "criteria": criteria_rows,
        "metrics": metric_rows,
        "n_regressions": n_regressions,
        "ok": n_regressions == 0,
    }


def render_report_text(report: dict) -> str:
    """Human-readable regression report."""
    lines = [
        f"benchmark: {report['benchmark']}  "
        f"(params {'match' if report['params_match'] else 'differ'} -> "
        f"numeric gate {'armed' if report['params_match'] else 'skipped'})"
    ]
    lines.append("criteria:")
    for row in report["criteria"]:
        lines.append(f"  [{row['status']:>10}] {row['name']}")
    if report["metrics"]:
        lines.append("metrics:")
        for row in report["metrics"]:
            base, fresh = row["baseline"], row["fresh"]
            base_s = "n/a" if base is None else f"{base:.6g}"
            fresh_s = "n/a" if fresh is None else f"{fresh:.6g}"
            lines.append(
                f"  [{row['status']:>10}] {row['name']}: "
                f"{base_s} -> {fresh_s} "
                f"({row['direction']} better, tol {row['tolerance']:g})"
            )
    verdict = "OK" if report["ok"] else f"REGRESSION x{report['n_regressions']}"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def run_regress(
    baseline_path: str | Path,
    fresh_path: str | Path,
    *,
    tolerance: float | None = None,
    output: str | Path | None = None,
) -> dict:
    """Load both reports, compare, optionally write the JSON report."""
    baseline = json.loads(Path(baseline_path).read_text())
    fresh = json.loads(Path(fresh_path).read_text())
    report = compare_reports(baseline, fresh, tolerance=tolerance)
    report["baseline_path"] = str(baseline_path)
    report["fresh_path"] = str(fresh_path)
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report
