"""Hierarchical span recording against wall or simulated clocks.

A :class:`Tracer` is the single recording surface of the observability
backbone.  It supports two styles, usable together on one tracer:

* **scoped spans** (:meth:`Tracer.span`) — a context manager that reads
  the tracer's clock at entry and exit and parents to the innermost
  open span; this is how wall-clock call sites (``Surrogate.fit``, the
  :class:`~repro.md.neighbors.ForceEngine`) are instrumented;
* **explicit spans** (:meth:`Tracer.record`, or
  :meth:`Tracer.open_span` / :meth:`Tracer.close_span`) — endpoints are
  supplied by the caller; this is how discrete-event code
  (:class:`~repro.serve.server.SurrogateServer`,
  :class:`~repro.parallel.cluster.OnlineDispatcher`) records spans whose
  coordinates are *virtual* seconds computed ahead of time.

The clock is anything exposing a monotonic ``.now`` float property —
:class:`~repro.serve.clock.SimulatedClock` satisfies it, and the default
:class:`WallClock` reads ``time.perf_counter``.  A tracer driven only by
explicit virtual coordinates never touches its clock, so a served run
traced this way is bitwise reproducible: identical inputs produce an
identical span list, byte for byte after export.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Protocol

from repro.obs.span import Span

__all__ = ["ClockLike", "WallClock", "Tracer"]


class ClockLike(Protocol):
    """Anything with a monotonic ``now`` property in seconds."""

    @property
    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class WallClock:
    """The default tracer clock: ``time.perf_counter`` behind ``.now``."""

    @property
    def now(self) -> float:
        """Current wall time in seconds (perf_counter origin)."""
        return time.perf_counter()

    def __repr__(self) -> str:
        return "WallClock()"


class _OpenSpan:
    """Mutable bookkeeping for a span that has started but not ended."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "t_start", "attrs")

    def __init__(self, span_id, parent_id, name, kind, t_start, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.t_start = t_start
        self.attrs = attrs


class Tracer:
    """Records :class:`~repro.obs.span.Span` values in creation order.

    Parameters
    ----------
    clock:
        Time source for scoped spans; ``None`` means :class:`WallClock`.
        Pass the serving layer's
        :class:`~repro.serve.clock.SimulatedClock` to stamp scoped spans
        in virtual time.
    meta:
        Free-form JSON-serializable annotations for the whole trace
        (cost-model constants, seeds, scenario names); carried through
        export/import and consulted by the summarizer (e.g. ``t_seq``).
    """

    def __init__(self, clock: ClockLike | None = None, meta: dict | None = None):
        self.clock: ClockLike = clock if clock is not None else WallClock()
        self.meta: dict = dict(meta) if meta else {}
        self._spans: list[Span] = []
        self._open: dict[int, _OpenSpan] = {}
        self._stack: list[int] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Completed spans in completion order (a copy)."""
        return list(self._spans)

    @property
    def n_spans(self) -> int:
        """Number of completed spans."""
        return len(self._spans)

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span, or ``None`` at the root."""
        return self._stack[-1] if self._stack else None

    def _take_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    # ------------------------------------------------------------------
    def open_span(
        self,
        name: str,
        kind: str = "span",
        *,
        t_start: float | None = None,
        parent_id: int | None = None,
        attrs: dict | None = None,
    ) -> int:
        """Start a span and push it onto the parenting stack.

        ``t_start`` defaults to the clock's ``now``; ``parent_id``
        defaults to the innermost open span.  Returns the new span id,
        to be passed to :meth:`close_span`.
        """
        if parent_id is None:
            parent_id = self.current_span_id
        if t_start is None:
            t_start = self.clock.now
        sid = self._take_id()
        self._open[sid] = _OpenSpan(
            sid, parent_id, name, kind, float(t_start), dict(attrs or {})
        )
        self._stack.append(sid)
        return sid

    def close_span(
        self,
        span_id: int,
        *,
        t_end: float | None = None,
        attrs: dict | None = None,
        kind: str | None = None,
    ) -> Span:
        """Finish an open span, recording it; extra ``attrs`` are merged.

        ``kind`` reclassifies the span at close time, for work whose
        category is only known from its outcome (a force call that turned
        out to rebuild its neighbor list rather than reuse it).
        """
        if span_id not in self._open:
            raise ValueError(f"span {span_id} is not open")
        pending = self._open.pop(span_id)
        self._stack.remove(span_id)
        if t_end is None:
            t_end = self.clock.now
        if attrs:
            pending.attrs.update(attrs)
        span = Span(
            span_id=pending.span_id,
            parent_id=pending.parent_id,
            name=pending.name,
            kind=kind if kind is not None else pending.kind,
            t_start=pending.t_start,
            t_end=float(t_end),
            attrs=pending.attrs,
        )
        self._spans.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, kind: str = "span", attrs: dict | None = None
    ) -> Iterator[int]:
        """Scoped span: clock-stamped at entry and exit, auto-parented.

        Yields the span id so the body can attach attributes via
        :meth:`annotate`.  The span is recorded even when the body
        raises, so failed work stays visible in the trace.
        """
        sid = self.open_span(name, kind, attrs=attrs)
        try:
            yield sid
        finally:
            self.close_span(sid)

    def annotate(self, span_id: int, **attrs) -> None:
        """Attach attributes to a still-open span."""
        if span_id not in self._open:
            raise ValueError(f"span {span_id} is not open")
        self._open[span_id].attrs.update(attrs)

    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        kind: str,
        t_start: float,
        t_end: float,
        *,
        parent_id: int | None = None,
        attrs: dict | None = None,
    ) -> Span:
        """Record a completed span with explicit endpoints.

        The discrete-event entry point: the caller supplies virtual
        coordinates, the clock is never consulted.  ``parent_id``
        defaults to the innermost open span, so event-loop spans nest
        under a run-level root opened with :meth:`open_span`.
        """
        if parent_id is None:
            parent_id = self.current_span_id
        span = Span(
            span_id=self._take_id(),
            parent_id=parent_id,
            name=name,
            kind=kind,
            t_start=float(t_start),
            t_end=float(t_end),
            attrs=dict(attrs or {}),
        )
        self._spans.append(span)
        return span

    def __repr__(self) -> str:
        return (
            f"Tracer(clock={self.clock!r}, spans={len(self._spans)}, "
            f"open={len(self._open)})"
        )
