"""Deterministic metrics: counters, gauges, histograms, quantile sketches.

A :class:`MetricRegistry` is the shared sink the subsystem-local
counters (``ServeMetrics`` status/source tallies, ``NeighborList`` build
counters, the :class:`~repro.util.timing.WallClockLedger`) adapt onto,
so one snapshot describes a whole mixed ML-around-HPC run.

Aggregation is exact and order-deterministic by construction: counters
and gauges are plain accumulators, and :class:`Histogram` uses *fixed*
bucket edges chosen at creation — never reservoir sampling, never
adaptive re-bucketing — so two replays of the same run produce
bitwise-identical snapshots, and merging shards is plain addition.
Quantiles interpolated from histogram buckets are approximations with a
known resolution (the bucket width); populations that need *relative*
accuracy independent of magnitude (the serve latency populations) use
the fourth registry type, the log-bucketed
:class:`~repro.obs.sketch.QuantileSketch`, whose estimates carry a
guaranteed relative error ``alpha`` in O(log range) memory — no full
sample lists, no ``np.percentile`` over request populations.
"""

from __future__ import annotations

import re

import numpy as np

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_TIME_EDGES",
    "DEFAULT_LABEL_CARDINALITY",
    "LabelSet",
    "canonical_labels",
    "flat_metric_name",
    "validate_metric_name",
]

#: Default per-base-name cap on distinct label sets.  Unbounded label
#: cardinality is the classic way a metrics pipeline eats a host; the
#: cap is explicit and exceeding it raises loudly instead of silently
#: dropping or aggregating.
DEFAULT_LABEL_CARDINALITY = 64

#: Canonical label tuple: ``((key, value), ...)`` sorted by key.
LabelSet = tuple[tuple[str, str], ...]

# Registry names are dot-namespaced lowercase identifiers (rule OBS004
# enforces the same grammar statically at call sites).  Label values
# additionally allow ``-`` and ``:`` for ids like ``tenant-3``.
_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+)*$")
_LABEL_VALUE_RE = re.compile(r"^[a-z0-9_.:\-]+$")


def validate_metric_name(name: str) -> str:
    """Check ``name`` is a dot-namespaced lowercase identifier.

    Every segment matches ``[a-z0-9_]+`` and segments are joined by
    single dots — the grammar rule OBS004 enforces statically.  Returns
    the name unchanged; raises :class:`ValueError` otherwise.
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} is not a dot-namespaced lowercase "
            f"identifier (expected segments of [a-z0-9_] joined by '.')"
        )
    return name


def canonical_labels(labels: dict[str, str] | LabelSet | None) -> LabelSet:
    """Normalize a label mapping to the canonical sorted tuple form.

    Keys must satisfy the metric-name grammar; values must be non-empty
    ``[a-z0-9_.:-]`` strings so the flattened child name stays
    unambiguous and byte-stable.
    """
    if not labels:
        return ()
    items = labels.items() if isinstance(labels, dict) else labels
    canon = []
    for key, value in items:
        validate_metric_name(key)
        if not isinstance(value, str) or not _LABEL_VALUE_RE.match(value):
            raise ValueError(
                f"label value {value!r} for key {key!r} must be a non-empty "
                f"string of [a-z0-9_.:-]"
            )
        canon.append((key, value))
    canon.sort()
    for (a, _), (b, _) in zip(canon, canon[1:]):
        if a == b:
            raise ValueError(f"duplicate label key {a!r}")
    return tuple(canon)


def flat_metric_name(name: str, labels: LabelSet) -> str:
    """Canonical flat name of a labeled child: ``name{k1=v1,k2=v2}``.

    Labels are sorted by key (``canonical_labels`` guarantees it), so
    the same label mapping always yields the same child name and the
    registry snapshot stays byte-stable.
    """
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{body}}}"

#: Default histogram edges for timing populations: half-decade geometric
#: spacing from 1 ns to 100 s.  Fixed at import time so every timing
#: histogram in a process is mergeable with every other.
DEFAULT_TIME_EDGES: tuple[float, ...] = tuple(
    float(10.0 ** (e / 2.0)) for e in range(-18, 5)
)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the tally."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def as_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value (queue depth, pair count, hit rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def as_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Fixed-point scale for the histogram sum: the smallest positive
#: subnormal double is 2**-1074, so scaling every observation by 2**1074
#: makes it an exact integer and the sum an exact big-int — addition is
#: then truly associative and commutative, which is what makes shard
#: merges bitwise order-independent (floats only approximate this).
_SUM_FIXED_SHIFT = 1074


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``edges`` are the strictly increasing upper bounds of the first
    ``len(edges)`` buckets; one overflow bucket catches everything
    larger.  Observation is O(log buckets) (binary search) and two
    histograms with identical edges merge by adding counts — the
    property that makes per-shard metrics aggregation deterministic.
    The running sum is kept as an exact fixed-point integer (every
    finite double is an integer multiple of 2**-1074), so
    ``merge(a, merge(b, c))`` and ``merge(merge(a, b), c)`` agree
    bitwise and :attr:`total` is the correctly rounded true sum.
    """

    __slots__ = ("name", "edges", "bucket_counts", "count", "_sum_fixed", "vmin", "vmax")

    def __init__(self, name: str, edges: tuple[float, ...] | None = None):
        self.name = name
        self.edges = tuple(float(e) for e in (edges or DEFAULT_TIME_EDGES))
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError(f"histogram edges must be strictly increasing: {edges}")
        self.bucket_counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self._sum_fixed = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    @staticmethod
    def _to_fixed(value: float) -> int:
        # as_integer_ratio gives num / 2**k for every finite double, so
        # num << (1074 - k) is the exact value scaled by 2**1074.
        num, den = value.as_integer_ratio()
        return num << (_SUM_FIXED_SHIFT - (den.bit_length() - 1))

    @property
    def total(self) -> float:
        """Correctly rounded exact sum of all observations."""
        try:
            # CPython's big-int true division rounds correctly.
            return self._sum_fixed / (1 << _SUM_FIXED_SHIFT)
        except OverflowError:
            return float("inf") if self._sum_fixed > 0 else float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the buckets and exact sidecars."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(f"histogram {self.name!r} observed non-finite {value!r}")
        idx = int(np.searchsorted(self.edges, value, side="left"))
        self.bucket_counts[idx] += 1
        self.count += 1
        self._sum_fixed += self._to_fixed(value)
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic bucket-interpolated quantile, ``q`` in [0, 1].

        Resolution is the containing bucket's width: the estimate
        interpolates linearly inside the bucket, clamped to the exact
        observed ``[min, max]``.  Returns NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        seen = 0.0
        for idx, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= target:
                lo = self.vmin if idx == 0 else self.edges[idx - 1]
                hi = self.vmax if idx == len(self.edges) else self.edges[idx]
                lo = max(lo, self.vmin)
                hi = min(hi, self.vmax)
                frac = (target - seen) / n
                return float(min(max(lo + frac * (hi - lo), self.vmin), self.vmax))
            seen += n
        return self.vmax

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical edges into this one."""
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with incompatible bucket edges: "
                f"{self.name!r} has {len(self.edges)} edges spanning "
                f"[{self.edges[0]:g}, {self.edges[-1]:g}], {other.name!r} has "
                f"{len(other.edges)} edges spanning "
                f"[{other.edges[0]:g}, {other.edges[-1]:g}]; rebucket one side "
                f"before merging"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self._sum_fixed += other._sum_fixed
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def as_dict(self) -> dict:
        """JSON-ready snapshot (exact sidecars + bucket counts)."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "edges": list(self.edges),
            "buckets": list(self.bucket_counts),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


class MetricRegistry:
    """Named get-or-create store of counters, gauges, histograms, sketches.

    One registry describes one run.  Metric names are dotted paths
    (``"serve.status.ok"``, ``"md.neighbor.builds"``) validated against
    the OBS004 grammar at runtime; a name is bound to its metric type at
    first use and re-requesting it with a different type is an error —
    silent type morphing is how dashboards lie.

    **Dimensional labels.** Every factory accepts ``labels=``, a small
    ``{key: value}`` mapping.  The labeled child is a metric of its own
    stored under the canonical flat name ``name{k1=v1,k2=v2}`` (keys
    sorted), so snapshots stay byte-stable, and is additionally indexed
    by base name for aggregation (:meth:`children`).  Distinct label
    sets per base name are capped at ``max_label_cardinality``;
    exceeding the cap raises :class:`ValueError` loudly — unbounded
    cardinality is an outage, not a feature.
    """

    def __init__(self, max_label_cardinality: int = DEFAULT_LABEL_CARDINALITY):
        self._metrics: dict[str, Counter | Gauge | Histogram | QuantileSketch] = {}
        self.max_label_cardinality = int(max_label_cardinality)
        #: base name -> {canonical label tuple -> child metric}
        self._children: dict[str, dict[LabelSet, object]] = {}

    def _get_or_create(self, name: str, cls, *args, labels=None):
        label_set = canonical_labels(labels)
        if label_set:
            validate_metric_name(name)
            flat = flat_metric_name(name, label_set)
        else:
            flat = validate_metric_name(name)
        existing = self._metrics.get(flat)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {flat!r} is a {type(existing).__name__}, "
                    f"requested as {cls.__name__}"
                )
            return existing
        if label_set:
            family = self._children.setdefault(name, {})
            if len(family) >= self.max_label_cardinality:
                raise ValueError(
                    f"label cardinality cap exceeded for metric {name!r}: "
                    f"{len(family)} distinct label sets already exist "
                    f"(max_label_cardinality={self.max_label_cardinality}); "
                    f"refusing to create child for {dict(label_set)!r} — "
                    f"bound the label domain or raise the cap explicitly"
                )
        metric = cls(flat, *args)
        self._metrics[flat] = metric
        if label_set:
            self._children[name][label_set] = metric
        return metric

    def counter(self, name: str, *, labels: dict[str, str] | None = None) -> Counter:
        """Get or create the counter called ``name`` (optionally labeled)."""
        return self._get_or_create(name, Counter, labels=labels)

    def gauge(self, name: str, *, labels: dict[str, str] | None = None) -> Gauge:
        """Get or create the gauge called ``name`` (optionally labeled)."""
        return self._get_or_create(name, Gauge, labels=labels)

    def histogram(
        self,
        name: str,
        edges: tuple[float, ...] | None = None,
        *,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``edges`` only applies at creation; a later lookup with
        different edges raises so all writers share one bucketing.
        """
        hist = self._get_or_create(name, Histogram, edges, labels=labels)
        if edges is not None and hist.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name!r} already exists with other edges")
        return hist

    def sketch(
        self,
        name: str,
        alpha: float | None = None,
        *,
        labels: dict[str, str] | None = None,
    ) -> QuantileSketch:
        """Get or create the quantile sketch called ``name``.

        ``alpha`` (guaranteed relative error, default
        :data:`~repro.obs.sketch.DEFAULT_ALPHA`) only applies at
        creation; a later lookup with a different ``alpha`` raises so
        all writers — and hence all mergeable shards — share one
        resolution.
        """
        sk = self._get_or_create(
            name,
            QuantileSketch,
            DEFAULT_ALPHA if alpha is None else alpha,
            labels=labels,
        )
        if alpha is not None and sk.alpha != float(alpha):
            raise ValueError(f"sketch {name!r} already exists with other alpha")
        return sk

    def children(self, name: str) -> dict[LabelSet, object]:
        """Labeled children of base metric ``name``: label tuple -> metric.

        Returned in label-tuple sort order (insertion-independent), so
        iterating a family is deterministic regardless of which tenant
        or shard showed up first.
        """
        family = self._children.get(name, {})
        return {labels: family[labels] for labels in sorted(family)}

    def get(self, name: str) -> Counter | Gauge | Histogram | QuantileSketch | None:
        """Return the metric called ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict:
        """Stable (name-sorted) JSON-ready snapshot of every metric."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def merge_ledger(self, ledger, prefix: str = "ledger") -> None:
        """Fold a :class:`~repro.util.timing.WallClockLedger` snapshot in.

        One-shot aggregation of an *existing* ledger: per category,
        ``<prefix>.<name>.count`` and ``<prefix>.<name>.seconds``
        counters gain the record's count and total.  For continuous
        no-drift mirroring, construct the ledger with
        ``WallClockLedger(registry=...)`` instead, which routes every
        ``record`` call through this registry as it happens.
        """
        for name in ledger.categories():
            rec = ledger[name]
            self.counter(f"{prefix}.{name}.count").inc(rec.count)
            self.counter(f"{prefix}.{name}.seconds").inc(rec.total_seconds)

    def __repr__(self) -> str:
        return f"MetricRegistry(n={len(self._metrics)})"
