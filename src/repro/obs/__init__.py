"""repro.obs: deterministic tracing, metrics and profiling backbone.

The paper's effective-speedup argument (§III-D) stands or falls on
*measured* component costs — ``T_seq``, ``T_train``, ``T_learn``,
``T_lookup``.  This package is the shared event model those measurements
flow through:

* :mod:`~repro.obs.span` / :mod:`~repro.obs.trace` — hierarchical,
  attributed :class:`Span` intervals recorded by a :class:`Tracer`
  against either wall clock or the serving layer's
  :class:`~repro.serve.clock.SimulatedClock`, so discrete-event runs
  produce bitwise-reproducible traces;
* :mod:`~repro.obs.metrics` — a :class:`MetricRegistry` of counters,
  gauges and fixed-bucket histograms with deterministic aggregation (no
  reservoir sampling), the sink the serving metrics, neighbor-list
  counters and :class:`~repro.util.timing.WallClockLedger` mirror into;
* :mod:`~repro.obs.export` — canonical JSONL trace files plus text/JSON
  reporters following the :mod:`repro.analysis` reporter protocol;
* :mod:`~repro.obs.summary` — per-kind profiles, critical path, and
  :func:`ledger_from_spans`, which folds a trace's ledger-kind spans
  back into §III-D form so ``python -m repro.obs summarize`` reproduces
  a served run's measured effective speedup from the trace file alone;
* :mod:`~repro.obs.profile` — the optimization view over the same
  spans: exclusive self-time per kind, top-k spans by self-time and
  flame-style name-path aggregation (``python -m repro.obs profile``),
  the evidence trail behind the fused serving kernels and the
  buffer-reuse force path;
* :mod:`~repro.obs.streaming` / :mod:`~repro.obs.monitor` — the control
  plane over the backbone: from-scratch streaming statistics (Welford,
  EWMA) and drift detectors (Page–Hinkley, two-sided CUSUM) feeding UQ
  calibration-coverage, latency/shed SLO burn-rate and cache-hit
  monitors, whose deduplicated :class:`Alert` log is byte-stable and
  replayable from a trace file (``python -m repro.obs monitor``);
* :mod:`~repro.obs.sketch` — :class:`QuantileSketch`, a from-scratch
  log-bucketed mergeable quantile sketch (DDSketch-style) with a
  guaranteed relative-error bound, exact count/sum/min/max sidecars and
  byte-stable JSON serialization; the registry's fourth metric type and
  the backing store for every unbounded latency population;
* :mod:`~repro.obs.latency` — per-request latency decomposition from
  serve span trees: admission/batch/cache/forward/fallback/retrain
  stage attribution that reproduces each recorded latency to ≤ 1e-9,
  critical-path extraction per request and tail blame by percentile
  band (``python -m repro.obs latency``);
* :mod:`~repro.obs.whatif` — counterfactual projection replaying
  recorded span trees under hypotheses (cache-miss-free, half batch
  wait, faster fallback) and projecting latency / effective-speedup
  deltas, bench-validated against an actual DES re-run
  (``python -m repro.obs whatif``);
* :mod:`~repro.obs.timeseries` — deterministic tumbling-window time
  series keyed by virtual-clock coordinates: each window holds a
  mergeable aggregate (exact counter deltas, last-write gauges,
  per-window :class:`QuantileSketch`), hierarchical downsampling is
  order-independent window merging, and the serve-trace timeline view
  (``python -m repro.obs timeline``) is byte-stable;
* :mod:`~repro.obs.slo` — declarative :class:`SLOSpec` objectives
  (latency-quantile and availability), error-budget accounting and
  SRE-style multi-window burn-rate alerts routed through the
  :class:`AlertManager`, replayable byte-for-byte from committed traces
  (``python -m repro.obs slo``);
* :mod:`~repro.obs.regress` — the performance-regression gate comparing
  a fresh bench run against committed ``BENCH_*.json`` history
  (``python -m repro.obs regress``), wired into CI.

Instrumented producers: ``serve.server`` (admit → batch → cache → gate →
surrogate/fallback), ``core.surrogate`` fit/predict, the
``md.neighbors.ForceEngine`` rebuild/reuse path, and
``parallel.cluster.OnlineDispatcher`` placement.
"""

from repro.obs.export import (
    dumps_trace,
    loads_trace,
    read_trace,
    render_json,
    render_text,
    write_trace,
)
from repro.obs.latency import (
    DEFAULT_BANDS,
    STAGES,
    RequestLatency,
    aggregate,
    decompose,
    latency_report,
    render_latency_json,
    render_latency_text,
)
from repro.obs.metrics import (
    DEFAULT_LABEL_CARDINALITY,
    DEFAULT_TIME_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    canonical_labels,
    flat_metric_name,
    validate_metric_name,
)
from repro.obs.monitor import (
    ACTION_FORCE_FALLBACK,
    ACTION_RETRAIN,
    ACTION_TIGHTEN_GATE,
    SEVERITIES,
    Alert,
    AlertManager,
    CacheHitRateMonitor,
    CalibrationCoverageMonitor,
    LatencySLOMonitor,
    MonitorSuite,
    ShedRateMonitor,
    default_serve_monitors,
    dumps_alerts,
    watch_trace,
)
from repro.obs.profile import (
    profile,
    render_profile_json,
    render_profile_text,
)
from repro.obs.regress import compare_reports, run_regress
from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch, exact_quantile
from repro.obs.slo import (
    SLO_KINDS,
    SLOEngine,
    SLOSpec,
    default_slo_specs,
    dumps_slo,
    render_slo_text,
    slo_report,
)
from repro.obs.span import (
    KIND_CACHE,
    KIND_LOOKUP,
    KIND_SIMULATE,
    KIND_TRAIN,
    LEDGER_KINDS,
    Span,
)
from repro.obs.streaming import EWMA, PageHinkley, TwoSidedCUSUM, Welford
from repro.obs.summary import critical_path, ledger_from_spans, summarize
from repro.obs.timeseries import (
    SERIES_KINDS,
    TimeSeries,
    WindowSpec,
    dumps_timeline,
    fold_timeline,
    render_timeline_text,
    timeline_report,
)
from repro.obs.trace import ClockLike, Tracer, WallClock
from repro.obs.whatif import (
    HYPOTHESES,
    project,
    render_whatif_json,
    render_whatif_text,
    whatif_report,
)

__all__ = [
    "ACTION_FORCE_FALLBACK",
    "ACTION_RETRAIN",
    "ACTION_TIGHTEN_GATE",
    "Alert",
    "AlertManager",
    "CacheHitRateMonitor",
    "CalibrationCoverageMonitor",
    "ClockLike",
    "Counter",
    "DEFAULT_ALPHA",
    "DEFAULT_BANDS",
    "DEFAULT_LABEL_CARDINALITY",
    "DEFAULT_TIME_EDGES",
    "EWMA",
    "Gauge",
    "HYPOTHESES",
    "Histogram",
    "KIND_CACHE",
    "KIND_LOOKUP",
    "KIND_SIMULATE",
    "KIND_TRAIN",
    "LEDGER_KINDS",
    "LatencySLOMonitor",
    "MetricRegistry",
    "MonitorSuite",
    "PageHinkley",
    "QuantileSketch",
    "RequestLatency",
    "SERIES_KINDS",
    "SEVERITIES",
    "SLOEngine",
    "SLOSpec",
    "SLO_KINDS",
    "STAGES",
    "ShedRateMonitor",
    "Span",
    "TimeSeries",
    "Tracer",
    "TwoSidedCUSUM",
    "WallClock",
    "Welford",
    "WindowSpec",
    "aggregate",
    "canonical_labels",
    "compare_reports",
    "critical_path",
    "decompose",
    "default_serve_monitors",
    "default_slo_specs",
    "dumps_alerts",
    "dumps_slo",
    "dumps_timeline",
    "dumps_trace",
    "exact_quantile",
    "flat_metric_name",
    "fold_timeline",
    "latency_report",
    "ledger_from_spans",
    "loads_trace",
    "profile",
    "project",
    "read_trace",
    "render_json",
    "render_latency_json",
    "render_latency_text",
    "render_profile_json",
    "render_profile_text",
    "render_text",
    "render_whatif_json",
    "render_whatif_text",
    "run_regress",
    "summarize",
    "watch_trace",
    "whatif_report",
    "write_trace",
]
