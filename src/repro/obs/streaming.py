"""Streaming window statistics and drift detectors, from scratch.

These are the primitive accumulators the monitoring layer
(:mod:`repro.obs.monitor`) composes into rule-based and change-point
monitors.  Everything here is *online* — O(1) state per stream, one
``update`` per observation — and exactly deterministic: the same
observation sequence always produces bitwise-identical state, which is
what lets an alert log be replayed from a trace file and compared with
``cmp``.

* :class:`Welford` — numerically stable running mean/variance
  (Welford's algorithm; the textbook recurrence
  ``M2 += (x - mean_old) * (x - mean_new)``).
* :class:`EWMA` — exponentially weighted moving average, the smoother
  behind rate monitors that should not flap on one noisy window.
* :class:`PageHinkley` — the Page–Hinkley test for upward mean shift:
  accumulate deviations from the running mean minus a drift allowance
  ``delta`` and alarm when the cumulative sum rises ``threshold`` above
  its running minimum.
* :class:`TwoSidedCUSUM` — tabular CUSUM in both directions against a
  reference mean/std learned from a warmup prefix; alarms when either
  one-sided statistic exceeds ``threshold`` standard deviations.

None of these import anything beyond ``math`` — they are pure Python on
purpose, so monitors embed them without dragging numpy broadcasting
semantics (and its batch-width-dependent reductions) into code whose
whole contract is bit-for-bit replayability.
"""

from __future__ import annotations

import math

__all__ = ["Welford", "EWMA", "PageHinkley", "TwoSidedCUSUM"]


class Welford:
    """Running mean/variance via Welford's single-pass recurrence."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation into the running moments."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"Welford observed non-finite value {value!r}")
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Population variance of the observations so far (0.0 when n < 2)."""
        return self._m2 / self.n if self.n >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 when n < 2)."""
        return math.sqrt(self.variance)

    def reset(self) -> None:
        """Forget all observations."""
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def __repr__(self) -> str:
        return f"Welford(n={self.n}, mean={self.mean:.6g}, std={self.std:.6g})"


class EWMA:
    """Exponentially weighted moving average with smoothing ``alpha``.

    The first observation initializes the average directly (no zero
    bias); each later one folds in as
    ``value_new = alpha * x + (1 - alpha) * value_old``.
    """

    __slots__ = ("alpha", "value", "n")

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value: float | None = None
        self.n = 0

    def update(self, value: float) -> float:
        """Fold one observation; returns the updated average."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"EWMA observed non-finite value {value!r}")
        self.n += 1
        if self.value is None:
            self.value = value
        else:
            self.value = self.alpha * value + (1.0 - self.alpha) * self.value
        return self.value

    def reset(self) -> None:
        """Forget the average."""
        self.value = None
        self.n = 0

    def __repr__(self) -> str:
        return f"EWMA(alpha={self.alpha}, value={self.value}, n={self.n})"


class PageHinkley:
    """Page–Hinkley test for an upward shift of the stream mean.

    Maintains the cumulative sum of ``x_t - mean_t - delta`` (``mean_t``
    the running mean, ``delta`` the tolerated drift per step) and its
    running minimum; :attr:`drifted` turns True once the sum exceeds the
    minimum by ``threshold``.  ``min_samples`` observations must arrive
    before the test can alarm, so a short noisy prefix cannot trip it.
    """

    __slots__ = ("delta", "threshold", "min_samples", "_moments", "_cum", "_cum_min", "drifted")

    def __init__(
        self, *, delta: float = 0.05, threshold: float = 5.0, min_samples: int = 8
    ):
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self._moments = Welford()
        self._cum = 0.0
        self._cum_min = 0.0
        self.drifted = False

    @property
    def n(self) -> int:
        """Observations folded in since the last reset."""
        return self._moments.n

    @property
    def statistic(self) -> float:
        """Current test statistic (cumulative sum above its minimum)."""
        return self._cum - self._cum_min

    def update(self, value: float) -> bool:
        """Fold one observation; returns True when drift is detected."""
        self._moments.update(value)
        self._cum += float(value) - self._moments.mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        if self.n >= self.min_samples and self.statistic > self.threshold:
            self.drifted = True
        return self.drifted

    def reset(self) -> None:
        """Restart the test (after an alarm has been acted on)."""
        self._moments.reset()
        self._cum = 0.0
        self._cum_min = 0.0
        self.drifted = False

    def __repr__(self) -> str:
        return (
            f"PageHinkley(n={self.n}, statistic={self.statistic:.4g}, "
            f"threshold={self.threshold}, drifted={self.drifted})"
        )


class TwoSidedCUSUM:
    """Two-sided tabular CUSUM against a warmup-learned reference.

    The first ``warmup`` observations only feed the reference
    mean/std (via :class:`Welford`); after that, each observation is
    standardized against the frozen reference and folded into the
    classic one-sided statistics ``g+ = max(0, g+ + z - k)`` and
    ``g- = max(0, g- - z - k)`` with allowance ``k`` (in standard
    deviations).  :attr:`drifted` turns True when either side exceeds
    ``threshold``.
    """

    __slots__ = ("k", "threshold", "warmup", "_reference", "_ref_std", "g_pos", "g_neg", "drifted")

    def __init__(self, *, k: float = 0.5, threshold: float = 5.0, warmup: int = 10):
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        self.k = float(k)
        self.threshold = float(threshold)
        self.warmup = int(warmup)
        self._reference = Welford()
        self._ref_std = 0.0
        self.g_pos = 0.0
        self.g_neg = 0.0
        self.drifted = False

    @property
    def n(self) -> int:
        """Observations folded in since the last reset."""
        return self._reference.n

    @property
    def statistic(self) -> float:
        """Max of the two one-sided statistics."""
        return max(self.g_pos, self.g_neg)

    def update(self, value: float) -> bool:
        """Fold one observation; returns True when drift is detected."""
        value = float(value)
        if self._reference.n < self.warmup:
            self._reference.update(value)
            if self._reference.n == self.warmup:
                # Freeze the reference; a degenerate (constant) warmup
                # gets a tiny floor so later deviations still register.
                self._ref_std = max(self._reference.std, 1e-12)
            return self.drifted
        z = (value - self._reference.mean) / self._ref_std
        self.g_pos = max(0.0, self.g_pos + z - self.k)
        self.g_neg = max(0.0, self.g_neg - z - self.k)
        if self.statistic > self.threshold:
            self.drifted = True
        return self.drifted

    def reset(self) -> None:
        """Restart the test, forgetting the reference."""
        self._reference.reset()
        self._ref_std = 0.0
        self.g_pos = 0.0
        self.g_neg = 0.0
        self.drifted = False

    def __repr__(self) -> str:
        return (
            f"TwoSidedCUSUM(n={self.n}, g_pos={self.g_pos:.4g}, "
            f"g_neg={self.g_neg:.4g}, drifted={self.drifted})"
        )
