"""Deterministic tumbling-window time series over the virtual clock.

Every observability view before this module collapsed a whole run into
one aggregate — one latency sketch, one counter total — which cannot
answer "what was p99 *during the drift window*" or "how much error
budget did minute three burn".  :class:`TimeSeries` is the missing
substrate: a metric laid out over tumbling windows of the DES virtual
clock, where each window holds a *mergeable* aggregate:

* **counter** windows accumulate deltas as exact fixed-point integers
  (the :class:`~repro.obs.metrics.Histogram` sum encoding), so window
  merges are associative and commutative — true integer addition, not
  float accumulation;
* **gauge** windows keep the last write, with a deterministic
  order-independent rule (max by ``(t, value)``), so two shards merging
  their gauge series agree regardless of merge order;
* **sketch** windows hold one
  :class:`~repro.obs.sketch.QuantileSketch` each, whose merge is
  byte-identical to single-stream ingestion.

Windows are keyed by *virtual clock coordinates* — window ``i`` covers
``[origin + i·width, origin + (i+1)·width)`` — never by wall time, so
two replays of the same DES run (or a live run and its trace replay)
produce byte-identical serialized series.  Hierarchical downsampling
(:meth:`TimeSeries.downsample`) is nothing but window merges at a
coarser key, and therefore inherits the order-independence of the
underlying aggregates: merging all windows of a sketch series yields a
sketch byte-identical (via ``to_json``) to the whole-run sketch fed the
same observations.

Empty-window queries are total functions: a quantile of an absent or
empty window returns NaN (the same sentinel
:meth:`QuantileSketch.quantile` uses) instead of raising deep inside
the sketch.

:func:`fold_timeline` folds a recorded serve span stream (the
vocabulary :mod:`repro.obs.monitor` recognizes) into a bank of series —
response/shed/reject/cache-hit counters, a latency sketch, and labeled
per-source / per-tenant children — and :func:`timeline_report` /
:func:`render_timeline_text` are the byte-stable JSON and text-dashboard
renderings behind ``python -m repro.obs timeline``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Sequence

from repro.obs.metrics import flat_metric_name
from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch, _to_fixed
from repro.obs.span import Span

__all__ = [
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_SKETCH",
    "SERIES_KINDS",
    "WindowSpec",
    "TimeSeries",
    "fold_timeline",
    "timeline_report",
    "render_timeline_text",
    "dumps_timeline",
]

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_SKETCH = "sketch"
#: Window aggregate kinds a series can hold.
SERIES_KINDS = (KIND_COUNTER, KIND_GAUGE, KIND_SKETCH)

#: Fixed-point scale shared with the sketch/histogram exact sums.
_SUM_FIXED_SHIFT = 1074


@dataclass(frozen=True)
class WindowSpec:
    """Tumbling-window geometry on the virtual clock.

    Window ``i`` covers ``[origin + i*width, origin + (i+1)*width)``.
    ``index`` is a pure function of the timestamp, so any two series
    sharing a spec place the same instant in the same window — the
    precondition for cross-series joins and order-independent merges.
    """

    width: float
    origin: float = 0.0

    def __post_init__(self) -> None:
        if not (self.width > 0.0 and math.isfinite(self.width)):
            raise ValueError(f"window width must be finite and > 0, got {self.width}")
        if not math.isfinite(self.origin):
            raise ValueError(f"window origin must be finite, got {self.origin}")

    def index(self, t: float) -> int:
        """Window index containing virtual time ``t``."""
        return math.floor((t - self.origin) / self.width)

    def start(self, index: int) -> float:
        """Inclusive start coordinate of window ``index``."""
        return self.origin + index * self.width

    def end(self, index: int) -> float:
        """Exclusive end coordinate of window ``index``."""
        return self.origin + (index + 1) * self.width


class TimeSeries:
    """One metric over tumbling virtual-time windows.

    Parameters
    ----------
    name:
        Series name (a registry-style dotted path, or a labeled flat
        name such as ``"timeline.latency{source=cache}"``).
    kind:
        One of :data:`SERIES_KINDS`.
    spec:
        Shared :class:`WindowSpec`.
    alpha:
        Sketch resolution for ``kind="sketch"`` windows.
    """

    __slots__ = ("name", "kind", "spec", "alpha", "_windows")

    def __init__(
        self,
        name: str,
        kind: str,
        spec: WindowSpec,
        *,
        alpha: float = DEFAULT_ALPHA,
    ):
        if kind not in SERIES_KINDS:
            raise ValueError(f"kind must be one of {SERIES_KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.spec = spec
        self.alpha = float(alpha)
        # counter: idx -> fixed-point int; gauge: idx -> (t, value);
        # sketch: idx -> QuantileSketch
        self._windows: dict = {}

    # -- ingestion -----------------------------------------------------

    def record(self, t: float, value: float = 1.0) -> None:
        """Fold one observation at virtual time ``t`` into its window."""
        t = float(t)
        value = float(value)
        if not (math.isfinite(t) and math.isfinite(value)):
            raise ValueError(
                f"series {self.name!r} observed non-finite (t={t!r}, value={value!r})"
            )
        idx = self.spec.index(t)
        if self.kind == KIND_COUNTER:
            if value < 0.0:
                raise ValueError(
                    f"counter series {self.name!r} cannot decrease ({value})"
                )
            self._windows[idx] = self._windows.get(idx, 0) + _to_fixed(value)
        elif self.kind == KIND_GAUGE:
            pair = (t, value)
            existing = self._windows.get(idx)
            # Last write wins, with (t, value) max as the deterministic
            # order-independent tie-break so shard merges commute.
            if existing is None or pair >= existing:
                self._windows[idx] = pair
        else:
            sketch = self._windows.get(idx)
            if sketch is None:
                sketch = QuantileSketch(self.name, alpha=self.alpha)
                self._windows[idx] = sketch
            sketch.observe(value)

    # -- reads ---------------------------------------------------------

    def window_indices(self) -> list[int]:
        """Sorted indices of non-empty windows."""
        return sorted(self._windows)

    def span(self) -> tuple[int, int] | None:
        """``(first, last)`` occupied window index, or None when empty."""
        if not self._windows:
            return None
        idxs = self._windows.keys()
        return (min(idxs), max(idxs))

    def value(self, index: int) -> float:
        """Window aggregate value: counter delta, gauge last write, sketch count.

        Absent windows read as 0.0 for counters/sketches and NaN for
        gauges (a gauge that was never written has no value).
        """
        entry = self._windows.get(index)
        if self.kind == KIND_COUNTER:
            return 0.0 if entry is None else entry / (1 << _SUM_FIXED_SHIFT)
        if self.kind == KIND_GAUGE:
            return float("nan") if entry is None else entry[1]
        return 0.0 if entry is None else float(entry.count)

    def quantile(self, index: int, q: float) -> float:
        """Sketch-window quantile; NaN for absent or empty windows.

        The NaN sentinel (matching
        :meth:`~repro.obs.sketch.QuantileSketch.quantile` on empty
        sketches) makes per-window quantile queries total — dashboards
        iterate the window range without guarding every cell.
        """
        if self.kind != KIND_SKETCH:
            raise TypeError(f"series {self.name!r} is {self.kind}, not sketch")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        sketch = self._windows.get(index)
        if sketch is None or sketch.count == 0:
            return float("nan")
        return sketch.quantile(q)

    def sketch_at(self, index: int) -> QuantileSketch | None:
        """The window's sketch, or None when absent."""
        if self.kind != KIND_SKETCH:
            raise TypeError(f"series {self.name!r} is {self.kind}, not sketch")
        return self._windows.get(index)

    def merged_sketch(self, name: str | None = None) -> QuantileSketch:
        """Order-independent merge of every window sketch.

        The result is byte-identical (via ``to_json``) to a whole-run
        sketch fed the same observations — the hierarchical-merge
        equivalence the timeline regression criteria assert.
        """
        if self.kind != KIND_SKETCH:
            raise TypeError(f"series {self.name!r} is {self.kind}, not sketch")
        merged = QuantileSketch(name if name is not None else self.name, alpha=self.alpha)
        for idx in sorted(self._windows):
            merged.merge(self._windows[idx])
        return merged

    def total(self) -> float:
        """Whole-series rollup: counter sum, gauge last write, sketch count."""
        if self.kind == KIND_COUNTER:
            return sum(self._windows.values()) / (1 << _SUM_FIXED_SHIFT)
        if self.kind == KIND_GAUGE:
            if not self._windows:
                return float("nan")
            return self._windows[max(self._windows)][1]
        return float(sum(s.count for s in self._windows.values()))

    # -- merge / downsample --------------------------------------------

    def _check_compatible(self, other: "TimeSeries") -> None:
        if other.kind != self.kind:
            raise ValueError(
                f"cannot merge {other.kind} series {other.name!r} into "
                f"{self.kind} series {self.name!r}"
            )
        if other.spec != self.spec:
            raise ValueError(
                f"cannot merge series with different window specs "
                f"({self.name!r} has {self.spec}, {other.name!r} has {other.spec})"
            )
        if self.kind == KIND_SKETCH and other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketch series with different alpha "
                f"({self.name!r} has {self.alpha}, {other.name!r} has {other.alpha})"
            )

    def merge(self, other: "TimeSeries") -> None:
        """Fold another series with identical kind/spec into this one.

        Window-by-window merge of order-independent aggregates, so the
        fold is associative and commutative — the shard fan-in property.
        """
        self._check_compatible(other)
        for idx, entry in other._windows.items():
            mine = self._windows.get(idx)
            if self.kind == KIND_COUNTER:
                self._windows[idx] = (0 if mine is None else mine) + entry
            elif self.kind == KIND_GAUGE:
                if mine is None or entry >= mine:
                    self._windows[idx] = entry
            else:
                if mine is None:
                    mine = QuantileSketch(self.name, alpha=self.alpha)
                    self._windows[idx] = mine
                mine.merge(entry)

    def downsample(self, factor: int) -> "TimeSeries":
        """Coarsen by an integer factor via order-independent window merges.

        The result's window ``j`` aggregates source windows
        ``[j*factor, (j+1)*factor)`` (floor division handles negative
        indices), so repeated downsampling composes: ``downsample(a*b)``
        equals ``downsample(a).downsample(b)`` byte-for-byte.
        """
        if int(factor) != factor or factor < 1:
            raise ValueError(f"downsample factor must be an integer >= 1, got {factor}")
        factor = int(factor)
        coarse = TimeSeries(
            self.name,
            self.kind,
            WindowSpec(self.spec.width * factor, self.spec.origin),
            alpha=self.alpha,
        )
        for idx, entry in self._windows.items():
            cidx = idx // factor
            mine = coarse._windows.get(cidx)
            if self.kind == KIND_COUNTER:
                coarse._windows[cidx] = (0 if mine is None else mine) + entry
            elif self.kind == KIND_GAUGE:
                if mine is None or entry >= mine:
                    coarse._windows[cidx] = entry
            else:
                if mine is None:
                    mine = QuantileSketch(self.name, alpha=self.alpha)
                    coarse._windows[cidx] = mine
                mine.merge(entry)
        return coarse

    # -- serialization -------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready snapshot; windows as index-sorted ``[idx, payload]`` pairs.

        The pair-list form keeps numeric window order under
        ``sort_keys`` serialization (string keys would sort "10" before
        "2"), which is what makes :meth:`to_json` byte-stable.
        """
        windows = []
        for idx in sorted(self._windows):
            entry = self._windows[idx]
            if self.kind == KIND_COUNTER:
                payload = entry / (1 << _SUM_FIXED_SHIFT)
            elif self.kind == KIND_GAUGE:
                payload = {"t": entry[0], "value": entry[1]}
            else:
                payload = entry.as_dict()
            windows.append([idx, payload])
        out = {
            "type": "timeseries",
            "name": self.name,
            "kind": self.kind,
            "window_s": self.spec.width,
            "origin": self.spec.origin,
            "windows": windows,
        }
        if self.kind == KIND_SKETCH:
            out["alpha"] = self.alpha
        return out

    def to_json(self) -> str:
        """Canonical byte-stable JSON: sorted keys, compact separators."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "TimeSeries":
        """Rebuild a series from an :meth:`as_dict` snapshot."""
        if payload.get("type") != "timeseries":
            raise ValueError(f"not a timeseries snapshot: {payload.get('type')!r}")
        series = cls(
            str(payload["name"]),
            str(payload["kind"]),
            WindowSpec(float(payload["window_s"]), float(payload["origin"])),
            alpha=float(payload.get("alpha", DEFAULT_ALPHA)),
        )
        for idx, entry in payload["windows"]:
            idx = int(idx)
            if series.kind == KIND_COUNTER:
                series._windows[idx] = _to_fixed(float(entry))
            elif series.kind == KIND_GAUGE:
                series._windows[idx] = (float(entry["t"]), float(entry["value"]))
            else:
                series._windows[idx] = QuantileSketch.from_dict(
                    entry, name=series.name
                )
        return series

    @classmethod
    def from_json(cls, text: str) -> "TimeSeries":
        """Rebuild a series from its :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        return (
            f"TimeSeries({self.name!r}, kind={self.kind}, "
            f"windows={len(self._windows)}, width={self.spec.width})"
        )


# ----------------------------------------------------------------------
# Serve-trace timeline folding.

#: Base series every serve timeline carries (the counter family mirrors
#: the monitor suite's registry fold, windowed).
_COUNTER_SERIES = (
    ("timeline.responses", ("reject", "shed", "cache_hit", "degraded_row", "fallback")),
    ("timeline.rejected", ("reject",)),
    ("timeline.shed", ("shed",)),
    ("timeline.cache_hits", ("cache_hit",)),
    ("timeline.fallbacks", ("fallback",)),
    ("timeline.lookups", ("uq_row", "degraded_row")),
    ("timeline.retrains", ("retrain", "control_retrain")),
    ("timeline.batches", ("flush",)),
)

#: Span name -> latency source label for the per-source sketch children.
_SOURCE_OF = {
    "cache_hit": "cache",
    "uq_row": "nn",
    "degraded_row": "nn",
    "fallback": "simulator",
}


def fold_timeline(
    spans: Sequence[Span],
    *,
    window: float = 0.05,
    origin: float = 0.0,
    alpha: float = DEFAULT_ALPHA,
) -> dict[str, TimeSeries]:
    """Fold a recorded serve span stream into a bank of windowed series.

    Mirrors the :class:`~repro.obs.monitor.MonitorSuite` fold (same
    recognized span vocabulary, same latency attribute), but lays every
    tally out over tumbling windows keyed by span *end* time.  Returns
    a name-keyed dict of series: the :data:`_COUNTER_SERIES` counters,
    a ``timeline.latency`` sketch series, and labeled per-source /
    per-tenant children (``timeline.latency{source=...}``,
    ``timeline.responses{tenant=...}``) when the spans carry those
    attributes.  A pure function of the span sequence — live runs and
    trace replays produce byte-identical banks.
    """
    spec = WindowSpec(float(window), float(origin))
    bank: dict[str, TimeSeries] = {}
    for name, _ in _COUNTER_SERIES:
        bank[name] = TimeSeries(name, KIND_COUNTER, spec)
    bank["timeline.latency"] = TimeSeries(
        "timeline.latency", KIND_SKETCH, spec, alpha=alpha
    )

    def counter(name: str, labels: tuple[tuple[str, str], ...] = ()) -> TimeSeries:
        flat = flat_metric_name(name, labels)
        series = bank.get(flat)
        if series is None:
            series = TimeSeries(flat, KIND_COUNTER, spec)
            bank[flat] = series
        return series

    def sketch(name: str, labels: tuple[tuple[str, str], ...] = ()) -> TimeSeries:
        flat = flat_metric_name(name, labels)
        series = bank.get(flat)
        if series is None:
            series = TimeSeries(flat, KIND_SKETCH, spec, alpha=alpha)
            bank[flat] = series
        return series

    response_names = set(_COUNTER_SERIES[0][1])
    for span in spans:
        name = span.name
        folded = False
        for series_name, triggers in _COUNTER_SERIES:
            if name in triggers:
                bank[series_name].record(span.t_end)
                folded = True
        lat = span.attrs.get("lat")
        if name == "uq_row" and lat is not None:
            # Confident uq_row is also a response (monitor fold parity).
            bank["timeline.responses"].record(span.t_end)
            folded = True
        if not folded:
            continue
        tenant = span.attrs.get("tenant")
        is_response = name in response_names or (name == "uq_row" and lat is not None)
        if tenant is not None and is_response:
            counter("timeline.responses", (("tenant", str(tenant)),)).record(
                span.t_end
            )
        if lat is not None:
            lat = float(lat)
            bank["timeline.latency"].record(span.t_end, lat)
            source = _SOURCE_OF.get(name)
            if source is not None:
                sketch("timeline.latency", (("source", source),)).record(
                    span.t_end, lat
                )
            if tenant is not None:
                sketch("timeline.latency", (("tenant", str(tenant)),)).record(
                    span.t_end, lat
                )
    return bank


#: Quantile columns of the timeline dashboard.
_TIMELINE_QUANTILES = (("p50_s", 0.50), ("p90_s", 0.90), ("p99_s", 0.99))


def _nan_to_none(x: float) -> float | None:
    return None if math.isnan(x) else x


def timeline_report(
    spans: Sequence[Span],
    *,
    window: float = 0.05,
    origin: float = 0.0,
    alpha: float = DEFAULT_ALPHA,
    downsample: int = 1,
) -> dict:
    """JSON-ready timeline over a recorded serve span stream.

    ``rows`` is the dashboard: one entry per window in the occupied
    range with counter deltas and latency quantiles (empty windows read
    as zero counts and ``null`` quantiles — the NaN sentinel, made
    JSON-safe).  ``series`` is the full mergeable state of every folded
    series, and ``merged_latency`` is the hierarchical merge of all
    latency windows — byte-identical to a whole-run sketch of the same
    observations, which the regression gate asserts.
    """
    if not isinstance(downsample, int) or downsample < 1:
        raise ValueError(
            f"downsample factor must be an integer >= 1, got {downsample}"
        )
    bank = fold_timeline(spans, window=window, origin=origin, alpha=alpha)
    if downsample > 1:
        bank = {name: s.downsample(downsample) for name, s in bank.items()}
    latency = bank["timeline.latency"]
    occupied: set[int] = set()
    for series in bank.values():
        occupied.update(series.window_indices())
    rows = []
    if occupied:
        lo, hi = min(occupied), max(occupied)
        spec = latency.spec
        for idx in range(lo, hi + 1):
            row = {
                "window": idx,
                "t_start": spec.start(idx),
                "responses": bank["timeline.responses"].value(idx),
                "rejected": bank["timeline.rejected"].value(idx),
                "shed": bank["timeline.shed"].value(idx),
                "cache_hits": bank["timeline.cache_hits"].value(idx),
                "fallbacks": bank["timeline.fallbacks"].value(idx),
                "retrains": bank["timeline.retrains"].value(idx),
                "latency_count": latency.value(idx),
            }
            for key, q in _TIMELINE_QUANTILES:
                row[key] = _nan_to_none(latency.quantile(idx, q))
            rows.append(row)
    merged = latency.merged_sketch()
    return {
        "meta": {
            "window_s": latency.spec.width,
            "origin": latency.spec.origin,
            "alpha": alpha,
            "downsample": int(downsample),
            "n_windows": len(rows),
            "n_series": len(bank),
        },
        "rows": rows,
        "series": {name: bank[name].as_dict() for name in sorted(bank)},
        "merged_latency": merged.as_dict(),
    }


def dumps_timeline(report: dict) -> str:
    """Canonical byte-stable JSON for a :func:`timeline_report`."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def _fmt(x: float | None) -> str:
    if x is None:
        return "-"
    return f"{x:.3g}"


def render_timeline_text(report: dict) -> str:
    """Text dashboard: one row per window, counters and latency quantiles."""
    meta = report["meta"]
    lines = [
        (
            f"timeline: {meta['n_windows']} window(s) x {meta['window_s']:g}s "
            f"(origin {meta['origin']:g}, {meta['n_series']} series)"
        ),
        (
            f"{'win':>5} {'t_start':>9} {'resp':>6} {'shed':>5} {'rej':>5} "
            f"{'cache':>6} {'fall':>5} {'retr':>5} "
            f"{'p50_s':>9} {'p90_s':>9} {'p99_s':>9}"
        ),
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['window']:>5} {row['t_start']:>9.4g} "
            f"{int(row['responses']):>6} {int(row['shed']):>5} "
            f"{int(row['rejected']):>5} {int(row['cache_hits']):>6} "
            f"{int(row['fallbacks']):>5} {int(row['retrains']):>5} "
            f"{_fmt(row['p50_s']):>9} {_fmt(row['p90_s']):>9} "
            f"{_fmt(row['p99_s']):>9}"
        )
    merged = report["merged_latency"]
    lines.append(
        f"whole-run latency: count={merged['count']} mean={merged['mean']:.3g}s "
        f"max={merged['max']:.3g}s"
    )
    return "\n".join(lines)
