"""Per-request latency decomposition reconstructed from span trees.

``python -m repro.obs summarize`` says how much time each *kind* took;
this module answers the tail-latency question — *why is p99 slow?* —
by reconstructing, for every served request in a serve trace, where its
end-to-end latency went:

* ``admission`` — arrival to entering the pipeline (zero in the current
  synchronous admission path; cache hits book their arrival→probe gap
  here);
* ``cache`` — quantized-LRU lookup service time;
* ``batch_collect`` — waiting in the micro-batcher for the flush
  trigger (fill or timer) while the NN was otherwise idle;
* ``nn_busy`` — waiting because earlier flushes held the NN
  (head-of-line blocking);
* ``retrain_wait`` — waiting while a retrain held the NN — the
  *retrain interference* component;
* ``gate`` — the request's own flush: vectorized UQ gate + forward;
* ``pool_wait`` — gate-rejected rows queueing for a fallback worker;
* ``simulate`` — the fallback simulation itself.

The reconstruction uses only recorded span coordinates: a row's arrival
time is recovered from its span's ``lat`` attribute (``t_done - lat``),
its wait interval ``[t_arrival, flush.t_start]`` is intersected with
the merged ``train``-kind and ``flush`` interval unions to split
blocking time into ``retrain_wait`` / ``nn_busy`` / ``batch_collect``,
and the post-flush stages come straight off the fallback span.  By
construction the stages sum to the recorded latency up to float
rounding; :func:`decompose` records the worst residual and the serve
bench gates it at 1e-9 virtual seconds over the committed traces.

Per request, the **critical stage** is the stage carrying the largest
share; :func:`aggregate` buckets requests into percentile bands (p50 /
p90 / p99 boundaries by default) and attributes blame per band — the
delta between the tail band's and the body band's stage means is what
makes p99 slow *that does not make p50 slow*.

Shed and rejected requests carry no latency (no ``lat`` attribute) and
are reported as unattributed counts, never silently dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch, exact_quantile
from repro.obs.span import Span

__all__ = [
    "STAGES",
    "RequestLatency",
    "decompose",
    "aggregate",
    "latency_report",
    "render_latency_text",
    "render_latency_json",
]

#: Stage keys, in pipeline order — also the tie-break order for the
#: per-request critical stage.
STAGES = (
    "admission",
    "cache",
    "batch_collect",
    "nn_busy",
    "retrain_wait",
    "gate",
    "pool_wait",
    "simulate",
)

#: Default percentile-band boundaries for blame attribution.
DEFAULT_BANDS = (0.5, 0.9, 0.99)


@dataclass(frozen=True)
class RequestLatency:
    """One served request's reconstructed latency decomposition."""

    query_id: int
    source: str
    status: str
    t_arrival: float
    t_done: float
    latency: float
    stages: dict

    @property
    def residual(self) -> float:
        """|sum of stages - recorded latency| — float rounding only."""
        total = 0.0
        for stage in STAGES:
            total += self.stages[stage]
        return abs(total - self.latency)

    @property
    def critical_stage(self) -> str:
        """The stage carrying the largest share (pipeline-order ties)."""
        best = STAGES[0]
        for stage in STAGES[1:]:
            if self.stages[stage] > self.stages[best]:
                best = stage
        return best


def _merged_intervals(
    intervals: Sequence[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Coalesce intervals into a sorted disjoint union."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def _overlap(lo: float, hi: float, merged: Sequence[tuple[float, float]]) -> float:
    """Total intersection of ``[lo, hi]`` with a disjoint interval union."""
    if hi <= lo:
        return 0.0
    total = 0.0
    for a, b in merged:
        if b <= lo:
            continue
        if a >= hi:
            break
        total += min(hi, b) - max(lo, a)
    return total


def _empty_stages() -> dict:
    return {stage: 0.0 for stage in STAGES}


def decompose(spans: Sequence[Span], *, meta: dict | None = None) -> dict:
    """Reconstruct per-request stage decompositions from a serve trace.

    Returns a dict with

    * ``records`` — one :class:`RequestLatency` per served request, in
      query-id order;
    * ``unattributed`` — ``{"rejected": n, "shed": n}`` counts (those
      spans carry no latency by design);
    * ``max_residual_s`` — the worst |stage sum − recorded latency|
      across all records (gated at 1e-9 by the serve bench).
    """
    spans = sorted(spans, key=lambda s: s.span_id)
    by_id = {s.span_id: s for s in spans}
    train_union = _merged_intervals(
        [(s.t_start, s.t_end) for s in spans if s.kind == "train"]
    )
    busy_union = _merged_intervals(
        [(s.t_start, s.t_end) for s in spans if s.kind == "train"]
        + [(s.t_start, s.t_end) for s in spans if s.name == "flush"]
    )
    records: list[RequestLatency] = []
    unattributed = {"rejected": 0, "shed": 0}

    def batch_wait(stages: dict, t_arrival: float, flush_start: float) -> None:
        """Split ``[t_arrival, flush_start]`` into collect/busy/retrain."""
        retrain = _overlap(t_arrival, flush_start, train_union)
        busy = _overlap(t_arrival, flush_start, busy_union)
        stages["retrain_wait"] = retrain
        stages["nn_busy"] = busy - retrain
        stages["batch_collect"] = (flush_start - t_arrival) - busy

    for span in spans:
        lat = span.attrs.get("lat")
        if span.name == "reject":
            unattributed["rejected"] += 1
            continue
        if span.name == "shed":
            unattributed["shed"] += 1
            continue
        if lat is None:
            continue
        stages = _empty_stages()
        if span.name == "cache_hit":
            t_done = span.t_end
            t_arrival = t_done - lat
            stages["cache"] = span.t_end - span.t_start
            stages["admission"] = span.t_start - t_arrival
            records.append(
                RequestLatency(
                    query_id=int(span.attrs["query_id"]),
                    source="cache",
                    status="ok",
                    t_arrival=t_arrival,
                    t_done=t_done,
                    latency=lat,
                    stages=stages,
                )
            )
            continue
        flush = by_id.get(span.parent_id)
        if flush is None or flush.name != "flush":
            raise ValueError(
                f"span #{span.span_id} ({span.name!r}) carries a latency but "
                "has no enclosing flush span — not a serve trace?"
            )
        if span.name in ("uq_row", "degraded_row"):
            t_done = flush.t_end
            t_arrival = t_done - lat
            batch_wait(stages, t_arrival, flush.t_start)
            stages["gate"] = flush.t_end - flush.t_start
            records.append(
                RequestLatency(
                    query_id=int(span.attrs["query_id"]),
                    source="surrogate",
                    status="degraded" if span.name == "degraded_row" else "ok",
                    t_arrival=t_arrival,
                    t_done=t_done,
                    latency=lat,
                    stages=stages,
                )
            )
        elif span.name == "fallback":
            t_done = span.t_end
            t_arrival = t_done - lat
            batch_wait(stages, t_arrival, flush.t_start)
            stages["gate"] = flush.t_end - flush.t_start
            stages["pool_wait"] = span.t_start - flush.t_end
            stages["simulate"] = span.t_end - span.t_start
            records.append(
                RequestLatency(
                    query_id=int(span.attrs["query_id"]),
                    source="simulation",
                    status="ok",
                    t_arrival=t_arrival,
                    t_done=t_done,
                    latency=lat,
                    stages=stages,
                )
            )

    records.sort(key=lambda r: r.query_id)
    max_residual = max((r.residual for r in records), default=0.0)
    return {
        "records": records,
        "unattributed": unattributed,
        "max_residual_s": max_residual,
    }


def _band_labels(bands: Sequence[float]) -> list[str]:
    edges = ["p0", *[f"p{100 * b:g}" for b in bands], "p100"]
    return [f"{lo}_{hi}" for lo, hi in zip(edges, edges[1:])]


def aggregate(
    records: Sequence[RequestLatency],
    *,
    bands: Sequence[float] = DEFAULT_BANDS,
) -> dict:
    """Blame attribution by percentile band over decomposed requests.

    ``bands`` are interior quantile boundaries (default p50/p90/p99):
    requests are bucketed by their end-to-end latency relative to the
    exact population quantiles, each band reports per-stage means,
    shares and critical-stage counts, and ``tail_blame`` is the
    stage-mean delta between the top band and the bottom band — the
    components that make the tail slow without making the body slow.
    """
    bands = tuple(bands)
    if any(not 0.0 < b < 1.0 for b in bands) or list(bands) != sorted(set(bands)):
        raise ValueError(f"bands must be strictly increasing in (0, 1): {bands}")
    labels = _band_labels(bands)
    if not records:
        return {"n": 0, "bands": [], "tail_blame": None, "stages": {}}

    ordered = sorted(records, key=lambda r: (r.latency, r.query_id))
    latencies = [r.latency for r in ordered]
    thresholds = [exact_quantile(latencies, b) for b in bands]

    rows = [
        {
            "band": label,
            "n": 0,
            "mean_latency_s": 0.0,
            "stage_mean_s": _empty_stages(),
            "stage_share": _empty_stages(),
            "critical": {},
        }
        for label in labels
    ]
    for rec in ordered:
        idx = 0
        while idx < len(thresholds) and rec.latency > thresholds[idx]:
            idx += 1
        row = rows[idx]
        row["n"] += 1
        row["mean_latency_s"] += rec.latency
        for stage in STAGES:
            row["stage_mean_s"][stage] += rec.stages[stage]
        crit = rec.critical_stage
        row["critical"][crit] = row["critical"].get(crit, 0) + 1

    totals = _empty_stages()
    for rec in ordered:
        for stage in STAGES:
            totals[stage] += rec.stages[stage]
    grand_total = sum(totals.values())

    for row in rows:
        n = row["n"]
        if n:
            row["mean_latency_s"] /= n
            for stage in STAGES:
                row["stage_mean_s"][stage] /= n
        band_total = sum(row["stage_mean_s"].values())
        for stage in STAGES:
            row["stage_share"][stage] = (
                row["stage_mean_s"][stage] / band_total if band_total else 0.0
            )
        row["critical"] = {k: row["critical"][k] for k in sorted(row["critical"])}

    top, bottom = rows[-1], rows[0]
    delta = {
        stage: top["stage_mean_s"][stage] - bottom["stage_mean_s"][stage]
        for stage in STAGES
    }
    blame_stage = STAGES[0]
    for stage in STAGES[1:]:
        if delta[stage] > delta[blame_stage]:
            blame_stage = stage
    tail_blame = {
        "band": labels[-1],
        "vs": labels[0],
        "delta_mean_s": delta,
        "top_stage": blame_stage,
    }
    return {
        "n": len(ordered),
        "thresholds_s": {
            f"p{100 * b:g}": t for b, t in zip(bands, thresholds)
        },
        "bands": rows,
        "tail_blame": tail_blame,
        "stages": {
            stage: {
                "total_seconds": totals[stage],
                "share": totals[stage] / grand_total if grand_total else 0.0,
            }
            for stage in STAGES
        },
    }


def latency_report(
    spans: Sequence[Span],
    *,
    meta: dict | None = None,
    bands: Sequence[float] = DEFAULT_BANDS,
    alpha: float = DEFAULT_ALPHA,
) -> dict:
    """Full JSON-ready tail-latency report for one serve trace.

    Combines the per-source scorecard (quantiles via a fresh
    :class:`~repro.obs.sketch.QuantileSketch` per source — the same
    estimates a live :class:`~repro.serve.metrics.ServeMetrics` serves),
    the stage totals, the percentile-band blame attribution and the
    decomposition-exactness residual.
    """
    meta = dict(meta or {})
    dec = decompose(spans, meta=meta)
    records = dec["records"]

    scorecard: dict = {}
    sketches: dict[str, QuantileSketch] = {}
    for rec in records:
        sketches.setdefault(
            rec.source, QuantileSketch(f"latency.{rec.source}", alpha=alpha)
        ).observe(rec.latency)
    merged = QuantileSketch("latency.all", alpha=alpha)
    for source in sorted(sketches):
        merged.merge(sketches[source])
    sketches["all"] = merged
    for source in sorted(sketches):
        sk = sketches[source]
        row = {
            "count": sk.count,
            "mean_s": sk.mean,
            "min_s": sk.vmin,
            "max_s": sk.vmax,
            "alpha": sk.alpha,
        }
        for label, q in (
            ("p50_s", 0.50), ("p90_s", 0.90), ("p99_s", 0.99), ("p999_s", 0.999)
        ):
            row[label] = sk.quantile(q)
        scorecard[source] = row

    return {
        "version": 1,
        "n_spans": len(spans),
        "n_served": len(records),
        "unattributed": dec["unattributed"],
        "max_residual_s": dec["max_residual_s"],
        "scorecard": scorecard,
        "blame": aggregate(records, bands=bands),
        "meta": meta,
    }


def render_latency_text(report: dict) -> str:
    """Human-readable tail-latency report."""
    lines = [
        f"latency: {report['n_served']} served requests decomposed from "
        f"{report['n_spans']} spans "
        f"(max residual {report['max_residual_s']:.3g} s, "
        f"unattributed {report['unattributed']})"
    ]
    lines.append("scorecard (per source, sketch quantiles):")
    for source, row in report["scorecard"].items():
        lines.append(
            f"  {source:<12} n {row['count']:>6}  mean {row['mean_s']:.3g} s  "
            f"p50 {row['p50_s']:.3g}  p90 {row['p90_s']:.3g}  "
            f"p99 {row['p99_s']:.3g}  p99.9 {row['p999_s']:.3g}  "
            f"max {row['max_s']:.3g}"
        )
    blame = report["blame"]
    if blame["n"]:
        lines.append("stage totals (share of all attributed seconds):")
        for stage in STAGES:
            row = blame["stages"][stage]
            if row["total_seconds"] == 0.0:
                continue
            lines.append(
                f"  {stage:<14} {row['total_seconds']:.6g} s  "
                f"({100 * row['share']:.1f}%)"
            )
        lines.append("bands (critical stage = largest share per request):")
        for row in blame["bands"]:
            crit = ", ".join(f"{k}:{v}" for k, v in row["critical"].items())
            lines.append(
                f"  {row['band']:<10} n {row['n']:>6}  "
                f"mean {row['mean_latency_s']:.3g} s  critical [{crit}]"
            )
        tb = blame["tail_blame"]
        deltas = {k: v for k, v in tb["delta_mean_s"].items() if v != 0.0}
        ranked = sorted(deltas, key=lambda k: -deltas[k])
        lines.append(
            f"tail blame ({tb['band']} vs {tb['vs']}): top stage "
            f"{tb['top_stage']}"
        )
        for stage in ranked:
            lines.append(f"  {stage:<14} {deltas[stage]:+.6g} s mean")
    return "\n".join(lines)


def render_latency_json(report: dict) -> str:
    """Byte-stable JSON report: sorted keys, fixed layout."""
    return json.dumps(report, indent=2, sort_keys=True)
