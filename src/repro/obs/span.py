"""The span model: one named, timed, attributed interval of work.

A :class:`Span` is the unit of the tracing backbone — a half-open
interval ``[t_start, t_end]`` on some clock (wall or simulated), with a
``kind`` that groups spans for aggregation and a ``parent_id`` that
links spans into trees.  Spans are plain frozen values: recorded once by
a :class:`~repro.obs.trace.Tracer`, serialized losslessly by
:mod:`repro.obs.export`, and folded into summaries by
:mod:`repro.obs.summary`.

The ``kind`` vocabulary is deliberately shared with the
:class:`~repro.util.timing.WallClockLedger` categories — spans of kind
``"lookup"``, ``"simulate"``, ``"train"`` and ``"cache"`` ARE the ledger
entries of a traced run, which is what lets
:func:`repro.obs.summary.ledger_from_spans` rebuild the §III-D
effective-speedup inputs from a trace file alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Span",
    "KIND_LOOKUP",
    "KIND_SIMULATE",
    "KIND_TRAIN",
    "KIND_CACHE",
    "LEDGER_KINDS",
]

#: Span kinds that double as :class:`~repro.util.timing.WallClockLedger`
#: categories.  A span of one of these kinds contributes its duration as
#: one ledger record when a trace is folded back into §III-D form.
KIND_LOOKUP = "lookup"
KIND_SIMULATE = "simulate"
KIND_TRAIN = "train"
KIND_CACHE = "cache"
LEDGER_KINDS = (KIND_LOOKUP, KIND_SIMULATE, KIND_TRAIN, KIND_CACHE)


@dataclass(frozen=True)
class Span:
    """One timed interval of work in a trace.

    Attributes
    ----------
    span_id:
        Tracer-local identifier, dense from 0 in creation order.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` for a root.
    name:
        Human label for this occurrence (``"flush"``, ``"fallback"``).
    kind:
        Aggregation group; ledger-compatible kinds are listed in
        :data:`LEDGER_KINDS`, everything else is free-form.
    t_start, t_end:
        Interval endpoints in seconds on the tracer's clock.  Virtual
        when traced against a simulated clock, wall seconds otherwise.
    attrs:
        JSON-serializable key/value annotations (query ids, batch fill,
        worker placement, ...).
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    t_start: float
    t_end: float
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.span_id < 0:
            raise ValueError(f"span_id must be >= 0, got {self.span_id}")
        if not self.name:
            raise ValueError("span name must be non-empty")
        if not self.kind:
            raise ValueError("span kind must be non-empty")
        if self.t_end < self.t_start:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.t_end} < {self.t_start})"
            )

    @property
    def duration(self) -> float:
        """Elapsed seconds, ``t_end - t_start``."""
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """JSON-ready representation (the JSONL event body)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t0": self.t_start,
            "t1": self.t_end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            span_id=int(payload["id"]),
            parent_id=None if payload["parent"] is None else int(payload["parent"]),
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            t_start=float(payload["t0"]),
            t_end=float(payload["t1"]),
            attrs=dict(payload.get("attrs", {})),
        )
