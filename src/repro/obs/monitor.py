"""Online drift/SLO monitoring and alerting over the trace backbone.

PR 4's backbone is a flight recorder; this module is the control plane
on top of it (the paper's MLControl category, §I).  A
:class:`MonitorSuite` consumes the *same* span stream a
:class:`~repro.obs.trace.Tracer` records — fed live by the serving
event loop, or replayed from a JSONL trace file via
:func:`watch_trace` — folds it into an internal
:class:`~repro.obs.metrics.MetricRegistry`, and drives two families of
monitors:

* **span monitors** (:class:`CalibrationCoverageMonitor`) react to
  individual spans: every fallback simulation carries the surrogate's
  prediction, its UQ std and the simulated truth (the ``cal`` attr), so
  the monitor maintains a sliding window of served-prediction z-scores,
  runs a Page–Hinkley / CUSUM change-point test on them, and checks the
  empirical interval coverage with
  :func:`repro.core.uq.calibration_table` — undercoverage means the
  surrogate's uncertainties have stopped being honest;
* **window monitors** (:class:`LatencySLOMonitor`,
  :class:`ShedRateMonitor`, :class:`CacheHitRateMonitor`) evaluate at
  fixed virtual-time window boundaries over registry snapshot deltas —
  SLO error-budget burn rate, shed/reject fraction, EWMA-smoothed cache
  hit rate.

Alerts flow through an :class:`AlertManager` that deduplicates by
``(source, kind)`` cooldown, ranks by severity, and keeps a byte-stable
event log (:func:`dumps_alerts`).  An alert may carry an *action*
(``retrain`` / ``tighten_gate`` / ``force_fallback``) which the serving
loop — subscribed to the suite — executes and records as a span, so
every control decision lands in the trace and the §III-D ledger stays
complete.

Determinism contract: the suite is a pure function of the span sequence
it is fed.  The server feeds every span it records, in record order, and
trace files serialize spans in that same order — so replaying a trace
through ``python -m repro.obs monitor`` reproduces the live alert log
byte for byte.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs.metrics import MetricRegistry
from repro.obs.span import Span
from repro.obs.streaming import EWMA, PageHinkley, TwoSidedCUSUM

__all__ = [
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "SEVERITY_CRITICAL",
    "SEVERITIES",
    "ACTION_RETRAIN",
    "ACTION_TIGHTEN_GATE",
    "ACTION_FORCE_FALLBACK",
    "Alert",
    "AlertManager",
    "CalibrationCoverageMonitor",
    "LatencySLOMonitor",
    "ShedRateMonitor",
    "CacheHitRateMonitor",
    "MonitorSuite",
    "default_serve_monitors",
    "watch_trace",
    "dumps_alerts",
    "render_alerts_text",
]

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"
#: Severities in ascending order; index = rank.
SEVERITIES = (SEVERITY_INFO, SEVERITY_WARNING, SEVERITY_CRITICAL)

#: Control actions the serving loop knows how to execute.  Kept as plain
#: strings so producers stay duck-typed (no serve import here, no obs
#: import in the server).
ACTION_RETRAIN = "retrain"
ACTION_TIGHTEN_GATE = "tighten_gate"
ACTION_FORCE_FALLBACK = "force_fallback"


@dataclass(frozen=True)
class Alert:
    """One monitor finding at one instant of (virtual) time.

    Attributes
    ----------
    t:
        Clock coordinate the finding refers to (the triggering span's
        end, or a window boundary).
    source:
        Name of the monitor that raised it.
    kind:
        Stable machine-readable finding type (``"calibration_coverage"``,
        ``"slo_burn"``); dedup cooldowns key on ``(source, kind)``.
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable one-liner.
    action:
        Optional control action (:data:`ACTION_RETRAIN`, ...) for the
        serving loop to execute.
    attrs:
        JSON-serializable evidence (coverage, statistic values, counts).
    """

    t: float
    source: str
    kind: str
    severity: str
    message: str
    action: str | None = None
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def severity_rank(self) -> int:
        """Ascending severity rank (info=0 ... critical=2)."""
        return SEVERITIES.index(self.severity)

    def to_dict(self) -> dict:
        """JSON-ready representation (the alert-log line body)."""
        return {
            "t": self.t,
            "source": self.source,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "action": self.action,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Alert":
        """Rebuild an alert from :meth:`to_dict` output."""
        return cls(
            t=float(payload["t"]),
            source=str(payload["source"]),
            kind=str(payload["kind"]),
            severity=str(payload["severity"]),
            message=str(payload["message"]),
            action=payload.get("action"),
            attrs=dict(payload.get("attrs", {})),
        )


class AlertManager:
    """Deduplicating, severity-ranking sink for monitor alerts.

    Repeated findings of the same ``(source, kind)`` within ``cooldown``
    clock seconds of the last *fired* one are suppressed (counted, not
    logged), so a persistent condition produces a heartbeat rather than
    one alert per span.  Subscribers registered via :meth:`subscribe`
    are notified synchronously of every fired alert — this is the hook
    the serving loop uses to close the MLControl loop.
    """

    def __init__(self, *, cooldown: float = 0.0):
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.cooldown = float(cooldown)
        self.alerts: list[Alert] = []
        self.n_suppressed = 0
        self._last_fired: dict[tuple[str, str], float] = {}
        self._subscribers: list[Callable[[Alert], None]] = []

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        """Register a callback invoked on every fired (non-deduped) alert."""
        self._subscribers.append(callback)

    def fire(self, alert: Alert) -> Alert | None:
        """Log an alert unless deduplicated; returns it when fired."""
        key = (alert.source, alert.kind)
        last = self._last_fired.get(key)
        if last is not None and alert.t - last < self.cooldown:
            self.n_suppressed += 1
            return None
        self._last_fired[key] = alert.t
        self.alerts.append(alert)
        for callback in self._subscribers:
            callback(alert)
        return alert

    def ranked(self) -> list[Alert]:
        """Alerts most-severe first (ties broken by time, then source/kind)."""
        return sorted(
            self.alerts, key=lambda a: (-a.severity_rank, a.t, a.source, a.kind)
        )

    def summary(self) -> dict:
        """JSON-ready rollup: counts by severity and by (source, kind)."""
        by_severity = {s: 0 for s in SEVERITIES}
        by_kind: dict[str, int] = {}
        for a in self.alerts:
            by_severity[a.severity] += 1
            key = f"{a.source}/{a.kind}"
            by_kind[key] = by_kind.get(key, 0) + 1
        return {
            "n_alerts": len(self.alerts),
            "n_suppressed": self.n_suppressed,
            "by_severity": by_severity,
            "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
        }

    def __repr__(self) -> str:
        return (
            f"AlertManager(alerts={len(self.alerts)}, "
            f"suppressed={self.n_suppressed}, cooldown={self.cooldown})"
        )


# ----------------------------------------------------------------------
# Span monitors.
class CalibrationCoverageMonitor:
    """UQ calibration watchdog over served predictions.

    Every fallback simulation is a free ground-truth probe of the
    surrogate: the serving loop attaches the gate's prediction
    (``mean``), its UQ std and the simulated truth to the fallback span
    as the ``cal`` attr.  This monitor folds each probe's worst
    per-output z-score ``max_k |truth_k - mean_k| / std_k`` into a
    change-point detector (early warning) and, over a sliding window of
    probes, checks the empirical coverage of the ``±z·std`` interval via
    :func:`repro.core.uq.calibration_table` (confirmation).  Coverage
    below ``coverage_floor`` raises a critical alert carrying
    ``action`` — the closed-loop retrain trigger — after which window
    and detector reset so recovery is judged on fresh data only.
    """

    def __init__(
        self,
        *,
        name: str = "uq_calibration",
        z: float = 1.645,
        window: int = 48,
        min_rows: int = 16,
        stride: int = 8,
        coverage_floor: float = 0.5,
        detector: PageHinkley | TwoSidedCUSUM | None = None,
        action: str | None = ACTION_RETRAIN,
    ):
        if z <= 0:
            raise ValueError(f"z must be > 0, got {z}")
        if not 0.0 < coverage_floor < 1.0:
            raise ValueError(f"coverage_floor must be in (0, 1), got {coverage_floor}")
        if min_rows < 2 or window < min_rows:
            raise ValueError("require window >= min_rows >= 2")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.name = name
        self.z = float(z)
        self.min_rows = int(min_rows)
        self.stride = int(stride)
        self.coverage_floor = float(coverage_floor)
        self.detector = detector if detector is not None else PageHinkley(
            delta=0.25, threshold=40.0, min_samples=8
        )
        self.action = action
        self._rows: deque[tuple[list, list, list]] = deque(maxlen=int(window))
        self._since_check = 0
        self._warned = False

    def _coverage(self) -> float:
        from repro.core.uq import UQResult, calibration_table

        mean = np.array([r[0] for r in self._rows], dtype=float)
        std = np.array([r[1] for r in self._rows], dtype=float)
        truth = np.array([r[2] for r in self._rows], dtype=float)
        table = calibration_table(
            UQResult(mean=mean, std=std), truth, z_values=(self.z,)
        )
        return float(table[0]["empirical"])

    def on_span(self, span: Span) -> list[Alert]:
        """Fold one span; returns candidate alerts (pre-dedup)."""
        cal = span.attrs.get("cal") if span.kind == "simulate" else None
        if not cal:
            return []
        mean, std, truth = cal["mean"], cal["std"], cal["truth"]
        values = [v for row in (mean, std, truth) for v in row]
        if not all(np.isfinite(v) for v in values):
            return []  # failed simulation or UQ-less gate: no probe
        zmax = max(
            abs(t - m) / max(s, 1e-12) for m, s, t in zip(mean, std, truth)
        )
        alerts: list[Alert] = []
        self.detector.update(zmax)
        if self.detector.drifted and not self._warned:
            self._warned = True
            alerts.append(
                Alert(
                    t=span.t_end,
                    source=self.name,
                    kind="uq_drift",
                    severity=SEVERITY_WARNING,
                    message=(
                        "change-point detector tripped on served-prediction "
                        f"z-scores (statistic {self.detector.statistic:.3g})"
                    ),
                    attrs={
                        "statistic": float(self.detector.statistic),
                        "n": int(self.detector.n),
                        "zmax": float(zmax),
                    },
                )
            )
        self._rows.append((list(mean), list(std), list(truth)))
        self._since_check += 1
        if len(self._rows) >= self.min_rows and self._since_check >= self.stride:
            self._since_check = 0
            coverage = self._coverage()
            if coverage < self.coverage_floor:
                alerts.append(
                    Alert(
                        t=span.t_end,
                        source=self.name,
                        kind="calibration_coverage",
                        severity=SEVERITY_CRITICAL,
                        message=(
                            f"empirical coverage {coverage:.3f} at z={self.z:g} "
                            f"below floor {self.coverage_floor:g} over "
                            f"{len(self._rows)} served probes"
                        ),
                        action=self.action,
                        attrs={
                            "coverage": coverage,
                            "floor": self.coverage_floor,
                            "z": self.z,
                            "n_rows": len(self._rows),
                        },
                    )
                )
                self.reset()
        return alerts

    def reset(self) -> None:
        """Drop the probe window and re-arm the detector."""
        self._rows.clear()
        self._since_check = 0
        self._warned = False
        self.detector.reset()


# ----------------------------------------------------------------------
# Window monitors (evaluated at fixed virtual-time boundaries over
# registry snapshot deltas).
class _CounterDelta:
    """Per-window delta reader over named registry counters."""

    __slots__ = ("_prev",)

    def __init__(self) -> None:
        self._prev: dict[str, float] = {}

    def take(self, registry: MetricRegistry, name: str) -> float:
        metric = registry.get(name)
        current = metric.value if metric is not None else 0.0
        delta = current - self._prev.get(name, 0.0)
        self._prev[name] = current
        return delta


class LatencySLOMonitor:
    """Error-budget burn-rate monitor over the window latency histogram.

    The SLO is "fraction of responses slower than ``slo_latency_s``
    stays below ``1 - target``".  Each window, the violation fraction is
    computed from the latency histogram's bucket-count delta (so the SLO
    threshold resolves to bucket granularity) and divided by the error
    budget: a burn rate of 1.0 consumes the budget exactly, and the
    monitor alerts when it reaches ``burn_threshold`` — the standard
    multi-window burn-rate alerting discipline, here over one window
    size for determinism.
    """

    def __init__(
        self,
        *,
        name: str = "latency_slo",
        slo_latency_s: float = 0.05,
        target: float = 0.99,
        burn_threshold: float = 2.0,
        min_count: int = 20,
        action: str | None = None,
        severity: str = SEVERITY_WARNING,
    ):
        if slo_latency_s <= 0:
            raise ValueError(f"slo_latency_s must be > 0, got {slo_latency_s}")
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        if burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be > 0, got {burn_threshold}")
        self.name = name
        self.slo_latency_s = float(slo_latency_s)
        self.target = float(target)
        self.burn_threshold = float(burn_threshold)
        self.min_count = int(min_count)
        self.action = action
        self.severity = severity
        self._prev_buckets: list[int] | None = None

    def on_window(self, t: float, registry: MetricRegistry) -> list[Alert]:
        """Evaluate one window boundary; returns candidate alerts."""
        hist = registry.get("mon.latency")
        if hist is None:
            return []
        buckets = list(hist.bucket_counts)
        prev = self._prev_buckets or [0] * len(buckets)
        self._prev_buckets = buckets
        delta = [b - p for b, p in zip(buckets, prev)]
        total = sum(delta)
        if total < max(self.min_count, 1):
            return []
        # Bucket b holds values in (edges[b-1], edges[b]]; a bucket lies
        # entirely above the SLO iff its lower bound >= slo.
        first_bad = bisect_left(hist.edges, self.slo_latency_s) + 1
        violations = sum(delta[first_bad:])
        burn = (violations / total) / (1.0 - self.target)
        if burn < self.burn_threshold:
            return []
        return [
            Alert(
                t=t,
                source=self.name,
                kind="slo_burn",
                severity=self.severity,
                message=(
                    f"latency SLO burn rate {burn:.2f}x "
                    f"({violations}/{total} responses over "
                    f"{self.slo_latency_s:g}s, target {self.target:g})"
                ),
                action=self.action,
                attrs={
                    "burn_rate": float(burn),
                    "violations": int(violations),
                    "responses": int(total),
                    "slo_latency_s": self.slo_latency_s,
                    "target": self.target,
                },
            )
        ]


class ShedRateMonitor:
    """Alerts when the per-window shed+reject fraction exceeds a cap."""

    def __init__(
        self,
        *,
        name: str = "shed_rate",
        max_rate: float = 0.05,
        min_count: int = 20,
        action: str | None = None,
        severity: str = SEVERITY_WARNING,
    ):
        if not 0.0 <= max_rate < 1.0:
            raise ValueError(f"max_rate must be in [0, 1), got {max_rate}")
        self.name = name
        self.max_rate = float(max_rate)
        self.min_count = int(min_count)
        self.action = action
        self.severity = severity
        self._delta = _CounterDelta()

    def on_window(self, t: float, registry: MetricRegistry) -> list[Alert]:
        """Evaluate one window boundary; returns candidate alerts."""
        responses = self._delta.take(registry, "mon.responses")
        dropped = self._delta.take(registry, "mon.shed") + self._delta.take(
            registry, "mon.rejected"
        )
        if responses < max(self.min_count, 1):
            return []
        rate = dropped / responses
        if rate <= self.max_rate:
            return []
        return [
            Alert(
                t=t,
                source=self.name,
                kind="shed_rate",
                severity=self.severity,
                message=(
                    f"shed/reject rate {rate:.3f} above cap {self.max_rate:g} "
                    f"({int(dropped)}/{int(responses)} this window)"
                ),
                action=self.action,
                attrs={
                    "rate": float(rate),
                    "dropped": float(dropped),
                    "responses": float(responses),
                    "max_rate": self.max_rate,
                },
            )
        ]


class CacheHitRateMonitor:
    """EWMA-smoothed cache hit-rate floor over window deltas.

    The raw per-window hit rate (hits / (hits + surrogate lookups)) is
    smoothed with an :class:`~repro.obs.streaming.EWMA` so one sparse
    window cannot flap the alert; the monitor fires when the smoothed
    rate sits below ``floor`` after at least ``min_windows`` windows.
    A floor of 0.0 (the default suite's choice for workloads without
    duplicate traffic) disables the monitor while still tracking the
    smoothed rate.
    """

    def __init__(
        self,
        *,
        name: str = "cache_hit_rate",
        floor: float = 0.0,
        alpha: float = 0.3,
        min_count: int = 20,
        min_windows: int = 3,
        action: str | None = None,
        severity: str = SEVERITY_INFO,
    ):
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must be in [0, 1), got {floor}")
        self.name = name
        self.floor = float(floor)
        self.min_count = int(min_count)
        self.min_windows = int(min_windows)
        self.action = action
        self.severity = severity
        self.ewma = EWMA(alpha)
        self._delta = _CounterDelta()

    def on_window(self, t: float, registry: MetricRegistry) -> list[Alert]:
        """Evaluate one window boundary; returns candidate alerts."""
        hits = self._delta.take(registry, "mon.cache_hits")
        lookups = self._delta.take(registry, "mon.lookups")
        population = hits + lookups
        if population < max(self.min_count, 1):
            return []
        smoothed = self.ewma.update(hits / population)
        if self.ewma.n < self.min_windows or smoothed >= self.floor:
            return []
        return [
            Alert(
                t=t,
                source=self.name,
                kind="cache_hit_rate",
                severity=self.severity,
                message=(
                    f"smoothed cache hit rate {smoothed:.3f} below floor "
                    f"{self.floor:g}"
                ),
                action=self.action,
                attrs={
                    "smoothed_rate": float(smoothed),
                    "floor": self.floor,
                    "n_windows": int(self.ewma.n),
                },
            )
        ]


# ----------------------------------------------------------------------
#: Span names the suite recognizes, mapped to the registry fold applied.
#: Spans with any other name are ignored entirely (they neither fold nor
#: advance the window clock), which keeps live monitoring and trace
#: replay in lockstep even for span classes only one side sees.
_RECOGNIZED = frozenset(
    {
        "reject",
        "shed",
        "cache_hit",
        "uq_row",
        "degraded_row",
        "fallback",
        "retrain",
        "control_retrain",
        "flush",
    }
)


class MonitorSuite:
    """Feeds a span stream to monitors and collects their alerts.

    The suite owns a private :class:`MetricRegistry` folded from the
    spans it recognizes (never the server's own registry, so replaying a
    trace needs nothing but the file) and a virtual-time window clock:
    the first recognized span's start anchors the boundary grid, and
    each recognized span's *end* advances it, evaluating every window
    monitor at each crossed boundary before the crossing span is folded.
    Out-of-order completions (a fallback whose simulation ends after
    later rows were served) land in the earliest unevaluated window —
    deterministically, because the feed order is the tracer's record
    order both live and on replay.

    ``on_span`` returns the alerts that *fired* (survived the
    :class:`AlertManager` dedup); the serving loop executes any actions
    they carry.
    """

    def __init__(
        self,
        monitors: Sequence[object],
        *,
        window: float = 0.05,
        manager: AlertManager | None = None,
    ):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = float(window)
        self.manager = manager if manager is not None else AlertManager()
        self.registry = MetricRegistry()
        self.monitors = list(monitors)
        self._span_monitors = [m for m in self.monitors if hasattr(m, "on_span")]
        self._window_monitors = [m for m in self.monitors if hasattr(m, "on_window")]
        self._boundary: float | None = None
        self.n_spans = 0
        self.n_windows = 0

    @property
    def alerts(self) -> list[Alert]:
        """Fired alerts, in firing order (delegates to the manager)."""
        return list(self.manager.alerts)

    def on_span(self, span: Span) -> list[Alert]:
        """Feed one span; returns the alerts that fired because of it."""
        if span.name not in _RECOGNIZED:
            return []
        self.n_spans += 1
        fired: list[Alert] = []
        if self._boundary is None:
            self._boundary = span.t_start + self.window
        while span.t_end >= self._boundary:
            boundary = self._boundary
            self._boundary = boundary + self.window
            self.n_windows += 1
            for monitor in self._window_monitors:
                for alert in monitor.on_window(boundary, self.registry):
                    out = self.manager.fire(alert)
                    if out is not None:
                        fired.append(out)
        self._fold(span)
        for monitor in self._span_monitors:
            for alert in monitor.on_span(span):
                out = self.manager.fire(alert)
                if out is not None:
                    fired.append(out)
        return fired

    def _fold(self, span: Span) -> None:
        reg = self.registry
        name = span.name
        lat = span.attrs.get("lat")
        if name == "reject":
            reg.counter("mon.responses").inc()
            reg.counter("mon.rejected").inc()
        elif name == "shed":
            reg.counter("mon.responses").inc()
            reg.counter("mon.shed").inc()
        elif name == "cache_hit":
            reg.counter("mon.responses").inc()
            reg.counter("mon.cache_hits").inc()
        elif name == "uq_row":
            reg.counter("mon.lookups").inc()
            if lat is not None:
                reg.counter("mon.responses").inc()
        elif name == "degraded_row":
            reg.counter("mon.lookups").inc()
            reg.counter("mon.responses").inc()
        elif name == "fallback":
            reg.counter("mon.responses").inc()
            reg.counter("mon.fallbacks").inc()
        elif name in ("retrain", "control_retrain"):
            reg.counter("mon.retrains").inc()
        elif name == "flush":
            reg.counter("mon.batches").inc()
        if lat is not None:
            reg.histogram("mon.latency").observe(float(lat))

    def summary(self) -> dict:
        """JSON-ready rollup of suite state and the alert log."""
        return {
            "n_spans": self.n_spans,
            "n_windows": self.n_windows,
            "window_s": self.window,
            "alerts": self.manager.summary(),
            "registry": self.registry.as_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"MonitorSuite(monitors={len(self.monitors)}, "
            f"spans={self.n_spans}, alerts={len(self.manager.alerts)})"
        )


def default_serve_monitors(
    *,
    window: float = 0.05,
    cooldown: float = 0.1,
    slo_latency_s: float = 0.05,
    coverage_floor: float = 0.5,
    calibration_z: float = 1.645,
    cache_floor: float = 0.0,
    calibration_action: str | None = ACTION_RETRAIN,
) -> MonitorSuite:
    """The canonical serve-trace monitor suite.

    Both the live serving bench and the ``python -m repro.obs monitor``
    replay CLI build their suite here, with identical defaults — the
    precondition for the live alert log and the trace-replayed one being
    byte-identical.
    """
    monitors = [
        CalibrationCoverageMonitor(
            z=calibration_z,
            coverage_floor=coverage_floor,
            action=calibration_action,
        ),
        LatencySLOMonitor(slo_latency_s=slo_latency_s),
        ShedRateMonitor(),
        CacheHitRateMonitor(floor=cache_floor),
    ]
    return MonitorSuite(
        monitors, window=window, manager=AlertManager(cooldown=cooldown)
    )


def watch_trace(spans: Sequence[Span], suite: MonitorSuite) -> list[Alert]:
    """Replay a span sequence through a suite; returns the fired alerts.

    Spans must be fed in the order the trace file stores them (the
    tracer's record order) — :func:`repro.obs.export.read_trace`
    preserves it — so the replayed alert log matches the live one.
    """
    for span in spans:
        suite.on_span(span)
    return suite.alerts


def dumps_alerts(alerts: Sequence[Alert]) -> str:
    """Serialize an alert log to its canonical byte-stable JSONL string."""
    return "".join(
        json.dumps(a.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        for a in alerts
    )


def render_alerts_text(alerts: Sequence[Alert], manager: AlertManager | None = None) -> str:
    """Human-readable alert report, most severe first."""
    if not alerts:
        lines = ["no alerts"]
    else:
        ranked = sorted(
            alerts, key=lambda a: (-a.severity_rank, a.t, a.source, a.kind)
        )
        lines = [f"{len(alerts)} alert(s):"]
        for a in ranked:
            action = f" -> {a.action}" if a.action else ""
            lines.append(
                f"  [{a.severity:<8}] t={a.t:.6g} {a.source}/{a.kind}: "
                f"{a.message}{action}"
            )
    if manager is not None:
        lines.append(f"suppressed by dedup: {manager.n_suppressed}")
    return "\n".join(lines)
