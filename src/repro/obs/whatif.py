"""Counterfactual what-if projection over recorded serve span trees.

The latency decomposition (:mod:`repro.obs.latency`) says where time
went; this module asks the follow-up an operator actually acts on:
*what would p99 be if we changed X?* — without re-running anything.  A
recorded trace is replayed under a hypothesis and each served request's
latency is re-projected from its own decomposition:

* ``cache_miss_free`` — every served request is answered at cache-hit
  cost (``meta["t_cache_hit"]``, falling back to the trace's observed
  mean cache-span duration).  Upper bound of any caching improvement:
  assumes a warm, infinite, perfectly-shared cache.
* ``half_batch_wait`` — the micro-batcher's max-wait is halved; each
  request's idle ``batch_collect`` component is scaled by the factor
  while head-of-line blocking (``nn_busy`` / ``retrain_wait``) and the
  flush cost stay put.  First-order projection: it ignores the
  second-order effect of smaller realized batches on the amortized
  per-row gate cost.
* ``faster_fallback`` — fallback simulations run ``1/factor`` times
  faster (default factor 0.5 = "2× faster workers").  This one is not a
  heuristic: the flush schedule is invariant to fallback durations (the
  pool never blocks the NN), so the projection *re-simulates the worker
  pool queue exactly* — same greedy next-free-worker discipline as
  :class:`~repro.parallel.cluster.OnlineDispatcher`, same submission
  order, scaled durations — and composes each fallback request's new
  ``pool_wait``/``simulate`` onto its unchanged batch stages.  The
  serve bench validates this projection against an *actual* DES re-run
  with ``t_simulate`` scaled by the same factor and gates the agreement
  at 10%.

Validity envelope (documented, and part of DESIGN.md §13): projections
assume the hypothesis does not change admission verdicts, gate
decisions or the flush schedule.  That holds exactly for the committed
agreement traces (no rejections, no deadline shedding, fallback
completions never feed back into batching) and approximately for
lightly-loaded traces; a saturated drift trace with depth-dependent
admission would need the full DES re-run the bench performs anyway.

The ``faster_fallback`` effective-speedup projection rebuilds the
§III-D model from the trace ledger with simulate durations scaled —
the measured counterpart of moving down the paper's ``T_train`` axis.
"""

from __future__ import annotations

import heapq
import json
from typing import Sequence

from repro.core.effective import EffectiveSpeedupModel
from repro.obs.latency import RequestLatency, decompose
from repro.obs.sketch import exact_quantile
from repro.obs.span import Span
from repro.obs.summary import ledger_from_spans
from repro.util.timing import WallClockLedger

__all__ = [
    "HYPOTHESES",
    "project",
    "whatif_report",
    "render_whatif_text",
    "render_whatif_json",
]

#: Supported hypotheses, in report order.
HYPOTHESES = ("cache_miss_free", "half_batch_wait", "faster_fallback")


def _population_stats(latencies: Sequence[float]) -> dict:
    """Exact mean/p50/p99/max block over a latency population."""
    ordered = sorted(latencies)
    n = len(ordered)
    total = 0.0
    for v in ordered:
        total += v
    return {
        "n": n,
        "mean_s": total / n if n else 0.0,
        "p50_s": exact_quantile(ordered, 0.50) if n else 0.0,
        "p99_s": exact_quantile(ordered, 0.99) if n else 0.0,
        "max_s": ordered[-1] if n else 0.0,
    }


def _resimulate_pool(
    jobs: Sequence[tuple[float, float]], n_workers: int, factor: float
) -> list[tuple[float, float]]:
    """Replay the fallback queue with durations scaled by ``factor``.

    ``jobs`` are ``(release, duration)`` in original submission order;
    returns ``(start, end)`` per job.  Mirrors
    :class:`~repro.parallel.cluster.OnlineDispatcher`: a min-heap of
    ``(free_at, submission_counter, worker)`` picks the next-free
    worker, ties broken FIFO.  Zero dispatch overhead and unit worker
    speeds — the serve pool's defaults; heterogeneous pools would need
    per-worker speeds from the trace.
    """
    heap = [(0.0, i, i) for i in range(n_workers)]
    heapq.heapify(heap)
    counter = n_workers
    placed: list[tuple[float, float]] = []
    for release, duration in jobs:
        free_at, _, worker = heapq.heappop(heap)
        start = max(free_at, release)
        end = start + factor * duration
        heapq.heappush(heap, (end, counter, worker))
        counter += 1
        placed.append((start, end))
    return placed


def _fallback_jobs(
    spans: Sequence[Span],
) -> tuple[list[tuple[int, float, float]], int]:
    """Fallback submissions ``(query_id, release, duration)`` in
    submission (span-id) order, plus the worker count seen in the
    trace."""
    by_id = {s.span_id: s for s in spans}
    jobs: list[tuple[int, float, float]] = []
    max_worker = -1
    for span in sorted(spans, key=lambda s: s.span_id):
        if span.name != "fallback":
            continue
        flush = by_id.get(span.parent_id)
        release = flush.t_end if flush is not None else span.t_start
        jobs.append((int(span.attrs["query_id"]), release, span.duration))
        max_worker = max(max_worker, int(span.attrs.get("worker_id", 0)))
    return jobs, max_worker + 1


def _effective_block(ledger: WallClockLedger, t_seq: float | None) -> dict | None:
    """§III-D speedup at the ledger's own mix, or None when undefined."""
    if ledger.count("simulate") == 0 or ledger.count("lookup") == 0:
        return None
    model = EffectiveSpeedupModel.from_ledger(ledger, t_seq=t_seq)
    return {
        "speedup": model.speedup(
            n_lookup=ledger.count("lookup"), n_train=ledger.count("simulate")
        ),
        "t_lookup": model.t_lookup,
        "t_train": model.t_train,
    }


def project(
    spans: Sequence[Span],
    *,
    meta: dict | None = None,
    hypothesis: str,
    factor: float = 0.5,
) -> dict:
    """Project one hypothesis over a recorded serve trace.

    Returns a JSON-ready dict with the baseline population stats, the
    projected stats, deltas, the number of affected requests and (for
    ``faster_fallback``) the projected §III-D effective speedup.
    ``factor`` scales fallback durations / batch-collect idle time for
    the hypotheses that take a knob; ``cache_miss_free`` ignores it.
    """
    if hypothesis not in HYPOTHESES:
        raise ValueError(
            f"unknown hypothesis {hypothesis!r}; expected one of {HYPOTHESES}"
        )
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    meta = dict(meta or {})
    records: list[RequestLatency] = decompose(spans, meta=meta)["records"]
    if not records:
        raise ValueError("trace has no served requests to project over")
    baseline = _population_stats([r.latency for r in records])
    t_seq = meta.get("t_seq")
    base_ledger = ledger_from_spans(spans)

    effective = {"baseline": _effective_block(base_ledger, t_seq), "projected": None}
    notes: str
    if hypothesis == "cache_miss_free":
        t_cache = meta.get("t_cache_hit")
        hit_source = "meta"
        if t_cache is None:
            cache_spans = [s for s in spans if s.kind == "cache"]
            if cache_spans:
                t_cache = sum(s.duration for s in cache_spans) / max(
                    len(cache_spans), 1
                )
                hit_source = "cache_spans"
            else:
                # Trace never hit the cache and its meta predates the
                # t_cache_hit key: the fastest served request is the
                # best available floor estimate.
                t_cache = min(r.latency for r in records)
                hit_source = "min_latency"
        projected_lat = [float(t_cache) for _ in records]
        n_affected = sum(1 for r in records if r.latency != t_cache)
        params = {"t_cache_hit": float(t_cache), "t_cache_hit_source": hit_source}
        notes = (
            "upper bound: assumes a warm infinite cache answering every "
            "request at hit cost; §III-D speedup is not re-projected "
            "(cache hits are excluded from the lookup/simulate ledger)"
        )
    elif hypothesis == "half_batch_wait":
        projected_lat = [
            r.latency - (1.0 - factor) * r.stages["batch_collect"] for r in records
        ]
        n_affected = sum(1 for r in records if r.stages["batch_collect"] > 0.0)
        params = {"batch_wait_factor": factor}
        notes = (
            "first-order: scales idle batch-collect time only; ignores the "
            "second-order cost of smaller realized batches on the amortized "
            "per-row gate time"
        )
    else:  # faster_fallback
        jobs, seen_workers = _fallback_jobs(spans)
        n_workers = int(meta.get("n_workers", 0)) or max(seen_workers, 1)
        placed = _resimulate_pool(
            [(release, dur) for _, release, dur in jobs], n_workers, factor
        )
        new_done = {
            qid: end for (qid, _, _), (_, end) in zip(jobs, placed)
        }
        projected_lat = []
        for r in records:
            if r.source == "simulation":
                projected_lat.append(new_done[r.query_id] - r.t_arrival)
            else:
                projected_lat.append(r.latency)
        n_affected = len(jobs)
        params = {"duration_factor": factor, "n_workers": n_workers}
        # Scaled ledger: simulate spans at factor x duration, in the
        # same span-id order the baseline ledger replays.
        scaled = WallClockLedger()
        for span in sorted(spans, key=lambda s: s.span_id):
            if span.kind == "simulate":
                scaled.record("simulate", factor * span.duration)
            elif span.kind in ("lookup", "train", "cache"):
                scaled.record(span.kind, span.duration)
        effective["projected"] = _effective_block(scaled, t_seq)
        notes = (
            "exact under the trace's schedule invariants: flush timings do "
            "not depend on fallback durations, the pool queue is re-simulated "
            "with the dispatcher's own greedy discipline (zero dispatch "
            "overhead, unit worker speeds)"
        )

    projected = _population_stats(projected_lat)
    return {
        "hypothesis": hypothesis,
        "params": params,
        "n_requests": len(records),
        "n_affected": n_affected,
        "baseline": baseline,
        "projected": projected,
        "delta": {
            "mean_s": projected["mean_s"] - baseline["mean_s"],
            "p50_s": projected["p50_s"] - baseline["p50_s"],
            "p99_s": projected["p99_s"] - baseline["p99_s"],
            "max_s": projected["max_s"] - baseline["max_s"],
        },
        "latency_speedup_mean": (
            baseline["mean_s"] / projected["mean_s"]
            if projected["mean_s"] > 0.0
            else float("inf")
        ),
        "effective": effective,
        "notes": notes,
    }


def whatif_report(
    spans: Sequence[Span],
    *,
    meta: dict | None = None,
    hypotheses: Sequence[str] = HYPOTHESES,
    factor: float = 0.5,
) -> dict:
    """Project every requested hypothesis over one trace."""
    meta = dict(meta or {})
    out: dict = {
        "version": 1,
        "n_spans": len(spans),
        "factor": factor,
        "hypotheses": {},
        "meta": meta,
    }
    for hyp in hypotheses:
        out["hypotheses"][hyp] = project(
            spans, meta=meta, hypothesis=hyp, factor=factor
        )
    return out


def render_whatif_text(report: dict) -> str:
    """Human-readable what-if report."""
    lines = [f"whatif: {report['n_spans']} spans, factor {report['factor']:g}"]
    for hyp, row in report["hypotheses"].items():
        base, proj = row["baseline"], row["projected"]
        lines.append(
            f"{hyp} ({row['n_affected']}/{row['n_requests']} requests affected):"
        )
        lines.append(
            f"  mean {base['mean_s']:.6g} s -> {proj['mean_s']:.6g} s  "
            f"p99 {base['p99_s']:.6g} s -> {proj['p99_s']:.6g} s  "
            f"({row['latency_speedup_mean']:.2f}x mean)"
        )
        eff = row["effective"]
        if eff["projected"] is not None:
            lines.append(
                f"  effective speedup {eff['baseline']['speedup']:.1f} -> "
                f"{eff['projected']['speedup']:.1f}"
            )
        lines.append(f"  note: {row['notes']}")
    return "\n".join(lines)


def render_whatif_json(report: dict) -> str:
    """Byte-stable JSON report: sorted keys, fixed layout."""
    return json.dumps(report, indent=2, sort_keys=True)
