"""Network layers with explicit forward/backward passes.

Data layout is ``(batch, features)`` throughout.  Each layer caches
whatever its backward pass needs during ``forward`` and accumulates
parameter gradients into preallocated buffers (``grads``), which the
optimizer consumes in place — no per-step allocation of gradient arrays.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import get_initializer
from repro.util.rng import ensure_rng

__all__ = ["Layer", "Dense", "Dropout", "ActivationLayer"]


class Layer:
    """Base layer.

    Attributes
    ----------
    params : list[numpy.ndarray]
        Trainable parameter arrays (possibly empty).
    grads : list[numpy.ndarray]
        Gradient buffers, same shapes as ``params``.
    """

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. input."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads:
            g.fill(0.0)

    @property
    def n_params(self) -> int:
        return int(sum(p.size for p in self.params))

    def config(self) -> dict:
        """JSON-serializable layer description (weights excluded)."""
        raise NotImplementedError


class Dense(Layer):
    """Affine map ``y = x @ W + b`` with optional L2 weight penalty.

    Parameters
    ----------
    in_dim, out_dim:
        Input and output feature counts.
    init:
        Weight initializer name or callable (bias starts at zero).
    l2:
        Coefficient of the ``0.5 * l2 * ||W||^2`` penalty added to the
        weight gradient (bias is not penalized).
    rng:
        Seed or generator for initialization.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        init: str = "glorot_uniform",
        l2: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"dimensions must be positive, got ({in_dim}, {out_dim})")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.l2 = float(l2)
        self._init_name = init if isinstance(init, str) else getattr(init, "__name__", "custom")
        gen = ensure_rng(rng)
        self.W = get_initializer(init)(in_dim, out_dim, gen)
        self.b = np.zeros(out_dim)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ValueError(
                f"Dense({self.in_dim}->{self.out_dim}) got input shape {x.shape}"
            )
        self._x = x if training else None
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(training=True)")
        gW, gb = self.grads
        gW += self._x.T @ grad_out
        if self.l2:
            gW += self.l2 * self.W
        gb += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def penalty(self) -> float:
        """Current L2 penalty value (for loss reporting)."""
        return 0.5 * self.l2 * float(np.sum(self.W * self.W)) if self.l2 else 0.0

    def config(self) -> dict:
        return {
            "kind": "dense",
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "init": self._init_name,
            "l2": self.l2,
        }

    def __repr__(self) -> str:
        return f"Dense({self.in_dim}->{self.out_dim}, l2={self.l2})"


class Dropout(Layer):
    """Inverted dropout.

    During training each unit is zeroed with probability ``rate`` and the
    survivors are scaled by ``1/(1-rate)`` so the expected activation is
    unchanged.  At inference the layer is the identity *unless*
    ``mc=True`` is set, in which case masks are sampled at predict time —
    this is the Monte-Carlo-dropout mode used for uncertainty
    quantification (§III-B, Gal & Ghahramani).
    """

    def __init__(self, rate: float, *, rng: int | np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.mc = False
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if self.rate == 0.0 or not (training or self.mc):
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def config(self) -> dict:
        return {"kind": "dropout", "rate": self.rate}

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate}, mc={self.mc})"


class ActivationLayer(Layer):
    """Wraps an :class:`~repro.nn.activations.Activation` as a layer."""

    def __init__(self, activation: str | Activation):
        super().__init__()
        self.activation = get_activation(activation)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        self._x = x if training else None
        return self.activation.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(training=True)")
        return self.activation.backward(self._x, grad_out)

    def config(self) -> dict:
        return {"kind": "activation", "activation": self.activation.name}

    def __repr__(self) -> str:
        return f"ActivationLayer({self.activation.name})"
