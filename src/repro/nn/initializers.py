"""Weight initialization schemes.

Glorot (Xavier) uniform for tanh/sigmoid networks, He normal for ReLU
networks.  All take an explicit generator so that a model seeded once is
reproducible across platforms.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["glorot_uniform", "he_normal", "zeros_init", "get_initializer"]

Initializer = Callable[[int, int, np.random.Generator], np.ndarray]


def glorot_uniform(fan_in: int, fan_out: int, rng: int | np.random.Generator) -> np.ndarray:
    """Uniform(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    gen = ensure_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: int | np.random.Generator) -> np.ndarray:
    """Normal(0, sqrt(2 / fan_in)) — preserves variance through ReLU."""
    gen = ensure_rng(rng)
    std = np.sqrt(2.0 / fan_in)
    return gen.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (baselines and tests)."""
    return np.zeros((fan_in, fan_out))


_REGISTRY: dict[str, Initializer] = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros_init,
}


def get_initializer(spec: str | Initializer) -> Initializer:
    """Resolve an initializer by name or pass a callable through."""
    if callable(spec):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown initializer {spec!r}; known: {sorted(_REGISTRY)}"
        ) from None
