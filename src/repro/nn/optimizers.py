"""First-order optimizers and learning-rate schedules.

Optimizers mutate parameter arrays in place (the arrays owned by layers),
keeping per-parameter state (momenta, second moments) keyed by position so
a single optimizer instance can drive a whole model.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Optimizer",
    "Schedule",
    "SGD",
    "Momentum",
    "Adam",
    "RMSProp",
    "ConstantSchedule",
    "ExponentialDecay",
    "StepDecay",
]


class Schedule:
    """Learning-rate schedule: maps step index -> learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """Fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class ExponentialDecay(Schedule):
    """``lr * decay**(step / decay_steps)`` — smooth geometric decay."""

    def __init__(self, lr: float, decay: float = 0.96, decay_steps: int = 100):
        if lr <= 0 or not 0 < decay <= 1 or decay_steps <= 0:
            raise ValueError("invalid ExponentialDecay parameters")
        self.lr, self.decay, self.decay_steps = float(lr), float(decay), int(decay_steps)

    def __call__(self, step: int) -> float:
        return self.lr * self.decay ** (step / self.decay_steps)


class StepDecay(Schedule):
    """Piecewise-constant decay: divide by ``factor`` every ``every`` steps."""

    def __init__(self, lr: float, factor: float = 10.0, every: int = 1000):
        if lr <= 0 or factor <= 1 or every <= 0:
            raise ValueError("invalid StepDecay parameters")
        self.lr, self.factor, self.every = float(lr), float(factor), int(every)

    def __call__(self, step: int) -> float:
        return self.lr / self.factor ** (step // self.every)


def _as_schedule(lr: float | Schedule) -> Schedule:
    return lr if isinstance(lr, Schedule) else ConstantSchedule(float(lr))


class Optimizer:
    """Base optimizer.

    Subclasses implement :meth:`update_param` acting on one
    (param, grad, state) triple; :meth:`step` walks all registered pairs.
    """

    def __init__(self, lr: float | Schedule = 1e-3):
        self.schedule = _as_schedule(lr)
        self.step_count = 0
        self._state: dict[int, dict[str, np.ndarray]] = {}

    @property
    def lr(self) -> float:
        return self.schedule(self.step_count)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update to every parameter array, in place."""
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        lr = self.schedule(self.step_count)
        for i, (p, g) in enumerate(zip(params, grads)):
            if p.shape != g.shape:
                raise ValueError(f"param/grad shape mismatch at index {i}")
            state = self._state.setdefault(i, {})
            self.update_param(p, g, state, lr)
        self.step_count += 1

    def update_param(
        self, p: np.ndarray, g: np.ndarray, state: dict[str, np.ndarray], lr: float
    ) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop accumulated state and the step counter."""
        self._state.clear()
        self.step_count = 0


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def update_param(self, p, g, state, lr) -> None:
        p -= lr * g


class Momentum(Optimizer):
    """Heavy-ball momentum (optionally Nesterov)."""

    def __init__(self, lr: float | Schedule = 1e-2, beta: float = 0.9, nesterov: bool = False):
        super().__init__(lr)
        if not 0 <= beta < 1:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)
        self.nesterov = bool(nesterov)

    def update_param(self, p, g, state, lr) -> None:
        v = state.setdefault("v", np.zeros_like(p))
        v *= self.beta
        v -= lr * g
        if self.nesterov:
            p += self.beta * v - lr * g
        else:
            p += v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(
        self,
        lr: float | Schedule = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)

    def update_param(self, p, g, state, lr) -> None:
        m = state.setdefault("m", np.zeros_like(p))
        v = state.setdefault("v", np.zeros_like(p))
        t = self.step_count + 1
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g * g
        mhat = m / (1.0 - self.beta1**t)
        vhat = v / (1.0 - self.beta2**t)
        p -= lr * mhat / (np.sqrt(vhat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton)."""

    def __init__(self, lr: float | Schedule = 1e-3, rho: float = 0.9, eps: float = 1e-8):
        super().__init__(lr)
        if not 0 <= rho < 1:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho, self.eps = float(rho), float(eps)

    def update_param(self, p, g, state, lr) -> None:
        s = state.setdefault("s", np.zeros_like(p))
        s *= self.rho
        s += (1.0 - self.rho) * g * g
        p -= lr * g / (np.sqrt(s) + self.eps)
