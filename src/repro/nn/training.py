"""Mini-batch training loop with validation tracking and early stopping.

This is the sequential trainer; the parallel computation models of §III-A
live in :mod:`repro.parallel.computation_models` and reuse
:meth:`repro.nn.model.MLP.train_batch` per worker shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import Loss, get_loss
from repro.nn.model import MLP
from repro.nn.optimizers import Adam, Optimizer
from repro.util.rng import ensure_rng

__all__ = ["TrainingHistory", "EarlyStopping", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss curves collected by the trainer."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    @property
    def best_epoch(self) -> int:
        if not self.val_loss:
            raise ValueError("no validation losses recorded")
        return int(np.argmin(self.val_loss))


class EarlyStopping:
    """Stop when validation loss hasn't improved by ``min_delta`` for
    ``patience`` consecutive epochs; restores the best weights on stop."""

    def __init__(self, patience: int = 20, min_delta: float = 0.0):
        if patience <= 0:
            raise ValueError(f"patience must be > 0, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = float("inf")
        self.wait = 0
        self.best_params: np.ndarray | None = None

    def update(self, val_loss: float, model: MLP) -> bool:
        """Record one epoch; returns True when training should stop."""
        if val_loss < self.best - self.min_delta:
            self.best = val_loss
            self.wait = 0
            self.best_params = model.get_flat_params()
            return False
        self.wait += 1
        if self.wait >= self.patience:
            if self.best_params is not None:
                model.set_flat_params(self.best_params)
            return True
        return False


class Trainer:
    """Shuffled mini-batch trainer.

    Parameters
    ----------
    model:
        The :class:`~repro.nn.model.MLP` to optimize (mutated in place).
    loss:
        Loss name or instance; defaults to MSE (the regression setting of
        all the paper's surrogates).
    optimizer:
        Defaults to Adam(1e-3).
    batch_size, epochs:
        Mini-batch size and maximum epoch count.
    validation_fraction:
        Fraction of the training data held out for the validation curve
        and early stopping (0 disables both).
    early_stopping:
        An :class:`EarlyStopping` instance, or None to train all epochs.
    rng:
        Seed or generator for the epoch shuffles and the validation split.
    tracer:
        Optional duck-typed :class:`~repro.obs.trace.Tracer`; when set,
        every epoch is recorded as a kind ``"nn.epoch"`` span carrying
        the epoch losses and the gradient norm.  (Deliberately *not*
        kind ``"train"`` — that kind is reserved for whole §III-D ledger
        retrain events, and per-epoch spans would corrupt the
        trace-reconstructed ledger.)
    registry:
        Optional duck-typed :class:`~repro.obs.metrics.MetricRegistry`;
        when set, ``nn.train.loss`` / ``nn.train.grad_norm`` gauges track
        the latest epoch and an ``nn.train.epochs`` counter accumulates.
        Both hooks are ``None`` by default and every instrumentation
        branch is guarded, so an untraced fit does zero extra work.
    """

    def __init__(
        self,
        model: MLP,
        *,
        loss: str | Loss = "mse",
        optimizer: Optimizer | None = None,
        batch_size: int = 32,
        epochs: int = 200,
        validation_fraction: float = 0.1,
        early_stopping: EarlyStopping | None = None,
        rng: int | np.random.Generator | None = None,
        tracer=None,
        registry=None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        if epochs <= 0:
            raise ValueError(f"epochs must be > 0, got {epochs}")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in [0, 1), got {validation_fraction}"
            )
        if early_stopping is not None and validation_fraction == 0.0:
            raise ValueError("early stopping requires a validation split")
        self.model = model
        self.loss = get_loss(loss)
        self.optimizer = optimizer if optimizer is not None else Adam(1e-3)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.validation_fraction = float(validation_fraction)
        self.early_stopping = early_stopping
        self.rng = ensure_rng(rng)
        self.tracer = tracer
        self.registry = registry

    def fit(self, x: np.ndarray, y: np.ndarray) -> TrainingHistory:
        """Train the model; returns the loss history."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if len(x) != len(y):
            raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
        if len(x) < 2:
            raise ValueError("need at least 2 samples to train")

        n_val = int(round(self.validation_fraction * len(x)))
        order = self.rng.permutation(len(x))
        val_idx, train_idx = order[:n_val], order[n_val:]
        if len(train_idx) == 0:
            raise ValueError("validation split left no training data")
        x_train, y_train = x[train_idx], y[train_idx]
        x_val, y_val = x[val_idx], y[val_idx]

        instrumented = self.tracer is not None or self.registry is not None
        history = TrainingHistory()
        for epoch in range(self.epochs):
            epoch_sid = (
                self.tracer.open_span("epoch", "nn.epoch", attrs={"epoch": epoch})
                if self.tracer is not None
                else None
            )
            close_attrs: dict = {}
            stop = False
            try:
                perm = self.rng.permutation(len(x_train))
                epoch_loss = 0.0
                n_batches = 0
                for start in range(0, len(x_train), self.batch_size):
                    idx = perm[start : start + self.batch_size]
                    batch_loss = self.model.train_batch(x_train[idx], y_train[idx], self.loss)
                    self.optimizer.step(self.model.params, self.model.grads)
                    epoch_loss += batch_loss
                    n_batches += 1
                mean_loss = epoch_loss / n_batches
                history.train_loss.append(mean_loss)
                history.lr.append(self.optimizer.lr)
                if instrumented:
                    # Gradient norm of the epoch's final mini-batch — a cheap
                    # convergence signal that avoids accumulating across
                    # batches on the hot path.
                    grad_norm = float(
                        np.sqrt(sum(float(np.sum(g * g)) for g in self.model.grads))
                    )
                    if self.registry is not None:
                        self.registry.gauge("nn.train.loss").set(mean_loss)
                        self.registry.gauge("nn.train.grad_norm").set(grad_norm)
                        self.registry.counter("nn.train.epochs").inc()

                if n_val:
                    val_pred = self.model.predict(x_val)
                    val_loss, _ = self.loss(val_pred, y_val)
                    history.val_loss.append(val_loss)
                    stop = self.early_stopping is not None and self.early_stopping.update(
                        val_loss, self.model
                    )
                    if epoch_sid is not None:
                        close_attrs = {
                            "loss": float(mean_loss),
                            "val_loss": float(val_loss),
                            "grad_norm": grad_norm,
                        }
                elif epoch_sid is not None:
                    close_attrs = {"loss": float(mean_loss), "grad_norm": grad_norm}
            finally:
                # Close even when a batch raises, so the trace keeps the
                # failed epoch (with whatever attrs were collected).
                if epoch_sid is not None:
                    self.tracer.close_span(epoch_sid, attrs=close_attrs)
            if stop:
                history.stopped_epoch = epoch
                break
        # Optimizer steps mutate W/b in place; drop any cached serving
        # casts (float32 plan) so post-fit predictions see new weights.
        if hasattr(self.model, "invalidate_serving_cache"):
            self.model.invalidate_serving_cache()
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss of the current model on ``(x, y)``."""
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        value, _ = self.loss(self.model.predict(x), y)
        return value
