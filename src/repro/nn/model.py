"""The :class:`MLP` sequential model.

Beyond the obvious forward/backward, the model exposes a *flat parameter
vector* view (:meth:`MLP.get_flat_params` / :meth:`MLP.set_flat_params` /
:meth:`MLP.flat_grad`).  The parallel computation models of §III-A
(Locking, Rotation, Allreduce, Asynchronous) all operate on the model as a
single dense vector, which is exactly how parameter servers and MPI
allreduce see it.
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.layers import ActivationLayer, Dense, Dropout, Layer
from repro.nn.losses import Loss, get_loss
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["MLP", "SERVING_DTYPES"]

#: Dtypes :meth:`MLP.set_serving_dtype` accepts.  float64 is the default
#: (bitwise-identical to the layer-by-layer forward); float32 is the
#: opt-in serving mode — single-precision GEMMs move half the bytes and
#: the result is returned upcast to float64 for the serving stack.
SERVING_DTYPES = (np.float64, np.float32)


class _FusedForward:
    """Preallocated fused inference over a Dense/Activation/Dropout stack.

    The generic :meth:`MLP.forward` allocates one fresh array per layer
    per call (``x @ W`` then ``+ b`` then the activation).  This plan
    walks the same layers writing into persistent per-layer buffers:
    ``np.dot(x, W, out=buf)``, ``buf += b``, activation applied in place
    via :meth:`~repro.nn.activations.Activation.apply_inplace`.  In
    float64 the result is bitwise identical to the generic path (same
    GEMM, same add, same elementwise maps — only the destinations
    differ); in float32 the weights/biases are cast once and cached, and
    the compute runs in single precision (sgemm).

    Inference-mode dropout layers are identity and are skipped; a plan
    is only consulted when no dropout layer is in MC mode (the model
    checks per call).  The returned array is always freshly allocated
    float64 — callers may hold it across calls while the internal
    buffers are reused.
    """

    __slots__ = ("dtype", "in_dim", "_steps", "_weights", "_bufs", "_xbuf",
                 "_capacity", "_param_version")

    def __init__(self, layers: Sequence[Layer], dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        steps: list[tuple[str, object]] = []
        in_dim: int | None = None
        for layer in layers:
            if isinstance(layer, Dense):
                if in_dim is None:
                    in_dim = layer.in_dim
                steps.append(("dense", layer))
            elif isinstance(layer, ActivationLayer):
                steps.append(("act", layer.activation))
            elif isinstance(layer, Dropout):
                continue  # identity at inference; MC mode bypasses the plan
            else:
                raise TypeError(f"unsupported layer for fused forward: {layer!r}")
        if in_dim is None:
            raise TypeError("fused forward needs at least one Dense layer")
        self.in_dim = in_dim
        self._steps = steps
        self._weights: list[tuple[np.ndarray, np.ndarray]] = []
        self._bufs: list[np.ndarray] = []
        self._xbuf: np.ndarray | None = None
        self._capacity = 0
        self._param_version = -1

    @staticmethod
    def supports(layers: Sequence[Layer]) -> bool:
        """True when every layer has a fused equivalent."""
        return any(isinstance(l, Dense) for l in layers) and all(
            isinstance(l, (Dense, ActivationLayer, Dropout)) for l in layers
        )

    def _refresh_weights(self, version: int) -> None:
        if self._param_version == version:
            return
        weights = []
        for op, payload in self._steps:
            if op != "dense":
                continue
            if self.dtype == np.float64:
                # Live references: in-place weight updates are seen
                # immediately, so the float64 plan can never go stale.
                weights.append((payload.W, payload.b))
            else:
                weights.append((
                    np.ascontiguousarray(payload.W, dtype=self.dtype),
                    np.ascontiguousarray(payload.b, dtype=self.dtype),
                ))
        self._weights = weights
        self._param_version = version

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        self._capacity = n
        self._xbuf = np.empty((n, self.in_dim), dtype=self.dtype)
        self._bufs = [
            np.empty((n, payload.out_dim), dtype=self.dtype)
            for op, payload in self._steps
            if op == "dense"
        ]

    def run(self, x: np.ndarray, version: int) -> np.ndarray:
        """Fused inference pass; returns a fresh float64 array."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ValueError(
                f"fused forward expected input shape (n, {self.in_dim}), "
                f"got {x.shape}"
            )
        self._refresh_weights(version)
        n = x.shape[0]
        self._ensure_capacity(n)
        if self.dtype == np.float64:
            cur = x
        else:
            cur = self._xbuf[:n]
            cur[...] = x  # casting copy into the preallocated f32 buffer
        dense_i = 0
        for op, payload in self._steps:
            if op == "dense":
                W, b = self._weights[dense_i]
                out = self._bufs[dense_i][:n]
                np.dot(cur, W, out=out)
                out += b
                cur = out
                dense_i += 1
            elif dense_i == 0 and self.dtype == np.float64:
                # Before the first Dense, ``cur`` may alias the caller's
                # input — evaluate out of place rather than clobber it.
                cur = payload.forward(cur)
            else:
                cur = payload.apply_inplace(cur)
        if cur.dtype == np.float64:
            return cur.copy()
        return cur.astype(np.float64)


class MLP:
    """Multi-layer perceptron built from an explicit layer list.

    Use the :meth:`MLP.regressor` factory for the common "D inputs, a few
    hidden layers, K outputs" shape used throughout the paper's exemplars
    (e.g. the 6 -> 30 -> 48 -> 3 autotuning network of §III-D).
    """

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("MLP needs at least one layer")
        self.layers = list(layers)
        self._serving_dtype = np.dtype(np.float64)
        self._fused: _FusedForward | None = None
        self._param_version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def regressor(
        cls,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        *,
        activation: str = "relu",
        out_activation: str = "identity",
        dropout: float = 0.0,
        l2: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> "MLP":
        """Build a dense regressor ``in_dim -> hidden... -> out_dim``.

        ``dropout`` inserts a Dropout layer after every hidden activation
        (the placement required for MC-dropout UQ).
        """
        gen = ensure_rng(rng)
        n_dense = len(hidden) + 1
        n_drop = len(hidden) if dropout > 0 else 0
        streams = spawn_rngs(gen, n_dense + n_drop)
        init = "he_normal" if activation in ("relu", "leaky_relu") else "glorot_uniform"
        layers: list[Layer] = []
        dims = [in_dim, *hidden, out_dim]
        si = 0
        for i in range(len(dims) - 1):
            layers.append(Dense(dims[i], dims[i + 1], init=init, l2=l2, rng=streams[si]))
            si += 1
            last = i == len(dims) - 2
            layers.append(ActivationLayer(out_activation if last else activation))
            if dropout > 0 and not last:
                layers.append(Dropout(dropout, rng=streams[si]))
                si += 1
        return cls(layers)

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference pass (dropout inactive unless a layer is in MC mode).

        Runs through the fused serving plan when possible: preallocated
        activation buffers, ``np.dot(..., out=)`` GEMMs, and — after
        :meth:`set_serving_dtype` opts in — float32 compute.  The
        float64 default is bitwise identical to the layer-by-layer
        :meth:`forward`; MC-mode dropout and exotic layers fall back to
        the generic path, so semantics never depend on the plan.
        """
        if self._fused is None and _FusedForward.supports(self.layers):
            self._fused = _FusedForward(self.layers, self._serving_dtype)
        if self._fused is not None and not self._mc_dropout_active():
            return self._fused.run(x, self._param_version)
        return self.forward(x, training=False)

    def _mc_dropout_active(self) -> bool:
        return any(
            isinstance(l, Dropout) and l.mc and l.rate > 0.0 for l in self.layers
        )

    # ------------------------------------------------------------------
    # serving dtype policy
    # ------------------------------------------------------------------
    @property
    def serving_dtype(self) -> np.dtype:
        """Compute dtype of the fused :meth:`predict` path."""
        return self._serving_dtype

    def set_serving_dtype(self, dtype) -> None:
        """Select the :meth:`predict` compute precision (serving only).

        ``float64`` (default) keeps predictions bitwise identical to the
        generic forward.  ``float32`` is the opt-in fast serving mode:
        weights are cast once and cached, compute runs in single
        precision, and results come back as float64 arrays within a few
        1e-7 relative of the double-precision answer.  Training, and the
        :meth:`predict_stable` row-stability contract, always stay
        float64 — this switch affects :meth:`predict` alone.
        """
        dt = np.dtype(dtype)
        if not any(dt == np.dtype(d) for d in SERVING_DTYPES):
            names = [np.dtype(d).name for d in SERVING_DTYPES]
            raise ValueError(f"serving dtype must be one of {names}, got {dt.name}")
        if dt != self._serving_dtype:
            self._serving_dtype = dt
            self._fused = None

    def invalidate_serving_cache(self) -> None:
        """Mark cached serving weights stale after in-place mutation.

        :meth:`set_flat_params` and :class:`~repro.nn.training.Trainer`
        call this automatically; call it yourself only after mutating
        ``W``/``b`` arrays directly while in float32 serving mode (the
        float64 plan holds live references and cannot go stale).
        """
        self._param_version += 1

    def predict_stable(
        self,
        x: np.ndarray,
        *,
        mc_dropout_rng: np.random.Generator | None = None,
        mc_dropout_masks: Sequence[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Row-stable inference: row ``i`` of the result is bitwise identical
        whether ``x`` holds one row or many.

        BLAS matmul kernels choose blocking (and therefore floating-point
        accumulation order) based on the batch dimension, so ``predict(X)[i]``
        and ``predict(X[i:i+1])`` can differ in the last ulp.  This path
        evaluates every Dense layer with a fixed-order ``np.einsum``
        contraction instead, making results independent of how queries were
        batched together — the invariant the serving layer
        (:mod:`repro.serve`) and batched UQ rely on.

        ``mc_dropout_rng`` enables Monte-Carlo dropout with *per-unit* masks
        (one mask per hidden unit, broadcast across the batch — a single
        "thinned network" per pass).  Because the mask shape depends only on
        layer widths, the generator consumes the same number of draws for any
        batch size, preserving row stability.  With ``None`` dropout layers
        are the identity.

        ``mc_dropout_masks`` supplies the scaled per-unit masks directly —
        one ``(1, width)`` array per active (rate > 0) dropout layer, in
        layer order.  This is the batched-UQ entry point: the caller draws
        masks for many stochastic passes in one RNG block
        (:class:`~repro.core.uq.MCDropoutUQ`) and replays them pass by
        pass, bitwise identical to per-pass ``mc_dropout_rng`` draws.
        """
        if mc_dropout_rng is not None and mc_dropout_masks is not None:
            raise ValueError(
                "pass either mc_dropout_rng or mc_dropout_masks, not both"
            )
        masks = None
        if mc_dropout_masks is not None:
            masks = list(mc_dropout_masks)
            n_active = sum(
                1 for l in self.layers if isinstance(l, Dropout) and l.rate > 0.0
            )
            if len(masks) != n_active:
                raise ValueError(
                    f"expected {n_active} dropout masks (one per active "
                    f"Dropout layer), got {len(masks)}"
                )
        mask_i = 0
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            if isinstance(layer, Dense):
                if out.shape[1] != layer.in_dim:
                    raise ValueError(
                        f"Dense({layer.in_dim}->{layer.out_dim}) got input "
                        f"shape {out.shape}"
                    )
                # optimize=False keeps einsum's fixed per-element summation
                # order (no BLAS dispatch), which is what makes rows stable.
                out = np.einsum("nd,dh->nh", out, layer.W, optimize=False) + layer.b
            elif isinstance(layer, Dropout):
                if layer.rate > 0.0 and masks is not None:
                    out = out * masks[mask_i]
                    mask_i += 1
                elif mc_dropout_rng is not None and layer.rate > 0.0:
                    keep = 1.0 - layer.rate
                    mask = (mc_dropout_rng.random((1, out.shape[1])) < keep) / keep
                    out = out * mask
            elif isinstance(layer, ActivationLayer):
                out = layer.activation.forward(out)
            else:
                out = layer.forward(out, training=False)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def train_batch(
        self, x: np.ndarray, y: np.ndarray, loss: Loss | str
    ) -> float:
        """Forward + backward on one batch; returns loss value.

        Gradients are left in the layers' ``grads`` buffers for the
        optimizer (or for a parallel runtime to reduce across workers).
        """
        loss_fn = get_loss(loss)
        self.zero_grad()
        pred = self.forward(x, training=True)
        value, grad = loss_fn(pred, np.asarray(y, dtype=float))
        self.backward(grad)
        return value + self.penalty()

    def penalty(self) -> float:
        return sum(l.penalty() for l in self.layers if isinstance(l, Dense))

    # ------------------------------------------------------------------
    # parameter access
    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one 1-D vector (a copy)."""
        if not self.params:
            return np.empty(0)
        return np.concatenate([p.ravel() for p in self.params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by ``get_flat_params``."""
        flat = np.asarray(flat, dtype=float)
        if flat.size != self.n_params:
            raise ValueError(f"expected {self.n_params} values, got {flat.size}")
        offset = 0
        for p in self.params:
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size
        self.invalidate_serving_cache()

    def flat_grad(self) -> np.ndarray:
        """Concatenate all gradient buffers into one 1-D vector (a copy)."""
        if not self.grads:
            return np.empty(0)
        return np.concatenate([g.ravel() for g in self.grads])

    def set_mc_dropout(self, enabled: bool) -> None:
        """Toggle Monte-Carlo dropout mode on every Dropout layer."""
        for layer in self.layers:
            if isinstance(layer, Dropout):
                layer.mc = enabled

    def has_dropout(self) -> bool:
        return any(isinstance(l, Dropout) and l.rate > 0 for l in self.layers)

    def mc_dropout_widths(self) -> list[int]:
        """Feature width at each active (rate > 0) Dropout layer.

        These are the per-unit mask widths :meth:`predict_stable`
        consumes — what batched mask generation
        (:class:`~repro.core.uq.MCDropoutUQ`) needs to draw all passes'
        masks in one RNG block.  Raises when a width cannot be derived
        statically (a Dropout before any Dense layer).
        """
        widths: list[int] = []
        current: int | None = None
        for layer in self.layers:
            if isinstance(layer, Dense):
                current = layer.out_dim
            elif isinstance(layer, Dropout) and layer.rate > 0.0:
                if current is None:
                    raise ValueError(
                        "cannot derive the mask width of a Dropout layer "
                        "placed before the first Dense layer"
                    )
                widths.append(current)
        return widths

    def copy(self) -> "MLP":
        """Deep copy sharing nothing with the original."""
        clone = MLP.from_config(self.config())
        clone.set_flat_params(self.get_flat_params())
        return clone

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def config(self) -> dict:
        return {"layers": [layer.config() for layer in self.layers]}

    @classmethod
    def from_config(cls, config: dict, *, rng: int | np.random.Generator | None = 0) -> "MLP":  # repro: noqa[API005] — seed 0 so config round-trips rebuild identical weights by default
        gen = ensure_rng(rng)
        layers: list[Layer] = []
        for spec in config["layers"]:
            kind = spec["kind"]
            if kind == "dense":
                layers.append(
                    Dense(
                        spec["in_dim"],
                        spec["out_dim"],
                        init=spec.get("init", "glorot_uniform"),
                        l2=spec.get("l2", 0.0),
                        rng=gen,
                    )
                )
            elif kind == "dropout":
                layers.append(Dropout(spec["rate"], rng=gen))
            elif kind == "activation":
                layers.append(ActivationLayer(get_activation(spec["activation"])))
            else:
                raise ValueError(f"unknown layer kind {kind!r}")
        return cls(layers)

    def to_json(self) -> str:
        """Serialize architecture + weights + serving policy to JSON."""
        payload = {
            "config": self.config(),
            "params": [p.tolist() for p in self.params],
            "serving_dtype": self._serving_dtype.name,
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "MLP":
        payload = json.loads(text)
        model = cls.from_config(payload["config"])
        flats = [np.asarray(p, dtype=float).ravel() for p in payload["params"]]
        model.set_flat_params(
            np.concatenate(flats) if flats else np.empty(0)
        )
        # Serving precision is part of the deployed model's behavior
        # (float32 serving answers differ in low bits from float64), so a
        # reload must restore it; pre-policy payloads default to float64.
        model.set_serving_dtype(payload.get("serving_dtype", "float64"))
        return model

    def __repr__(self) -> str:
        inner = ", ".join(repr(l) for l in self.layers)
        return f"MLP([{inner}], n_params={self.n_params})"
