"""The :class:`MLP` sequential model.

Beyond the obvious forward/backward, the model exposes a *flat parameter
vector* view (:meth:`MLP.get_flat_params` / :meth:`MLP.set_flat_params` /
:meth:`MLP.flat_grad`).  The parallel computation models of §III-A
(Locking, Rotation, Allreduce, Asynchronous) all operate on the model as a
single dense vector, which is exactly how parameter servers and MPI
allreduce see it.
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.layers import ActivationLayer, Dense, Dropout, Layer
from repro.nn.losses import Loss, get_loss
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["MLP"]


class MLP:
    """Multi-layer perceptron built from an explicit layer list.

    Use the :meth:`MLP.regressor` factory for the common "D inputs, a few
    hidden layers, K outputs" shape used throughout the paper's exemplars
    (e.g. the 6 -> 30 -> 48 -> 3 autotuning network of §III-D).
    """

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("MLP needs at least one layer")
        self.layers = list(layers)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def regressor(
        cls,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        *,
        activation: str = "relu",
        out_activation: str = "identity",
        dropout: float = 0.0,
        l2: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> "MLP":
        """Build a dense regressor ``in_dim -> hidden... -> out_dim``.

        ``dropout`` inserts a Dropout layer after every hidden activation
        (the placement required for MC-dropout UQ).
        """
        gen = ensure_rng(rng)
        n_dense = len(hidden) + 1
        n_drop = len(hidden) if dropout > 0 else 0
        streams = spawn_rngs(gen, n_dense + n_drop)
        init = "he_normal" if activation in ("relu", "leaky_relu") else "glorot_uniform"
        layers: list[Layer] = []
        dims = [in_dim, *hidden, out_dim]
        si = 0
        for i in range(len(dims) - 1):
            layers.append(Dense(dims[i], dims[i + 1], init=init, l2=l2, rng=streams[si]))
            si += 1
            last = i == len(dims) - 2
            layers.append(ActivationLayer(out_activation if last else activation))
            if dropout > 0 and not last:
                layers.append(Dropout(dropout, rng=streams[si]))
                si += 1
        return cls(layers)

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference pass (dropout inactive unless a layer is in MC mode)."""
        return self.forward(x, training=False)

    def predict_stable(
        self,
        x: np.ndarray,
        *,
        mc_dropout_rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Row-stable inference: row ``i`` of the result is bitwise identical
        whether ``x`` holds one row or many.

        BLAS matmul kernels choose blocking (and therefore floating-point
        accumulation order) based on the batch dimension, so ``predict(X)[i]``
        and ``predict(X[i:i+1])`` can differ in the last ulp.  This path
        evaluates every Dense layer with a fixed-order ``np.einsum``
        contraction instead, making results independent of how queries were
        batched together — the invariant the serving layer
        (:mod:`repro.serve`) and batched UQ rely on.

        ``mc_dropout_rng`` enables Monte-Carlo dropout with *per-unit* masks
        (one mask per hidden unit, broadcast across the batch — a single
        "thinned network" per pass).  Because the mask shape depends only on
        layer widths, the generator consumes the same number of draws for any
        batch size, preserving row stability.  With ``None`` dropout layers
        are the identity.
        """
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            if isinstance(layer, Dense):
                if out.shape[1] != layer.in_dim:
                    raise ValueError(
                        f"Dense({layer.in_dim}->{layer.out_dim}) got input "
                        f"shape {out.shape}"
                    )
                # optimize=False keeps einsum's fixed per-element summation
                # order (no BLAS dispatch), which is what makes rows stable.
                out = np.einsum("nd,dh->nh", out, layer.W, optimize=False) + layer.b
            elif isinstance(layer, Dropout):
                if mc_dropout_rng is not None and layer.rate > 0.0:
                    keep = 1.0 - layer.rate
                    mask = (mc_dropout_rng.random((1, out.shape[1])) < keep) / keep
                    out = out * mask
            elif isinstance(layer, ActivationLayer):
                out = layer.activation.forward(out)
            else:
                out = layer.forward(out, training=False)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def train_batch(
        self, x: np.ndarray, y: np.ndarray, loss: Loss | str
    ) -> float:
        """Forward + backward on one batch; returns loss value.

        Gradients are left in the layers' ``grads`` buffers for the
        optimizer (or for a parallel runtime to reduce across workers).
        """
        loss_fn = get_loss(loss)
        self.zero_grad()
        pred = self.forward(x, training=True)
        value, grad = loss_fn(pred, np.asarray(y, dtype=float))
        self.backward(grad)
        return value + self.penalty()

    def penalty(self) -> float:
        return sum(l.penalty() for l in self.layers if isinstance(l, Dense))

    # ------------------------------------------------------------------
    # parameter access
    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one 1-D vector (a copy)."""
        if not self.params:
            return np.empty(0)
        return np.concatenate([p.ravel() for p in self.params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by ``get_flat_params``."""
        flat = np.asarray(flat, dtype=float)
        if flat.size != self.n_params:
            raise ValueError(f"expected {self.n_params} values, got {flat.size}")
        offset = 0
        for p in self.params:
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def flat_grad(self) -> np.ndarray:
        """Concatenate all gradient buffers into one 1-D vector (a copy)."""
        if not self.grads:
            return np.empty(0)
        return np.concatenate([g.ravel() for g in self.grads])

    def set_mc_dropout(self, enabled: bool) -> None:
        """Toggle Monte-Carlo dropout mode on every Dropout layer."""
        for layer in self.layers:
            if isinstance(layer, Dropout):
                layer.mc = enabled

    def has_dropout(self) -> bool:
        return any(isinstance(l, Dropout) and l.rate > 0 for l in self.layers)

    def copy(self) -> "MLP":
        """Deep copy sharing nothing with the original."""
        clone = MLP.from_config(self.config())
        clone.set_flat_params(self.get_flat_params())
        return clone

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def config(self) -> dict:
        return {"layers": [layer.config() for layer in self.layers]}

    @classmethod
    def from_config(cls, config: dict, *, rng: int | np.random.Generator | None = 0) -> "MLP":  # repro: noqa[API005] — seed 0 so config round-trips rebuild identical weights by default
        gen = ensure_rng(rng)
        layers: list[Layer] = []
        for spec in config["layers"]:
            kind = spec["kind"]
            if kind == "dense":
                layers.append(
                    Dense(
                        spec["in_dim"],
                        spec["out_dim"],
                        init=spec.get("init", "glorot_uniform"),
                        l2=spec.get("l2", 0.0),
                        rng=gen,
                    )
                )
            elif kind == "dropout":
                layers.append(Dropout(spec["rate"], rng=gen))
            elif kind == "activation":
                layers.append(ActivationLayer(get_activation(spec["activation"])))
            else:
                raise ValueError(f"unknown layer kind {kind!r}")
        return cls(layers)

    def to_json(self) -> str:
        """Serialize architecture + weights to a JSON string."""
        payload = {
            "config": self.config(),
            "params": [p.tolist() for p in self.params],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "MLP":
        payload = json.loads(text)
        model = cls.from_config(payload["config"])
        flats = [np.asarray(p, dtype=float).ravel() for p in payload["params"]]
        model.set_flat_params(
            np.concatenate(flats) if flats else np.empty(0)
        )
        return model

    def __repr__(self) -> str:
        inner = ", ".join(repr(l) for l in self.layers)
        return f"MLP([{inner}], n_params={self.n_params})"
