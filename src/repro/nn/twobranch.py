"""Two-branch network (the DEFSI architecture, §II-A).

DEFSI feeds a *within-season* branch (the recent coarse surveillance
window) and a *between-season* branch (the same epidemiological week in
historical seasons) into separate sub-networks whose representations are
concatenated and mapped to the high-resolution forecast by a head
network.  Here each branch and the head are dense stacks from
:mod:`repro.nn.model`, wired together with an explicit concatenation
backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import Loss, get_loss
from repro.nn.model import MLP
from repro.nn.optimizers import Adam, Optimizer
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["TwoBranchNetwork"]


class TwoBranchNetwork:
    """Dense network with two input branches and a joint head.

    Parameters
    ----------
    in_dims:
        ``(d_a, d_b)`` input widths of the two branches.
    branch_hidden:
        Hidden widths for each branch stack (shared shape).
    branch_out:
        Output width of each branch (the merged representation is
        ``2 * branch_out`` wide).
    head_hidden:
        Hidden widths of the head stack.
    out_dim:
        Final output width (e.g. number of counties forecast).
    """

    def __init__(
        self,
        in_dims: tuple[int, int],
        branch_hidden: tuple[int, ...] = (32,),
        branch_out: int = 16,
        head_hidden: tuple[int, ...] = (32,),
        out_dim: int = 1,
        *,
        activation: str = "relu",
        dropout: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ):
        d_a, d_b = in_dims
        if d_a <= 0 or d_b <= 0 or branch_out <= 0 or out_dim <= 0:
            raise ValueError("all widths must be positive")
        gen = ensure_rng(rng)
        r_a, r_b, r_h = spawn_rngs(gen, 3)
        self.branch_a = MLP.regressor(
            d_a, list(branch_hidden), branch_out,
            activation=activation, out_activation=activation,
            dropout=dropout, rng=r_a,
        )
        self.branch_b = MLP.regressor(
            d_b, list(branch_hidden), branch_out,
            activation=activation, out_activation=activation,
            dropout=dropout, rng=r_b,
        )
        self.head = MLP.regressor(
            2 * branch_out, list(head_hidden), out_dim,
            activation=activation, dropout=dropout, rng=r_h,
        )
        self.in_dims = (int(d_a), int(d_b))
        self.branch_out = int(branch_out)
        self.out_dim = int(out_dim)

    # ------------------------------------------------------------------
    def forward(
        self, x_a: np.ndarray, x_b: np.ndarray, *, training: bool = False
    ) -> np.ndarray:
        h_a = self.branch_a.forward(x_a, training=training)
        h_b = self.branch_b.forward(x_b, training=training)
        merged = np.concatenate([h_a, h_b], axis=1)
        return self.head.forward(merged, training=training)

    def predict(self, x_a: np.ndarray, x_b: np.ndarray) -> np.ndarray:
        return self.forward(x_a, x_b, training=False)

    def train_batch(
        self, x_a: np.ndarray, x_b: np.ndarray, y: np.ndarray, loss: Loss | str
    ) -> float:
        loss_fn = get_loss(loss)
        for part in (self.branch_a, self.branch_b, self.head):
            part.zero_grad()
        pred = self.forward(x_a, x_b, training=True)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        value, grad = loss_fn(pred, y)
        grad_merged = self.head.backward(grad)
        k = self.branch_out
        self.branch_a.backward(grad_merged[:, :k])
        self.branch_b.backward(grad_merged[:, k:])
        return value

    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        return self.branch_a.params + self.branch_b.params + self.head.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.branch_a.grads + self.branch_b.grads + self.head.grads

    @property
    def n_params(self) -> int:
        return self.branch_a.n_params + self.branch_b.n_params + self.head.n_params

    def fit(
        self,
        x_a: np.ndarray,
        x_b: np.ndarray,
        y: np.ndarray,
        *,
        loss: str | Loss = "mse",
        optimizer: Optimizer | None = None,
        batch_size: int = 32,
        epochs: int = 200,
        rng: int | np.random.Generator | None = None,
    ) -> list[float]:
        """Mini-batch training; returns per-epoch mean training losses."""
        x_a = np.atleast_2d(np.asarray(x_a, dtype=float))
        x_b = np.atleast_2d(np.asarray(x_b, dtype=float))
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if not (len(x_a) == len(x_b) == len(y)):
            raise ValueError("branch inputs and targets must have equal length")
        opt = optimizer if optimizer is not None else Adam(1e-3)
        gen = ensure_rng(rng)
        losses: list[float] = []
        for _ in range(epochs):
            perm = gen.permutation(len(y))
            total, n = 0.0, 0
            for start in range(0, len(y), batch_size):
                idx = perm[start : start + batch_size]
                total += self.train_batch(x_a[idx], x_b[idx], y[idx], loss)
                opt.step(self.params, self.grads)
                n += 1
            losses.append(total / n)
        return losses
