"""Regression / classification / calibration metrics.

These back the accuracy tables in EXPERIMENTS.md (surrogate agreement with
explicit simulation, forecast RMSE by resolution, UQ calibration).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mse",
    "rmse",
    "mae",
    "r2_score",
    "mape",
    "pearson_r",
    "accuracy",
    "picp",
    "mean_interval_width",
]


def _align(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(pred, dtype=float)
    t = np.asarray(target, dtype=float)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    return p, t


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error between prediction and target."""
    p, t = _align(pred, target)
    return float(np.mean((p - t) ** 2))


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error — same units as the target."""
    return float(np.sqrt(mse(pred, target)))


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error, robust to occasional large residuals."""
    p, t = _align(pred, target)
    return float(np.mean(np.abs(p - t)))


def r2_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 is mean-prediction."""
    p, t = _align(pred, target)
    ss_res = np.sum((t - p) ** 2)
    ss_tot = np.sum((t - t.mean()) ** 2)
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-12) -> float:
    """Mean absolute percentage error (targets near zero guarded by eps)."""
    p, t = _align(pred, target)
    return float(np.mean(np.abs(p - t) / np.maximum(np.abs(t), eps))) * 100.0


def pearson_r(pred: np.ndarray, target: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 when either side is constant."""
    p, t = _align(pred, target)
    p, t = p.ravel(), t.ravel()
    ps, ts = p.std(), t.std()
    if ps == 0 or ts == 0:
        return 0.0
    return float(np.mean((p - p.mean()) * (t - t.mean())) / (ps * ts))


def accuracy(pred_labels: np.ndarray, target_labels: np.ndarray) -> float:
    """Fraction of exactly-matching labels."""
    p = np.asarray(pred_labels)
    t = np.asarray(target_labels)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    return float(np.mean(p == t))


def picp(
    target: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> float:
    """Prediction-interval coverage probability.

    Fraction of targets inside [lower, upper] — for a well-calibrated 95%
    interval this should be ~0.95 (the UQ calibration check of §III-B).
    """
    t = np.asarray(target, dtype=float)
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if not (t.shape == lo.shape == hi.shape):
        raise ValueError("target/lower/upper shapes differ")
    if np.any(lo > hi):
        raise ValueError("lower bound exceeds upper bound")
    return float(np.mean((t >= lo) & (t <= hi)))


def mean_interval_width(lower: np.ndarray, upper: np.ndarray) -> float:
    """Average width of the prediction interval (sharpness companion to picp)."""
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if lo.shape != hi.shape:
        raise ValueError("lower/upper shapes differ")
    return float(np.mean(hi - lo))
