"""Loss functions returning (value, gradient-w.r.t.-prediction).

Gradients are scaled so that ``value`` is the *mean* loss over the batch
and ``grad`` is its exact derivative — the optimizer step size is then
independent of batch size.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss", "BCELoss", "get_loss"]


class Loss:
    """Base loss: call with (pred, target) to get (value, grad)."""

    name: str = "base"

    def __call__(
        self, pred: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        pred = np.asarray(pred, dtype=float)
        target = np.asarray(target, dtype=float)
        if pred.shape != target.shape:
            raise ValueError(
                f"prediction shape {pred.shape} != target shape {target.shape}"
            )
        return self.compute(pred, target)

    def compute(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error, ``mean((pred - target)^2)``."""

    name = "mse"

    def compute(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        value = float(np.mean(diff * diff))
        grad = (2.0 / diff.size) * diff
        return value, grad


class MAELoss(Loss):
    """Mean absolute error; subgradient 0 at exact zeros."""

    name = "mae"

    def compute(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        value = float(np.mean(np.abs(diff)))
        grad = np.sign(diff) / diff.size
        return value, grad


class HuberLoss(Loss):
    """Huber loss: quadratic inside ``delta``, linear outside."""

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.delta = float(delta)

    def compute(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        absd = np.abs(diff)
        quad = absd <= self.delta
        value = float(
            np.mean(
                np.where(quad, 0.5 * diff * diff, self.delta * (absd - 0.5 * self.delta))
            )
        )
        grad = np.where(quad, diff, self.delta * np.sign(diff)) / diff.size
        return value, grad


class BCELoss(Loss):
    """Binary cross-entropy on probabilities in (0, 1); clipped for stability."""

    name = "bce"

    def __init__(self, eps: float = 1e-12):
        self.eps = float(eps)

    def compute(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        value = float(-np.mean(target * np.log(p) + (1.0 - target) * np.log1p(-p)))
        grad = (p - target) / (p * (1.0 - p) * p.size)
        return value, grad


_REGISTRY: dict[str, type[Loss]] = {
    cls.name: cls for cls in (MSELoss, MAELoss, HuberLoss, BCELoss)
}


def get_loss(spec: str | Loss) -> Loss:
    """Resolve a loss by name or pass an instance through."""
    if isinstance(spec, Loss):
        return spec
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise ValueError(f"unknown loss {spec!r}; known: {sorted(_REGISTRY)}") from None
