"""A from-scratch, numpy-only neural-network stack.

The paper's exemplars used scikit-learn, TensorFlow and Keras as the ML
subsystem (§III-D).  None of those are available offline, and the networks
involved are small dense regressors (two hidden layers, tens of units), so
this subpackage reimplements exactly the required machinery:

* dense / dropout / activation layers with analytic backprop
  (:mod:`repro.nn.layers`),
* regression and classification losses (:mod:`repro.nn.losses`),
* SGD-family and Adam optimizers with learning-rate schedules
  (:mod:`repro.nn.optimizers`),
* a :class:`~repro.nn.model.MLP` sequential container with flat parameter
  vector access (needed by the parallel computation models of §III-A),
* a mini-batch :class:`~repro.nn.training.Trainer` with early stopping,
* feature scalers and metrics,
* a :class:`~repro.nn.twobranch.TwoBranchNetwork` matching the DEFSI
  architecture (§II-A), and
* Monte-Carlo-dropout predictive sampling used by the UQ layer (§III-B).

All stochastic operations (init, shuffling, dropout masks) draw from an
explicit :class:`numpy.random.Generator`.
"""

from repro.nn.activations import (
    Activation,
    Identity,
    ReLU,
    LeakyReLU,
    Tanh,
    Sigmoid,
    Softplus,
    get_activation,
)
from repro.nn.initializers import glorot_uniform, he_normal, zeros_init, get_initializer
from repro.nn.layers import Layer, Dense, Dropout, ActivationLayer
from repro.nn.losses import Loss, MSELoss, MAELoss, HuberLoss, BCELoss, get_loss
from repro.nn.optimizers import (
    Optimizer,
    SGD,
    Momentum,
    Adam,
    RMSProp,
    ConstantSchedule,
    ExponentialDecay,
    StepDecay,
)
from repro.nn.model import MLP
from repro.nn.training import Trainer, TrainingHistory, EarlyStopping
from repro.nn.scalers import StandardScaler, MinMaxScaler
from repro.nn.twobranch import TwoBranchNetwork
from repro.nn import metrics

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "get_activation",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "get_initializer",
    "Layer",
    "Dense",
    "Dropout",
    "ActivationLayer",
    "Loss",
    "MSELoss",
    "MAELoss",
    "HuberLoss",
    "BCELoss",
    "get_loss",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "RMSProp",
    "ConstantSchedule",
    "ExponentialDecay",
    "StepDecay",
    "MLP",
    "Trainer",
    "TrainingHistory",
    "EarlyStopping",
    "StandardScaler",
    "MinMaxScaler",
    "TwoBranchNetwork",
    "metrics",
]
