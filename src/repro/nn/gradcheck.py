"""Numerical gradient checking (central differences).

Used by the test suite to validate every layer's analytic backward pass
against finite differences — the standard correctness oracle for a
hand-written backprop stack.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.losses import Loss, get_loss
from repro.nn.model import MLP

__all__ = ["numerical_gradient", "check_model_gradients", "max_relative_error"]


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` at ``x`` (same shape as x)."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def max_relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-8) -> float:
    """Elementwise max of |a-b| / max(|a|, |b|, floor)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / denom))


def check_model_gradients(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    loss: str | Loss = "mse",
    eps: float = 1e-6,
) -> float:
    """Compare analytic flat gradient to finite differences.

    Returns the max relative error across all parameters.  The model must
    be deterministic in training mode (no dropout) for the comparison to
    be meaningful.
    """
    loss_fn = get_loss(loss)
    y = np.asarray(y, dtype=float)
    if y.ndim == 1:
        y = y[:, None]

    model.train_batch(x, y, loss_fn)
    analytic = model.flat_grad()

    theta0 = model.get_flat_params()

    def f(theta_flat: np.ndarray) -> float:
        model.set_flat_params(theta_flat)
        pred = model.forward(x, training=True)
        value, _ = loss_fn(pred, y)
        return value + model.penalty()

    numeric = numerical_gradient(f, theta0.copy(), eps=eps)
    model.set_flat_params(theta0)
    return max_relative_error(analytic, numeric)
