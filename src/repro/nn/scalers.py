"""Feature scalers (fit/transform/inverse_transform).

The surrogate inputs of the paper's exemplars span wildly different
magnitudes (confinement length in nm vs salt concentration in M vs integer
valencies), so every :class:`~repro.core.surrogate.Surrogate` scales both
inputs and outputs before training.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class _FittedMixin:
    _fitted: bool = False

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")


class StandardScaler(_FittedMixin):
    """Zero-mean / unit-variance scaling; constant columns pass through."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant columns get scale 1 so transform is a pure shift there.
        self.scale_ = np.where(std > 0, std, 1.0)
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return (x - self.mean_) / self.scale_

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        self._require_fitted()
        z = np.atleast_2d(np.asarray(z, dtype=float))
        return z * self.scale_ + self.mean_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def scale_std(self) -> np.ndarray:
        """Per-feature scale — used to de-scale predictive std-devs."""
        self._require_fitted()
        return self.scale_.copy()


class MinMaxScaler(_FittedMixin):
    """Scale features to [lo, hi] (default [0, 1]); constant columns map to lo."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError(f"feature_range must satisfy lo < hi, got {feature_range}")
        self.lo, self.hi = float(lo), float(hi)
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.min_ = x.min(axis=0)
        rng = x.max(axis=0) - self.min_
        self.range_ = np.where(rng > 0, rng, 1.0)
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        unit = (x - self.min_) / self.range_
        return unit * (self.hi - self.lo) + self.lo

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        self._require_fitted()
        z = np.atleast_2d(np.asarray(z, dtype=float))
        unit = (z - self.lo) / (self.hi - self.lo)
        return unit * self.range_ + self.min_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
