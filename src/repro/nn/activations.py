"""Elementwise activation functions with analytic derivatives.

Each activation exposes ``forward(x)`` and ``backward(x, grad_out)`` where
``backward`` returns ``grad_out * f'(x)`` evaluated at the *pre-activation*
``x`` saved by the caller.  All operations are vectorized over arbitrary
array shapes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "get_activation",
]


class Activation:
    """Base class: a differentiable elementwise function."""

    name: str = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def apply_inplace(self, x: np.ndarray) -> np.ndarray:
        """Evaluate f(x) writing into ``x``; returns ``x``.

        The fused serving path (:meth:`repro.nn.model.MLP.predict`) calls
        this on its preallocated activation buffers.  The contract is
        value-identity with :meth:`forward` — subclasses override only
        when an ``out=``-capable ufunc exists; the fallback materializes
        ``forward`` and copies, which is still allocation-free for the
        caller's buffer.
        """
        x[...] = self.forward(x)
        return x

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Activation):
    """f(x) = x — the linear output head."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def apply_inplace(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class ReLU(Activation):
    """Rectified linear unit, max(x, 0)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def apply_inplace(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0, out=x)

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (x > 0.0)


class LeakyReLU(Activation):
    """ReLU with slope ``alpha`` on the negative side."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01):
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.alpha * x)

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * np.where(x > 0.0, 1.0, self.alpha)

    def __repr__(self) -> str:
        return f"LeakyReLU(alpha={self.alpha})"


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def apply_inplace(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x, out=x)

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return grad_out * (1.0 - t * t)


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stable for large |x|."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise form avoids overflow in exp.
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        return grad_out * s * (1.0 - s)


class Softplus(Activation):
    """log(1 + e^x), a smooth positive ReLU."""

    name = "softplus"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # log(1+e^x) = max(x,0) + log1p(e^{-|x|}) is stable for large |x|.
        return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * Sigmoid().forward(x)


_REGISTRY: dict[str, type[Activation]] = {
    cls.name: cls for cls in (Identity, ReLU, LeakyReLU, Tanh, Sigmoid, Softplus)
}
_REGISTRY["linear"] = Identity


def get_activation(spec: str | Activation) -> Activation:
    """Resolve an activation by name or pass an instance through."""
    if isinstance(spec, Activation):
        return spec
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise ValueError(
            f"unknown activation {spec!r}; known: {sorted(_REGISTRY)}"
        ) from None
