"""Committed-baseline support for grandfathered findings.

The baseline file (``analysis-baseline.json`` at the repo root) lists
violations that are known, reviewed, and explicitly justified.  Entries
are keyed by ``(path, rule)`` with a count rather than a line number so
that unrelated edits to a file do not invalidate the baseline.  The
linter exits zero only when every finding is either fixed, suppressed
in-line with ``# repro: noqa[RULE]``, or covered by a baseline entry.

Regenerate with ``python -m repro.analysis --update-baseline`` — which
preserves existing justifications and marks new entries with a TODO so
a reviewer can tell which entries still need one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = ["BaselineEntry", "Baseline"]

_FORMAT_VERSION = 1
_TODO = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """A budget of ``count`` accepted findings for one (path, rule) pair."""

    path: str
    rule_id: str
    count: int
    justification: str = _TODO

    def key(self) -> tuple[str, str]:
        """Return the ``(path, rule)`` grouping key."""
        return (self.path, self.rule_id)


@dataclass
class Baseline:
    """In-memory view of the committed baseline file."""

    entries: dict[tuple[str, str], BaselineEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse a baseline JSON file; raises ValueError on malformed input."""
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported baseline format in {path}")
        entries: dict[tuple[str, str], BaselineEntry] = {}
        for raw in data.get("entries", []):
            entry = BaselineEntry(
                path=str(raw["path"]),
                rule_id=str(raw["rule"]),
                count=int(raw["count"]),
                justification=str(raw.get("justification", _TODO)),
            )
            if entry.count < 0:
                raise ValueError(f"negative count in baseline entry {entry.key()}")
            entries[entry.key()] = entry
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Build a baseline covering ``findings``, keeping old justifications."""
        counts: dict[tuple[str, str], int] = {}
        for f in findings:
            key = (f.path, f.rule_id)
            counts[key] = counts.get(key, 0) + 1
        entries = {}
        for key, count in counts.items():
            old = previous.entries.get(key) if previous else None
            justification = old.justification if old else _TODO
            entries[key] = BaselineEntry(key[0], key[1], count, justification)
        return cls(entries=entries)

    def apply(self, findings: Sequence[Finding]) -> list[Finding]:
        """Return the findings NOT covered by the baseline.

        Findings are consumed against each entry's budget in stable
        (path, line) order, so when a file gains a new violation beyond
        its budget the *newest* locations surface first in reports.
        """
        budget = {key: entry.count for key, entry in self.entries.items()}
        leftover: list[Finding] = []
        for f in sorted(findings):
            key = (f.path, f.rule_id)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                leftover.append(f)
        return leftover

    def stale_entries(
        self, findings: Sequence[Finding]
    ) -> list[tuple[BaselineEntry, int]]:
        """Entries whose budget exceeds the actual finding count.

        Returns ``(entry, actual)`` pairs sorted by key — each is a
        grandfathered violation that has since been (partly) fixed, so
        its budget is slack a regression could silently consume.
        """
        counts: dict[tuple[str, str], int] = {}
        for f in findings:
            key = (f.path, f.rule_id)
            counts[key] = counts.get(key, 0) + 1
        return [
            (entry, counts.get(key, 0))
            for key, entry in sorted(self.entries.items())
            if counts.get(key, 0) < entry.count
        ]

    def pruned(self, findings: Sequence[Finding]) -> "Baseline":
        """A copy with budgets clamped to actual counts (zeros dropped)."""
        counts: dict[tuple[str, str], int] = {}
        for f in findings:
            key = (f.path, f.rule_id)
            counts[key] = counts.get(key, 0) + 1
        entries: dict[tuple[str, str], BaselineEntry] = {}
        for key, entry in self.entries.items():
            actual = min(entry.count, counts.get(key, 0))
            if actual > 0:
                entries[key] = BaselineEntry(
                    entry.path, entry.rule_id, actual, entry.justification
                )
        return Baseline(entries=entries)

    def to_json(self) -> str:
        """Serialize to the committed on-disk format (stable ordering)."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "path": e.path,
                    "rule": e.rule_id,
                    "count": e.count,
                    "justification": e.justification,
                }
                for e in sorted(self.entries.values(), key=BaselineEntry.key)
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def save(self, path: Path) -> None:
        """Write the baseline file to ``path``."""
        path.write_text(self.to_json(), encoding="utf-8")
