"""Core value types for the static-analysis subsystem.

A :class:`Rule` describes one invariant the linter enforces; a
:class:`Finding` is one concrete violation of a rule at a source
location.  Both are plain frozen dataclasses so reporters, baselines,
and tests can treat them as values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Rule", "Finding", "SEVERITY_ERROR", "SEVERITY_WARNING"]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One enforced invariant, identified by a stable short ID.

    Parameters
    ----------
    rule_id:
        Stable identifier such as ``"DET001"``; the family prefix groups
        related rules (DET = determinism, PUR = purity, NUM = numerical
        safety, API = API contracts, PERF = performance).
    name:
        Short kebab-case name used in ``--list-rules`` output.
    summary:
        One-line human description of the invariant.
    rationale:
        Why the invariant matters for this codebase (shown by
        ``--list-rules --verbose``-style reporting and docs).
    severity:
        ``"error"`` (gates CI) or ``"warning"``.
    """

    rule_id: str
    name: str
    summary: str
    rationale: str = ""
    severity: str = SEVERITY_ERROR

    def __post_init__(self) -> None:
        if not self.rule_id or not self.rule_id[:3].isalpha():
            raise ValueError(f"malformed rule id: {self.rule_id!r}")
        if self.severity not in (SEVERITY_ERROR, SEVERITY_WARNING):
            raise ValueError(f"unknown severity: {self.severity!r}")

    @property
    def family(self) -> str:
        """The alphabetic family prefix, e.g. ``"DET"`` or ``"PERF"``."""
        return self.rule_id.rstrip("0123456789")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    Orderable so reports are stable: sorted by path, then line, then
    column, then rule id.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = field(default=False, compare=False)

    def location(self) -> str:
        """Return the conventional ``path:line:col`` location string."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """Return a JSON-serializable representation (used by reporters)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
