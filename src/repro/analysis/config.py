"""Configuration for the static-analysis run.

The defaults encode this repository's invariants (see DESIGN.md,
"Enforced invariants & static analysis"): the scientific stack is
restricted to numpy/scipy/networkx + stdlib, all randomness flows
through ``repro.util.rng``, and a committed baseline file grandfathers
explicitly-justified violations.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace

__all__ = [
    "AnalysisConfig",
    "DEFAULT_ALLOWED_ROOTS",
    "DEFAULT_RNG_MODULES",
    "DEFAULT_TIMING_MODULES",
]

# Third-party import roots the purity checker accepts anywhere under
# src/repro (stdlib modules are always allowed on top of these).
DEFAULT_ALLOWED_ROOTS: frozenset[str] = frozenset({"numpy", "scipy", "networkx", "repro"})

# Modules allowed to construct unseeded generators / own the RNG plumbing.
# Matched as posix path suffixes against the linted file's path.
DEFAULT_RNG_MODULES: tuple[str, ...] = ("repro/util/rng.py",)

# Modules allowed to read raw wall clocks (OBS001).  Entries ending in
# "/" are directory markers matched as path substrings; everything else
# is a posix path suffix, like the RNG list.
DEFAULT_TIMING_MODULES: tuple[str, ...] = ("repro/util/timing.py", "repro/obs/")


def _stdlib_names() -> frozenset[str]:
    """Names of stdlib top-level modules for the running interpreter."""
    return frozenset(sys.stdlib_module_names)


@dataclass(frozen=True)
class AnalysisConfig:
    """Immutable settings consumed by the engine and checkers.

    Attributes
    ----------
    allowed_import_roots:
        Non-stdlib top-level modules that may be imported under the
        linted tree (PUR001).
    stdlib_roots:
        Stdlib module names (always importable); defaults to the running
        interpreter's ``sys.stdlib_module_names``.
    rng_module_suffixes:
        Path suffixes of modules exempt from DET003/DET005 because they
        *are* the RNG plumbing.
    timing_module_suffixes:
        Path suffixes (or ``.../``-terminated directory markers) of
        modules exempt from OBS001 because they *are* the timing /
        observability plumbing.
    select:
        If non-empty, only these rule ids (or family prefixes) run.
    ignore:
        Rule ids (or family prefixes) to skip entirely.
    """

    allowed_import_roots: frozenset[str] = DEFAULT_ALLOWED_ROOTS
    stdlib_roots: frozenset[str] = field(default_factory=_stdlib_names)
    rng_module_suffixes: tuple[str, ...] = DEFAULT_RNG_MODULES
    timing_module_suffixes: tuple[str, ...] = DEFAULT_TIMING_MODULES
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()

    def rule_enabled(self, rule_id: str) -> bool:
        """Return True when ``rule_id`` passes the select/ignore filters.

        Filters accept exact ids (``DET001``) or family prefixes
        (``DET``, ``PERF``).
        """
        family = rule_id.rstrip("0123456789")
        if rule_id in self.ignore or family in self.ignore:
            return False
        if self.select:
            return rule_id in self.select or family in self.select
        return True

    def is_rng_module(self, posix_path: str) -> bool:
        """Return True when ``posix_path`` is part of the RNG plumbing."""
        return any(posix_path.endswith(sfx) for sfx in self.rng_module_suffixes)

    def is_timing_module(self, posix_path: str) -> bool:
        """Return True when ``posix_path`` may read raw wall clocks."""
        return any(
            (sfx in posix_path) if sfx.endswith("/") else posix_path.endswith(sfx)
            for sfx in self.timing_module_suffixes
        )

    def import_allowed(self, root: str) -> bool:
        """Return True when top-level module ``root`` may be imported."""
        return root in self.allowed_import_roots or root in self.stdlib_roots

    def with_filters(
        self, select: frozenset[str] | None = None, ignore: frozenset[str] | None = None
    ) -> "AnalysisConfig":
        """Return a copy with updated select/ignore filters."""
        kwargs: dict = {}
        if select is not None:
            kwargs["select"] = select
        if ignore is not None:
            kwargs["ignore"] = ignore
        return replace(self, **kwargs)
