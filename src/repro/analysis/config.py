"""Configuration for the static-analysis run.

The defaults encode this repository's invariants (see DESIGN.md,
"Enforced invariants & static analysis"): the scientific stack is
restricted to numpy/scipy/networkx + stdlib, all randomness flows
through ``repro.util.rng``, and a committed baseline file grandfathers
explicitly-justified violations.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace

__all__ = [
    "AnalysisConfig",
    "PathRules",
    "DEFAULT_ALLOWED_ROOTS",
    "DEFAULT_RNG_MODULES",
    "DEFAULT_TIMING_MODULES",
    "DEFAULT_QUANTILE_MODULES",
    "DEFAULT_PATH_RULES",
]

# Third-party import roots the purity checker accepts anywhere under
# src/repro (stdlib modules are always allowed on top of these).
DEFAULT_ALLOWED_ROOTS: frozenset[str] = frozenset({"numpy", "scipy", "networkx", "repro"})

# Modules allowed to construct unseeded generators / own the RNG plumbing.
# Matched as posix path suffixes against the linted file's path.
DEFAULT_RNG_MODULES: tuple[str, ...] = ("repro/util/rng.py",)

# Modules allowed to read raw wall clocks (OBS001).  Entries ending in
# "/" are directory markers matched as path substrings; everything else
# is a posix path suffix, like the RNG list.
DEFAULT_TIMING_MODULES: tuple[str, ...] = ("repro/util/timing.py", "repro/obs/")

# Modules that ARE the quantile plumbing (OBS003): the sketch module may
# retain buckets and define exact_quantile; everyone else goes through it.
DEFAULT_QUANTILE_MODULES: tuple[str, ...] = ("repro/obs/sketch.py",)


def _stdlib_names() -> frozenset[str]:
    """Names of stdlib top-level modules for the running interpreter."""
    return frozenset(sys.stdlib_module_names)


@dataclass(frozen=True)
class PathRules:
    """Per-directory policy overlay, matched by path substring.

    ``marker`` is a posix path fragment (``"tests/"``); any analyzed
    file whose display path contains it inherits the extra ignored
    rules/families and the extra allowed import roots.  This is how the
    lint surface extends to tests/benchmarks/examples without flooding
    the baseline: test code may import pytest and skip the API-contract
    family, but still answers to determinism and flow rules.
    """

    marker: str
    ignore: frozenset[str] = frozenset()
    extra_import_roots: frozenset[str] = frozenset()

    def matches(self, posix_path: str) -> bool:
        """Return True when this overlay applies to ``posix_path``."""
        return self.marker in posix_path


# Default per-directory overlays for the non-library trees the lint
# target covers.  Rationale per directory:
#   tests/       pytest idioms (no __all__, literal expected values,
#                magic tolerances, ad-hoc loops) are fine in test code;
#                determinism and flow/concurrency rules still apply.
#   benchmarks/  same, plus OBS001 — benchmarks measure wall time by
#                definition.
#   examples/    scripts need no __all__/docstring contract.
DEFAULT_PATH_RULES: tuple[PathRules, ...] = (
    PathRules(
        "tests/",
        ignore=frozenset(
            {"API", "DET005", "NUM002", "NUM005", "OBS003", "PERF", "FLOW002"}
        ),
        extra_import_roots=frozenset({"pytest", "hypothesis"}),
    ),
    PathRules(
        "benchmarks/",
        ignore=frozenset(
            {"API", "DET005", "NUM005", "OBS001", "OBS003", "PERF", "FLOW002"}
        ),
        extra_import_roots=frozenset({"pytest", "benchmarks"}),
    ),
    PathRules("examples/", ignore=frozenset({"API"})),
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Immutable settings consumed by the engine and checkers.

    Attributes
    ----------
    allowed_import_roots:
        Non-stdlib top-level modules that may be imported under the
        linted tree (PUR001).
    stdlib_roots:
        Stdlib module names (always importable); defaults to the running
        interpreter's ``sys.stdlib_module_names``.
    rng_module_suffixes:
        Path suffixes of modules exempt from DET003/DET005 because they
        *are* the RNG plumbing.
    timing_module_suffixes:
        Path suffixes (or ``.../``-terminated directory markers) of
        modules exempt from OBS001 because they *are* the timing /
        observability plumbing.
    quantile_module_suffixes:
        Path suffixes of modules exempt from OBS003 because they *are*
        the quantile plumbing (the sketch implementation).
    select:
        If non-empty, only these rule ids (or family prefixes) run.
    ignore:
        Rule ids (or family prefixes) to skip entirely.
    path_rules:
        Per-directory :class:`PathRules` overlays (tests/, benchmarks/,
        examples/ by default).
    flow:
        When False the interprocedural project phase (FLOW/CONC
        families) is skipped entirely; per-file checkers still run.
    """

    allowed_import_roots: frozenset[str] = DEFAULT_ALLOWED_ROOTS
    stdlib_roots: frozenset[str] = field(default_factory=_stdlib_names)
    rng_module_suffixes: tuple[str, ...] = DEFAULT_RNG_MODULES
    timing_module_suffixes: tuple[str, ...] = DEFAULT_TIMING_MODULES
    quantile_module_suffixes: tuple[str, ...] = DEFAULT_QUANTILE_MODULES
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    path_rules: tuple[PathRules, ...] = DEFAULT_PATH_RULES
    flow: bool = True

    def rule_enabled(self, rule_id: str) -> bool:
        """Return True when ``rule_id`` passes the select/ignore filters.

        Filters accept exact ids (``DET001``) or family prefixes
        (``DET``, ``PERF``).
        """
        family = rule_id.rstrip("0123456789")
        if rule_id in self.ignore or family in self.ignore:
            return False
        if self.select:
            return rule_id in self.select or family in self.select
        return True

    def rule_enabled_for(self, rule_id: str, posix_path: str) -> bool:
        """Path-aware :meth:`rule_enabled`, applying directory overlays."""
        if not self.rule_enabled(rule_id):
            return False
        family = rule_id.rstrip("0123456789")
        for overlay in self.path_rules:
            if overlay.matches(posix_path) and (
                rule_id in overlay.ignore or family in overlay.ignore
            ):
                return False
        return True

    def is_rng_module(self, posix_path: str) -> bool:
        """Return True when ``posix_path`` is part of the RNG plumbing."""
        return any(posix_path.endswith(sfx) for sfx in self.rng_module_suffixes)

    def is_timing_module(self, posix_path: str) -> bool:
        """Return True when ``posix_path`` may read raw wall clocks."""
        return any(
            (sfx in posix_path) if sfx.endswith("/") else posix_path.endswith(sfx)
            for sfx in self.timing_module_suffixes
        )

    def is_quantile_module(self, posix_path: str) -> bool:
        """Return True when ``posix_path`` is the quantile plumbing."""
        return any(
            posix_path.endswith(sfx) for sfx in self.quantile_module_suffixes
        )

    def import_allowed(self, root: str, posix_path: str = "") -> bool:
        """Return True when top-level module ``root`` may be imported.

        ``posix_path`` (when given) activates per-directory overlays —
        e.g. tests may import ``pytest``.
        """
        if root in self.allowed_import_roots or root in self.stdlib_roots:
            return True
        if posix_path:
            for overlay in self.path_rules:
                if overlay.matches(posix_path) and root in overlay.extra_import_roots:
                    return True
        return False

    def with_filters(
        self, select: frozenset[str] | None = None, ignore: frozenset[str] | None = None
    ) -> "AnalysisConfig":
        """Return a copy with updated select/ignore filters."""
        kwargs: dict = {}
        if select is not None:
            kwargs["select"] = select
        if ignore is not None:
            kwargs["ignore"] = ignore
        return replace(self, **kwargs)
