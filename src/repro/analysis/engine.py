"""Checker registry, visitor framework, and two-phase analysis driver.

Per-file checkers are ``ast.NodeVisitor`` subclasses registered with
:func:`register_checker`; each declares the :class:`~repro.analysis.findings.Rule`
objects it can emit.  The engine parses each file once, runs every
enabled checker over the tree, then — when more than syntax is needed —
runs a second, *project* phase: :class:`BaseProjectChecker` subclasses
(registered with :func:`register_project_checker`) see every parsed
file at once through a :class:`ProjectContext` carrying the project
symbol table and call graph, which is what the interprocedural
FLOW/CONC rule families are built on.  Findings from both phases flow
through the same ``# repro: noqa[RULE]`` / ``# repro: noqa-file[RULE]``
suppression pass and the same baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, Type

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Rule

__all__ = [
    "FileContext",
    "ProjectContext",
    "BaseChecker",
    "BaseProjectChecker",
    "register_checker",
    "register_project_checker",
    "all_rules",
    "all_checkers",
    "all_project_checkers",
    "parse_suppressions",
    "iter_python_files",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "AnalysisError",
]

_CHECKERS: list[Type["BaseChecker"]] = []
_PROJECT_CHECKERS: list[Type["BaseProjectChecker"]] = []
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?"
)


class AnalysisError(Exception):
    """Raised when a target cannot be analyzed (unreadable / syntax error)."""


@dataclass
class FileContext:
    """Everything a checker may need about the file under analysis."""

    path: str  # posix-style, repo-relative when possible
    tree: ast.Module
    source: str
    config: AnalysisConfig
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class ProjectContext:
    """Whole-project view handed to the second analysis phase.

    ``files`` maps display paths to their :class:`FileContext`;
    ``index`` and ``graph`` are the flow package's symbol table and
    call graph over the same trees.  Built once per
    :func:`analyze_paths` run.
    """

    files: dict  # path -> FileContext
    config: AnalysisConfig
    index: "object"  # ProjectIndex (typed loosely to keep imports lazy)
    graph: "object"  # CallGraph

    @classmethod
    def build(cls, files: dict, config: AnalysisConfig) -> "ProjectContext":
        """Index the parsed files and resolve the call graph."""
        from repro.analysis.flow.project import CallGraph, ProjectIndex

        index = ProjectIndex.build({p: ctx.tree for p, ctx in files.items()})
        return cls(files=files, config=config, index=index, graph=CallGraph.build(index))


class BaseChecker(ast.NodeVisitor):
    """Base class for all checkers.

    Subclasses set the ``rules`` class attribute to the tuple of
    :class:`Rule` objects they may emit and call :meth:`report` from
    their ``visit_*`` methods.  A checker instance is created fresh for
    every file, so per-file state can live on ``self``.
    """

    rules: tuple[Rule, ...] = ()

    def __init__(self, context: FileContext):
        self.context = context
        self.findings: list[Finding] = []
        self._rule_ids = {r.rule_id for r in self.rules}

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        """Record a finding for ``rule_id`` at ``node``'s location."""
        if rule_id not in self._rule_ids:
            raise ValueError(
                f"{type(self).__name__} reported undeclared rule {rule_id}"
            )
        if not self.context.config.rule_enabled_for(rule_id, self.context.path):
            return
        self.findings.append(
            Finding(
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        """Visit the whole tree and return collected findings."""
        self.visit(self.context.tree)
        return self.findings


class BaseProjectChecker:
    """Base class for project-phase (interprocedural) checkers.

    Unlike :class:`BaseChecker`, an instance sees *all* parsed files at
    once through a :class:`ProjectContext` and reports findings against
    whichever file each defect lives in.  One instance is created per
    :func:`analyze_paths` run.
    """

    rules: tuple[Rule, ...] = ()

    def __init__(self, project: ProjectContext):
        self.project = project
        self.findings: list[Finding] = []
        self._rule_ids = {r.rule_id for r in self.rules}

    def report(
        self, path: str, rule_id: str, message: str, line: int = 1, col: int = 0
    ) -> None:
        """Record a finding for ``rule_id`` at ``path:line``."""
        if rule_id not in self._rule_ids:
            raise ValueError(
                f"{type(self).__name__} reported undeclared rule {rule_id}"
            )
        if not self.project.config.rule_enabled_for(rule_id, path):
            return
        self.findings.append(
            Finding(path=path, line=line, col=col, rule_id=rule_id, message=message)
        )

    def run(self) -> list[Finding]:
        """Analyze the whole project; subclasses must override."""
        raise NotImplementedError


def register_checker(cls: Type[BaseChecker]) -> Type[BaseChecker]:
    """Class decorator adding ``cls`` to the global checker registry."""
    if not cls.rules:
        raise ValueError(f"checker {cls.__name__} declares no rules")
    _CHECKERS.append(cls)
    return cls


def register_project_checker(
    cls: Type[BaseProjectChecker],
) -> Type[BaseProjectChecker]:
    """Class decorator adding ``cls`` to the project-checker registry."""
    if not cls.rules:
        raise ValueError(f"project checker {cls.__name__} declares no rules")
    _PROJECT_CHECKERS.append(cls)
    return cls


def _load_builtin_checkers() -> None:
    # Imported lazily: checker modules import this module for BaseChecker.
    from repro.analysis import checkers as _  # noqa: F401 (import side effect)


def all_checkers() -> list[Type[BaseChecker]]:
    """Return the registered checker classes (loading built-ins first)."""
    _load_builtin_checkers()
    return list(_CHECKERS)


def all_project_checkers() -> list[Type[BaseProjectChecker]]:
    """Return the registered project-checker classes."""
    _load_builtin_checkers()
    return list(_PROJECT_CHECKERS)


def all_rules() -> dict[str, Rule]:
    """Return every known rule keyed by id, sorted by id."""
    rules = [r for cls in all_checkers() for r in cls.rules]
    rules += [r for cls in all_project_checkers() for r in cls.rules]
    return {r.rule_id: r for r in sorted(rules, key=lambda r: r.rule_id)}


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """``(lineno, comment_text)`` for every real comment token.

    Tokenizing (rather than scanning raw lines) keeps directive-shaped
    text inside strings and docstrings — e.g. documentation *about*
    ``# repro: noqa[RULE]`` — from acting as a live suppression.
    """
    import io
    import tokenize

    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to raw line scanning for untokenizable input.
        return [(i, line) for i, line in enumerate(source.splitlines(), start=1)]
    return out


def parse_suppressions(source: str) -> tuple[dict[int, frozenset[str] | None], dict]:
    """Extract noqa directives from ``source``.

    Returns ``(per_line, per_file)`` where ``per_line`` maps a 1-based
    line number to either ``None`` (suppress every rule on that line)
    or a frozenset of rule ids, and ``per_file`` is the same shape keyed
    by the single key ``"file"`` when a ``noqa-file`` directive exists.
    Only real comment tokens count — directive-shaped text inside
    strings or docstrings is inert.
    """
    per_line: dict[int, frozenset[str] | None] = {}
    per_file: dict[str, frozenset[str] | None] = {}
    for lineno, line in _comment_lines(source):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules_text = m.group("rules")
        rules = (
            None
            if rules_text is None
            else frozenset(r.strip() for r in rules_text.split(",") if r.strip())
        )
        if m.group("file"):
            prev = per_file.get("file", frozenset())
            if rules is None or prev is None:
                per_file["file"] = None
            else:
                per_file["file"] = prev | rules
        else:
            prev_line = per_line.get(lineno, frozenset())
            if rules is None or prev_line is None:
                per_line[lineno] = None
            else:
                per_line[lineno] = prev_line | rules
    return per_line, per_file


def _is_suppressed(
    finding: Finding,
    per_line: dict[int, frozenset[str] | None],
    per_file: dict[str, frozenset[str] | None],
) -> bool:
    if finding.rule_id == "ANA001":
        # The noqa validator cannot be silenced by the directives it
        # validates — a malformed directive would suppress its own report.
        return False
    if "file" in per_file:
        rules = per_file["file"]
        if rules is None or finding.rule_id in rules:
            return True
    if finding.line in per_line:
        rules = per_line[finding.line]
        if rules is None or finding.rule_id in rules:
            return True
    return False


def _parse_context(source: str, path: str, config: AnalysisConfig) -> FileContext:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    return FileContext(path=path, tree=tree, source=source, config=config)


def _run_file_checkers(context: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for cls in all_checkers():
        findings.extend(cls(context).run())
    return findings


def _suppress(findings: Iterable[Finding], source: str) -> list[Finding]:
    per_line, per_file = parse_suppressions(source)
    return [f for f in findings if not _is_suppressed(f, per_line, per_file)]


def analyze_source(
    source: str, path: str, config: AnalysisConfig | None = None
) -> list[Finding]:
    """Analyze Python ``source`` attributed to ``path``; return findings.

    Runs the per-file phase only — project (FLOW/CONC) rules need
    :func:`analyze_paths`.  Raises :class:`AnalysisError` on syntax
    errors.
    """
    config = config or AnalysisConfig()
    context = _parse_context(source, path, config)
    return sorted(_suppress(_run_file_checkers(context), source))


def _display_path(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def analyze_file(path: Path, config: AnalysisConfig | None = None) -> list[Finding]:
    """Analyze one file on disk; paths in findings are repo-relative."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"{path}: cannot read: {exc}") from exc
    return analyze_source(source, _display_path(path), config)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for p in paths:
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
        elif not p.exists():
            raise AnalysisError(f"{p}: no such file or directory")
    return sorted(out)


def analyze_paths(
    paths: Sequence[Path], config: AnalysisConfig | None = None
) -> list[Finding]:
    """Analyze every Python file under ``paths``; return sorted findings.

    Two phases: the per-file checkers run over each file, then (unless
    ``config.flow`` is off) every parsed tree is indexed into a
    :class:`ProjectContext` and the project checkers run once over the
    whole set.  ``noqa`` suppression applies to both phases' findings.
    """
    config = config or AnalysisConfig()
    files: dict[str, FileContext] = {}
    findings_by_path: dict[str, list[Finding]] = {}
    for f in iter_python_files(paths):
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"{f}: cannot read: {exc}") from exc
        context = _parse_context(source, _display_path(f), config)
        files[context.path] = context
        findings_by_path[context.path] = _run_file_checkers(context)
    if config.flow and files:
        project = ProjectContext.build(files, config)
        for cls in all_project_checkers():
            for finding in cls(project).run():
                findings_by_path.setdefault(finding.path, []).append(finding)
    findings: list[Finding] = []
    for path, found in findings_by_path.items():
        context = files.get(path)
        findings.extend(_suppress(found, context.source) if context else found)
    return sorted(findings)
