"""Command-line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (after noqa + baseline suppression), 1 = findings
remain, 2 = usage or analysis error (unreadable file, syntax error,
malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisError, all_rules, analyze_paths
from repro.analysis.reporters import render_json, render_rule_table, render_text

__all__ = ["build_parser", "main"]

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Self-hosted static analysis enforcing this repository's "
            "determinism, purity, numerical-safety, and API-contract invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings (keeps justifications)",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids or family prefixes to run (e.g. DET,NUM002)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule ids or family prefixes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _parse_filter(text: str) -> frozenset[str]:
    return frozenset(part.strip() for part in text.split(",") if part.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_table(all_rules()))
        return 0

    config = AnalysisConfig(
        select=_parse_filter(args.select), ignore=_parse_filter(args.ignore)
    )
    try:
        findings = analyze_paths([Path(p) for p in args.paths], config)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    previous: Baseline | None = None
    if not args.no_baseline and baseline_path.exists():
        try:
            previous = Baseline.load(baseline_path)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: malformed baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        Baseline.from_findings(findings, previous).save(baseline_path)
        print(f"baseline written: {baseline_path} ({len(findings)} findings covered)")
        return 0

    reported = previous.apply(findings) if previous else list(findings)
    if args.format == "json":
        print(render_json(reported, all_rules()))
    else:
        print(render_text(reported))
    return 1 if reported else 0
