"""Command-line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (after noqa + baseline suppression), 1 = findings
remain, 2 = usage or analysis error (unreadable file, syntax error,
malformed baseline, unknown rule in a filter).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import (
    AnalysisError,
    ProjectContext,
    all_rules,
    analyze_paths,
    iter_python_files,
    _display_path,
    _parse_context,
)
from repro.analysis.reporters import render_json, render_rule_table, render_text

__all__ = ["build_parser", "main"]

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Self-hosted static analysis enforcing this repository's "
            "determinism, purity, numerical-safety, API-contract, and "
            "interprocedural flow/concurrency invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings (keeps justifications)",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop stale baseline budget (entries whose violations were fixed)",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids or family prefixes to run (e.g. DET,NUM002)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule ids or family prefixes to skip",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the interprocedural project phase (FLOW/CONC rules)",
    )
    parser.add_argument(
        "--call-graph",
        action="store_true",
        help="print the resolved project call graph and exit",
    )
    parser.add_argument(
        "--dump-cfg",
        metavar="QUALNAME",
        default="",
        help="print the CFG of functions whose qualified name ends with "
        "QUALNAME, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _parse_filter(text: str) -> frozenset[str]:
    return frozenset(part.strip() for part in text.split(",") if part.strip())


def _validate_filters(select: frozenset[str], ignore: frozenset[str]) -> str | None:
    """Return the first unknown token in the filters, or None when valid."""
    rules = all_rules()
    families = {rule.family for rule in rules.values()}
    for flag, tokens in (("--select", select), ("--ignore", ignore)):
        for token in sorted(tokens):
            if token not in rules and token not in families:
                return f"unknown rule or family {token!r} in {flag}"
    return None


def _build_project(paths: Sequence[str], config: AnalysisConfig) -> ProjectContext:
    files = {}
    for f in iter_python_files([Path(p) for p in paths]):
        source = f.read_text(encoding="utf-8")
        context = _parse_context(source, _display_path(f), config)
        files[context.path] = context
    return ProjectContext.build(files, config)


def _dump_cfg(paths: Sequence[str], config: AnalysisConfig, suffix: str) -> int:
    from repro.analysis.flow.cfg import build_cfg

    project = _build_project(paths, config)
    matches = sorted(
        q for q in project.index.functions if q == suffix or q.endswith("." + suffix)
    )
    if not matches:
        print(f"error: no function matches {suffix!r}", file=sys.stderr)
        return 2
    for qualname in matches:
        print(build_cfg(project.index.functions[qualname].node, qualname).describe())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_table(all_rules()))
        return 0

    select, ignore = _parse_filter(args.select), _parse_filter(args.ignore)
    bad = _validate_filters(select, ignore)
    if bad is not None:
        print(f"error: {bad}", file=sys.stderr)
        return 2

    config = AnalysisConfig(select=select, ignore=ignore, flow=not args.no_flow)
    try:
        if args.call_graph:
            print(_build_project(args.paths, config).graph.describe())
            return 0
        if args.dump_cfg:
            return _dump_cfg(args.paths, config, args.dump_cfg)
        findings = analyze_paths([Path(p) for p in args.paths], config)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    previous: Baseline | None = None
    if not args.no_baseline and baseline_path.exists():
        try:
            previous = Baseline.load(baseline_path)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: malformed baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        Baseline.from_findings(findings, previous).save(baseline_path)
        print(f"baseline written: {baseline_path} ({len(findings)} findings covered)")
        return 0

    if args.prune_baseline:
        if previous is None:
            print("error: no baseline to prune", file=sys.stderr)
            return 2
        pruned = previous.pruned(findings)
        dropped = len(previous.entries) - len(pruned.entries)
        pruned.save(baseline_path)
        print(
            f"baseline pruned: {baseline_path} "
            f"({dropped} entries dropped, {len(pruned.entries)} kept)"
        )
        return 0

    if previous is not None:
        for entry, actual in previous.stale_entries(findings):
            print(
                f"warning: stale baseline entry {entry.path} {entry.rule_id}: "
                f"budget {entry.count}, found {actual} "
                "(run --prune-baseline to drop the slack)",
                file=sys.stderr,
            )

    reported = previous.apply(findings) if previous else list(findings)
    if args.format == "json":
        print(render_json(reported, all_rules()))
    else:
        print(render_text(reported))
    return 1 if reported else 0
