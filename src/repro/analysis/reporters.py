"""Finding reporters: human-readable text and machine-readable JSON.

The JSON schema is stable so CI can parse it::

    {"version": 1, "count": N, "findings": [{"path", "line", "col",
     "rule", "message"}, ...], "rules": {"DET001": "summary", ...}}
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding, Rule

__all__ = ["render_text", "render_json", "render_rule_table"]


def render_text(findings: Sequence[Finding]) -> str:
    """Format findings one-per-line as ``path:line:col: RULE message``."""
    lines = [
        f"{f.location()}: {f.rule_id} {f.message}" for f in sorted(findings)
    ]
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(f"{len(findings)} {noun}")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], rules: dict[str, Rule] | None = None
) -> str:
    """Serialize findings (and optionally the rule table) as JSON."""
    payload: dict = {
        "version": 1,
        "count": len(findings),
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    if rules:
        payload["rules"] = {rid: r.summary for rid, r in sorted(rules.items())}
    return json.dumps(payload, indent=2)


def render_rule_table(rules: dict[str, Rule]) -> str:
    """Format the rule registry for ``--list-rules``."""
    lines = []
    family = None
    for rule_id in sorted(rules):
        rule = rules[rule_id]
        if rule.family != family:
            family = rule.family
            lines.append(f"[{family}]")
        lines.append(f"  {rule.rule_id}  {rule.name}: {rule.summary}")
        if rule.rationale:
            lines.append(f"          why: {rule.rationale}")
    return "\n".join(lines)
