"""Self-hosted static analysis for the Learning-Everywhere codebase.

An AST-based linter (pure stdlib ``ast``, no new dependencies) that
enforces the invariants the reproduction is built on:

- **DET** — determinism: all randomness flows through the seeded
  pipeline in :mod:`repro.util.rng`.
- **PUR** — dependency purity: numpy/scipy/networkx + stdlib only.
- **NUM** — numerical safety: no swallowed errors, float-literal
  equality, mutable defaults, global seterr, or unguarded
  reduction divisions.
- **API** — contracts: ``__all__`` consistency, documented public
  callables, canonical ``rng`` signatures.

Run ``python -m repro.analysis`` (see ``--help``); suppress a finding
in-line with ``# repro: noqa[RULE]`` or grandfather it with a justified
entry in ``analysis-baseline.json``.  The tier-1 test
``tests/analysis/test_self_lint.py`` keeps the tree clean.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import (
    AnalysisError,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import Finding, Rule

__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
]
