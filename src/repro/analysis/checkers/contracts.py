"""API-contract checkers (API family).

Public surface rules: every public module declares ``__all__`` and the
declaration is consistent with the names actually defined; every public
top-level callable is documented; and ``rng`` parameters follow the
canonical ``rng: int | np.random.Generator | None = None`` shape so the
whole library is seedable the same way.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["ContractsChecker"]

API001 = Rule(
    "API001",
    "module-declares-all",
    "public module defines top-level names but no __all__",
    "__all__ is the contract tests and star-imports rely on.",
)
API002 = Rule(
    "API002",
    "all-names-exist",
    "__all__ lists a name not bound at module top level",
    "Phantom exports break `from module import *` and API docs.",
)
API003 = Rule(
    "API003",
    "public-names-exported",
    "public top-level def/class missing from __all__",
    "Unlisted public names drift out of the tested API surface.",
)
API004 = Rule(
    "API004",
    "public-callable-documented",
    "public top-level function/class lacks a docstring",
    "The docstring is the only spec for a hand-rolled numeric stack.",
)
API005 = Rule(
    "API005",
    "canonical-rng-signature",
    "rng parameter deviates from `rng: int | np.random.Generator | None = None`",
    "A uniform seeding signature lets pipelines thread one rng everywhere.",
)

_CANONICAL_RNG = frozenset(
    {
        "int|np.random.Generator|None",
        "int|numpy.random.Generator|None",
        "None|int|np.random.Generator",
        "np.random.Generator|int|None",
    }
)
_WS = re.compile(r"\s+")


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (defs, classes, assigns, imports).

    Descends into top-level ``if``/``try`` blocks so conditionally bound
    names (version guards, optional fast paths) count as defined.
    """
    bound: set[str] = set()

    def collect(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.If):
                collect(node.body)
                collect(node.orelse)
            elif isinstance(node, ast.Try):
                collect(node.body)
                collect(node.orelse)
                collect(node.finalbody)
                for handler in node.handlers:
                    collect(handler.body)

    collect(tree.body)
    return bound


def _declared_all(tree: ast.Module) -> tuple[list[str] | None, ast.AST | None]:
    """Return (__all__ entries, node) or (None, None) when absent/dynamic."""
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            value = node.value
        if value is not None:
            if isinstance(value, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                return [e.value for e in value.elts], node
            return None, node  # dynamic __all__: treat as declared, skip checks
    return None, None


@register_checker
class ContractsChecker(BaseChecker):
    """Enforces __all__/docstring/rng-signature consistency."""

    rules = (API001, API002, API003, API004, API005)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._class_stack: list[str] = []

    @property
    def _module_is_public(self) -> bool:
        stem = self.context.path.rsplit("/", 1)[-1].removesuffix(".py")
        return not stem.startswith("_")

    def visit_Module(self, node: ast.Module) -> None:
        public_defs = [
            n
            for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not n.name.startswith("_")
        ]
        exported, all_node = _declared_all(node)
        if self._module_is_public:
            if all_node is None and public_defs:
                self.report(
                    node,
                    "API001",
                    "module defines public names but no __all__",
                )
            if exported is not None:
                bound = _top_level_bindings(node)
                for name in exported:
                    if name not in bound:
                        self.report(
                            all_node,
                            "API002",
                            f"__all__ lists `{name}` which is not defined in the module",
                        )
                for d in public_defs:
                    if d.name not in exported:
                        self.report(
                            d,
                            "API003",
                            f"public `{d.name}` is missing from __all__",
                        )
            for d in public_defs:
                if not ast.get_docstring(d):
                    self.report(
                        d,
                        "API004",
                        f"public `{d.name}` has no docstring",
                    )
        self.generic_visit(node)

    # -- API005: canonical rng signatures -----------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _check_rng_signature(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        public = not node.name.startswith("_") or node.name == "__init__"
        if not public or any(c.startswith("_") for c in self._class_stack):
            return
        args = node.args
        positional = args.posonlyargs + args.args
        pos_defaults: dict[str, ast.expr] = dict(
            zip((a.arg for a in reversed(positional)), reversed(args.defaults))
        )
        kw_defaults: dict[str, ast.expr | None] = {
            a.arg: d for a, d in zip(args.kwonlyargs, args.kw_defaults)
        }
        for param in positional + args.kwonlyargs:
            if param.arg != "rng":
                continue
            has_default = param.arg in pos_defaults or (
                kw_defaults.get(param.arg) is not None
            )
            default = pos_defaults.get(param.arg) or kw_defaults.get(param.arg)
            if has_default:
                if not (isinstance(default, ast.Constant) and default.value is None):
                    self.report(
                        node,
                        "API005",
                        f"`{node.name}` defaults rng to "
                        f"`{ast.unparse(default)}`; the canonical default is None",
                    )
                elif param.annotation is not None:
                    text = _WS.sub("", ast.unparse(param.annotation))
                    if text not in _CANONICAL_RNG:
                        self.report(
                            node,
                            "API005",
                            f"`{node.name}` annotates rng as `{text}`; expected "
                            "`int | np.random.Generator | None`",
                        )
            elif node.name == "__init__" and self._class_stack:
                self.report(
                    node,
                    "API005",
                    f"constructor of `{self._class_stack[-1]}` requires rng; "
                    "give it the canonical `= None` default",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_rng_signature(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_rng_signature(node)
        self.generic_visit(node)
