"""Dependency-purity checker (PUR family).

DESIGN.md commits this reproduction to a hand-rolled stack: numpy,
scipy, and networkx only, with the neural network written from scratch.
PUR001 forbids any other third-party import under ``src/repro`` — no
torch, tensorflow, sklearn, pandas, or transitive convenience deps —
including imports hidden inside ``try``/``except`` fallbacks.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseChecker, register_checker
from repro.analysis.findings import Rule

__all__ = ["PurityChecker"]

PUR001 = Rule(
    "PUR001",
    "allowed-imports-only",
    "Import outside the numpy/scipy/networkx + stdlib allowlist",
    "The stack stays pure so every numeric path is auditable and the "
    "repo runs on a bare scientific-python image.",
)


@register_checker
class PurityChecker(BaseChecker):
    """Flags imports whose top-level module is not allowlisted."""

    rules = (PUR001,)

    def _check_root(self, node: ast.AST, root: str) -> None:
        if not self.context.config.import_allowed(root, self.context.path):
            self.report(
                node,
                "PUR001",
                f"import of `{root}` is outside the allowed set "
                "(numpy/scipy/networkx/repro + stdlib)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_root(node, alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:  # relative imports are always fine
            self._check_root(node, node.module.split(".")[0])
        self.generic_visit(node)
