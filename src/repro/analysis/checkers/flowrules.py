"""Flow-sensitive rules (FLOW family) — project phase.

These rules run over the :class:`~repro.analysis.engine.ProjectContext`
built by ``analyze_paths`` and use the ``repro.analysis.flow`` package:

- **FLOW001** — interprocedural entropy taint: a value carrying ambient
  entropy (wall clock, ``os.environ``, unsorted directory listing,
  set-iteration order, unseeded RNG) reaches a serialization sink
  (trace export, JSON writers, ledger records, file writes), possibly
  through helper functions.  The syntactic DET/OBS rules flag the
  *read*; this rule flags the *laundering* — a clock value stored,
  passed through two helpers, and then serialized.
- **FLOW002** — dead stores: an assignment no later use can observe on
  any CFG path.  In numeric kernels a dead store is usually a stale
  refactor remnant or a dropped result.
- **FLOW003** — span safety: a ``tracer.open_span(...)`` id with some
  CFG path (including exception edges) to the function exit that never
  passes a matching ``close_span``.  A leaked span truncates the trace
  and silently corrupts the effective-speedup ledger on error paths;
  the sanctioned shape is ``try``/``finally`` (or the ``span()``
  context manager).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseProjectChecker, register_project_checker
from repro.analysis.findings import SEVERITY_WARNING, Rule
from repro.analysis.flow.cfg import EDGE_EXCEPT, EDGE_FALSE, EDGE_TRUE, CFG, build_cfg
from repro.analysis.flow.dataflow import ReachingDefs, compute_reaching
from repro.analysis.flow.taint import TaintAnalysis

__all__ = ["FlowChecker"]

FLOW001 = Rule(
    "FLOW001",
    "entropy-taint-to-sink",
    "Value carrying ambient entropy reaches a serialization sink",
    "Traces, bench JSON, and ledgers must be byte-identical across "
    "replays; entropy laundered through helpers defeats the syntactic "
    "determinism rules.",
)
FLOW002 = Rule(
    "FLOW002",
    "dead-store",
    "Assignment that no later use can observe on any path",
    "Dead stores in numeric code are usually dropped results or stale "
    "refactor remnants; either is a silent correctness hazard.",
    severity=SEVERITY_WARNING,
)
FLOW003 = Rule(
    "FLOW003",
    "span-leak",
    "Tracer span opened without a guaranteed close on every path",
    "A span leaked on an exception path truncates the trace and "
    "corrupts the effective-speedup ledger exactly when things go "
    "wrong; close in a finally block or use the span() context manager.",
)

#: Call-attr names that open / close a tracer span.
_OPEN_ATTR = "open_span"
_CLOSE_ATTR = "close_span"


def _open_span_call(expr: ast.expr) -> ast.Call | None:
    """The ``.open_span(...)`` call inside ``expr``, if it produces its value.

    Handles the direct form and the conditional-open idiom
    ``tracer.open_span(...) if tracer is not None else None``.
    """
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == _OPEN_ATTR
    ):
        return expr
    if isinstance(expr, ast.IfExp):
        return _open_span_call(expr.body) or _open_span_call(expr.orelse)
    return None


def _closes_var(stmt: ast.stmt, var: str) -> bool:
    """True when ``stmt`` contains ``*.close_span(var, ...)``."""
    for sub in ast.walk(stmt):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == _CLOSE_ATTR
            and sub.args
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id == var
        ):
            return True
    return False


def _transfers_var(stmt: ast.stmt, var: str) -> bool:
    """True when ``stmt`` returns/yields ``var`` (ownership moves out)."""
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        return any(
            isinstance(sub, ast.Name) and sub.id == var
            for sub in ast.walk(stmt.value)
        )
    return False


def _branch_constraint(test: ast.expr, var: str) -> str | None:
    """Which edge of ``test`` is consistent with ``var`` being a live span.

    Returns ``EDGE_TRUE``/``EDGE_FALSE`` when the test is a direct
    None-check (or truthiness check) of ``var``, else None (no pruning).
    A real span id is never None, so on e.g. ``if sid is not None:`` only
    the True branch can still hold the span.
    """
    if isinstance(test, ast.Name) and test.id == var:
        return EDGE_TRUE
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
        and test.operand.id == var
    ):
        return EDGE_FALSE
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == var
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.IsNot):
            return EDGE_TRUE
        if isinstance(test.ops[0], ast.Is):
            return EDGE_FALSE
    return None


def _leak_path_exists(cfg: CFG, open_id: int, var: str) -> bool:
    """DFS from the open site to exit avoiding close/transfer nodes.

    Branches inconsistent with ``var`` holding a real (non-None) span id
    are pruned, so a close guarded by ``if sid is not None:`` counts.
    The open statement's own exception edge is not a leak path — if
    ``open_span`` itself raises, no span was created.
    """
    work = [
        edge.dst for edge in cfg.successors(open_id) if edge.kind != EDGE_EXCEPT
    ]
    seen: set[int] = set()
    while work:
        nid = work.pop()
        if nid in seen:
            continue
        seen.add(nid)
        if nid == cfg.exit_id:
            return True
        node = cfg.node(nid)
        if node.stmt is not None:
            if _closes_var(node.stmt, var) or _transfers_var(node.stmt, var):
                continue
        constraint = None
        if node.label == "test" and node.stmt is not None:
            constraint = _branch_constraint(node.stmt.test, var)
        for edge in cfg.successors(nid):
            if constraint is not None and edge.kind in (EDGE_TRUE, EDGE_FALSE):
                if edge.kind != constraint:
                    continue
            work.append(edge.dst)
    return False


@register_project_checker
class FlowChecker(BaseProjectChecker):
    """Runs the FLOW family over every indexed function."""

    rules = (FLOW001, FLOW002, FLOW003)

    def run(self):
        self._taint()
        for qualname in sorted(self.project.index.functions):
            info = self.project.index.functions[qualname]
            cfg = build_cfg(info.node)
            rd = compute_reaching(cfg, info.node)
            self._dead_stores(info, rd)
            self._span_leaks(info, cfg)
        return self.findings

    # -- FLOW001 ---------------------------------------------------------
    def _taint(self) -> None:
        analysis = TaintAnalysis(
            self.project.index, self.project.graph, self.project.config
        )
        for flow in analysis.run():
            self.report(
                flow.path,
                "FLOW001",
                flow.message(),
                line=flow.line,
                col=flow.col,
            )

    # -- FLOW002 ---------------------------------------------------------
    def _dead_stores(self, info, rd: ReachingDefs) -> None:
        for d in rd.dead_definitions():
            # `aug` is excluded: `p += v` on an ndarray mutates shared
            # storage in place, so the rebinding being unread is fine.
            if d.kind not in ("assign", "ann", "walrus"):
                continue
            if d.from_unpack or d.var.startswith("_"):
                continue
            node = rd.cfg.node(d.node_id)
            self.report(
                info.path,
                "FLOW002",
                f"store to `{d.var}` is never read on any path; "
                "drop it or rename to `_` if only the side effect matters",
                line=node.lineno,
            )

    # -- FLOW003 ---------------------------------------------------------
    def _span_leaks(self, info, cfg: CFG) -> None:
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None:
                continue
            if isinstance(stmt, ast.Expr):
                call = _open_span_call(stmt.value)
                if call is not None:
                    self.report(
                        info.path,
                        "FLOW003",
                        "open_span() result discarded — the span id is "
                        "required to close it; this span can never be closed",
                        line=node.lineno,
                    )
                continue
            if not isinstance(stmt, ast.Assign):
                continue
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                continue
            call = _open_span_call(stmt.value)
            if call is None:
                continue
            var = stmt.targets[0].id
            if _leak_path_exists(cfg, node.node_id, var):
                self.report(
                    info.path,
                    "FLOW003",
                    f"span `{var}` opened here is not closed on every "
                    "path to function exit (exception edges included); "
                    "close it in a finally block",
                    line=node.lineno,
                )
