"""Observability checkers (OBS family).

The repo's timing story has exactly two sanctioned surfaces: the
:class:`~repro.util.timing.Timer`/ledger plumbing and the
:mod:`repro.obs` tracing backbone.  Raw wall-clock reads anywhere else
bypass both — the cost neither lands in a ledger category nor appears in
a trace, so it silently falls out of the §III-D accounting and, worse,
can leak nondeterministic wall time into virtual-time code paths.

The quantile story has exactly one sanctioned surface for unbounded
request populations: :class:`~repro.obs.sketch.QuantileSketch` (OBS003).
Retaining every sample so ``np.percentile`` can run later costs
O(requests) memory on a stream that never ends and produces a state that
cannot be merged across replicas; the sketch answers the same quantile
queries in O(log range) memory with a guaranteed relative-error bound.
Exactness is still the point in tests, benchmarks and the sketch module
itself — those paths are exempt or baseline-justified.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["ObservabilityChecker"]

OBS001 = Rule(
    "OBS001",
    "no-raw-wall-clock",
    "Raw time.perf_counter()/time.time() call outside the timing plumbing",
    "Unledgered clock reads escape the §III-D accounting and smuggle wall "
    "time into deterministic code; go through repro.util.timing or repro.obs.",
)

OBS002 = Rule(
    "OBS002",
    "no-ambient-datetime",
    "datetime.now()/utcnow()/today() call outside the timing plumbing",
    "Ambient date reads make runs irreproducible (a replayed trace or bench "
    "stamped 'now' diverges bitwise); pass timestamps in explicitly or stamp "
    "at the CLI boundary.",
)

OBS003 = Rule(
    "OBS003",
    "no-raw-quantile-retention",
    "Unbounded sample retention or numpy percentile over a request population",
    "Full-sample quantiles cost O(requests) memory on an unbounded stream and "
    "cannot merge across replicas; feed a repro.obs.sketch.QuantileSketch "
    "instead (exact populations belong in tests/certification passes).",
)

OBS004 = Rule(
    "OBS004",
    "metric-name-grammar",
    "Metric or label-key literal violating the dot-namespaced lowercase grammar",
    "Registry metric names are a greppable public API: only dot-namespaced "
    "lowercase identifiers ([a-z0-9_.]) are accepted, and label keys follow "
    "the same grammar.  A nonconforming literal raises at registry time; "
    "catch it at lint time instead (deliberate negative tests belong in the "
    "baseline).",
)

#: ``datetime``-module class methods OBS002 flags (on ``datetime.datetime``
#: and ``datetime.date``).  Constructors and parsing are fine — they are
#: pure functions of their arguments.
_DATETIME_READS = frozenset({"now", "utcnow", "today"})

#: numpy quantile-family functions OBS003 flags.  Each one requires the
#: full sample population to be materialized at query time.
_QUANTILE_FNS = frozenset(
    {"percentile", "quantile", "nanpercentile", "nanquantile"}
)

#: Registry factory methods whose first argument is a metric name.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "sketch"})

#: The registry's metric-name / label-value grammars, kept in lockstep
#: with ``repro.obs.metrics.validate_metric_name`` / ``canonical_labels``
#: (duplicated here so the linter has no runtime dependency on the
#: package it lints).
_METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+)*$")
_METRIC_LABEL_VALUE_RE = re.compile(r"^[a-z0-9_.:\-]+$")

#: Clock-reading functions in the stdlib ``time`` module that OBS001
#: flags.  Sleeping/formatting helpers (sleep, strftime, ...) are fine.
_CLOCK_READS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)


def _dotted_name(node: ast.AST) -> str | None:
    """Return the dotted source form of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_checker
class ObservabilityChecker(BaseChecker):
    """Flags wall-clock reads that bypass the timing/obs plumbing."""

    rules = (OBS001, OBS002, OBS003, OBS004)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._time_aliases: set[str] = set()
        # local alias -> time-module function it names
        self._clock_aliases: dict[str, str] = {}
        self._datetime_mod_aliases: set[str] = set()
        # local alias -> datetime class ("datetime" or "date") it names
        self._datetime_cls_aliases: dict[str, str] = {}
        self._numpy_aliases: set[str] = set()
        # local alias -> numpy quantile function it names
        self._quantile_aliases: dict[str, str] = {}
        self._observe_depth = 0
        self._exempt = context.config.is_timing_module(context.path)
        self._quantile_exempt = context.config.is_quantile_module(context.path)

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
            elif alias.name == "datetime":
                self._datetime_mod_aliases.add(alias.asname or "datetime")
            elif alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_READS:
                    self._clock_aliases[alias.asname or alias.name] = alias.name
        if node.level == 0 and node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_cls_aliases[alias.asname or alias.name] = (
                        alias.name
                    )
        if node.level == 0 and node.module == "numpy":
            for alias in node.names:
                if alias.name in _QUANTILE_FNS:
                    self._quantile_aliases[alias.asname or alias.name] = (
                        alias.name
                    )
        self.generic_visit(node)

    # -- functions ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        # Track whether we are inside an ``observe`` method: that is a
        # per-request ingest hook, so any ``.append(...)`` there retains
        # state proportional to the request count.
        is_observe = getattr(node, "name", None) == "observe"
        if is_observe:
            self._observe_depth += 1
        self.generic_visit(node)
        if is_observe:
            self._observe_depth -= 1

    # -- calls --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if not self._exempt and dotted is not None:
            fn = self._clock_read_name(dotted)
            if fn is not None:
                self.report(
                    node,
                    "OBS001",
                    f"raw wall-clock read time.{fn}(); use "
                    "repro.util.timing (Timer/ledger) or a "
                    "repro.obs.trace span so the cost is accounted",
                )
            read = self._datetime_read_name(dotted)
            if read is not None:
                self.report(
                    node,
                    "OBS002",
                    f"ambient date read {read}(); pass the timestamp in "
                    "explicitly (argument or trace meta) so replays stay "
                    "bitwise reproducible",
                )
        if not self._quantile_exempt:
            if dotted is not None:
                qfn = self._quantile_call_name(dotted)
                if qfn is not None:
                    self.report(
                        node,
                        "OBS003",
                        f"raw numpy.{qfn}() requires the full sample "
                        "population; use repro.obs.sketch.QuantileSketch "
                        "(or exact_quantile in tests/certification code)",
                    )
            if (
                self._observe_depth
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                self.report(
                    node,
                    "OBS003",
                    "sample-list append inside observe(): unbounded "
                    "per-request retention; feed a "
                    "repro.obs.sketch.QuantileSketch instead",
                )
        self._check_metric_name_grammar(node)
        self.generic_visit(node)

    def _check_metric_name_grammar(self, node: ast.Call) -> None:
        """OBS004: literal metric names / label keys must fit the grammar.

        Only string *literals* are checked — a name built at runtime
        (f-string, variable) is the registry's job to validate; the
        linter's job is to catch the misspelled constant before it
        ships.
        """
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
            and node.args
        ):
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if not _METRIC_NAME_RE.match(first.value):
                self.report(
                    node,
                    "OBS004",
                    f"metric name {first.value!r} violates the registry "
                    "grammar (dot-namespaced lowercase [a-z0-9_.] "
                    "identifiers)",
                )
        for kw in node.keywords:
            if kw.arg != "labels" or not isinstance(kw.value, ast.Dict):
                continue
            for key, value in zip(kw.value.keys, kw.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and not _METRIC_NAME_RE.match(key.value)
                ):
                    self.report(
                        node,
                        "OBS004",
                        f"label key {key.value!r} violates the registry "
                        "grammar (dot-namespaced lowercase [a-z0-9_.] "
                        "identifiers)",
                    )
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and not _METRIC_LABEL_VALUE_RE.match(value.value)
                ):
                    self.report(
                        node,
                        "OBS004",
                        f"label value {value.value!r} violates the registry "
                        "grammar ([a-z0-9_.:-] identifiers)",
                    )

    def _clock_read_name(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] in self._time_aliases
            and parts[1] in _CLOCK_READS
        ):
            return parts[1]
        if len(parts) == 1 and parts[0] in self._clock_aliases:
            return self._clock_aliases[parts[0]]
        return None

    def _quantile_call_name(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] in self._numpy_aliases
            and parts[1] in _QUANTILE_FNS
        ):
            return parts[1]
        if len(parts) == 1 and parts[0] in self._quantile_aliases:
            return self._quantile_aliases[parts[0]]
        return None

    def _datetime_read_name(self, dotted: str) -> str | None:
        """The canonical ``datetime.<cls>.<method>`` form of an ambient
        date read, or None if ``dotted`` is not one."""
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in self._datetime_mod_aliases
            and parts[1] in ("datetime", "date")
            and parts[2] in _DATETIME_READS
        ):
            return f"datetime.{parts[1]}.{parts[2]}"
        if (
            len(parts) == 2
            and parts[0] in self._datetime_cls_aliases
            and parts[1] in _DATETIME_READS
        ):
            cls = self._datetime_cls_aliases[parts[0]]
            return f"datetime.{cls}.{parts[1]}"
        return None
