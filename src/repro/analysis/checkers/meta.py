"""Meta rules about the analysis machinery itself (ANA family).

ANA001 guards the suppression surface: a ``# repro: noqa[RULE]``
directive naming a rule id that does not exist silently suppresses
nothing — usually a typo (``DET01``), a renamed rule, or a lowercase
id that degrades the directive to a suppress-everything bare ``noqa``.
ANA001 findings are themselves exempt from noqa suppression (you cannot
silence the checker that validates silencing).
"""

from __future__ import annotations

from repro.analysis.engine import BaseChecker, register_checker
from repro.analysis.findings import SEVERITY_WARNING, Rule

__all__ = ["NoqaChecker"]

ANA001 = Rule(
    "ANA001",
    "unknown-noqa-rule",
    "noqa directive names a rule id the registry does not know",
    "A misspelled rule id suppresses nothing (or, malformed, suppresses "
    "everything); directives must name real rules so suppressions stay "
    "auditable.",
    severity=SEVERITY_WARNING,
)


@register_checker
class NoqaChecker(BaseChecker):
    """Validates every noqa directive against the rule registry."""

    rules = (ANA001,)

    def run(self):
        # Imported here: the registry is only complete once every
        # checker module has loaded.
        from repro.analysis.engine import _NOQA_RE, _comment_lines, all_rules

        known = set(all_rules())
        for lineno, line in _comment_lines(self.context.source):
            m = _NOQA_RE.search(line)
            if not m:
                continue
            rules_text = m.group("rules")
            if rules_text is None:
                # A bare `noqa` is legal (suppress-all) — but if it is
                # immediately followed by a bracket the rule list failed
                # to parse (lowercase ids, stray chars) and the directive
                # silently widened to suppress-everything.
                if line[m.end() :].lstrip().startswith("["):
                    self._warn(
                        lineno,
                        "malformed noqa rule list (ids must be uppercase "
                        "alphanumeric); directive degrades to "
                        "suppress-all",
                    )
                continue
            seen: set[str] = set()
            for token in rules_text.split(","):
                token = token.strip()
                if not token:
                    continue
                if token in seen:
                    self._warn(lineno, f"duplicate rule id `{token}` in noqa list")
                    continue
                seen.add(token)
                if token not in known:
                    self._warn(
                        lineno,
                        f"unknown rule id `{token}` in noqa directive "
                        "(see --list-rules)",
                    )
        return self.findings

    def _warn(self, lineno: int, message: str) -> None:
        if not self.context.config.rule_enabled_for("ANA001", self.context.path):
            return
        from repro.analysis.findings import Finding

        self.findings.append(
            Finding(
                path=self.context.path,
                line=lineno,
                col=0,
                rule_id="ANA001",
                message=message,
            )
        )
