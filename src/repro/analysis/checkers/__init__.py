"""Built-in checker families.

Importing this package registers every checker with the engine's
registry (each module applies ``@register_checker`` at import time).
"""

from repro.analysis.checkers.contracts import ContractsChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.numerics import NumericsChecker
from repro.analysis.checkers.obs import ObservabilityChecker
from repro.analysis.checkers.perf import PerfChecker
from repro.analysis.checkers.purity import PurityChecker

__all__ = [
    "ContractsChecker",
    "DeterminismChecker",
    "NumericsChecker",
    "ObservabilityChecker",
    "PerfChecker",
    "PurityChecker",
]
