"""Built-in checker families.

Importing this package registers every checker with the engine's
registry (each module applies ``@register_checker`` /
``@register_project_checker`` at import time).
"""

from repro.analysis.checkers.concurrency import LoopCaptureChecker, SharedStateChecker
from repro.analysis.checkers.contracts import ContractsChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.flowrules import FlowChecker
from repro.analysis.checkers.meta import NoqaChecker
from repro.analysis.checkers.numerics import NumericsChecker
from repro.analysis.checkers.obs import ObservabilityChecker
from repro.analysis.checkers.perf import PerfChecker
from repro.analysis.checkers.purity import PurityChecker

__all__ = [
    "ContractsChecker",
    "DeterminismChecker",
    "FlowChecker",
    "LoopCaptureChecker",
    "NoqaChecker",
    "NumericsChecker",
    "ObservabilityChecker",
    "PerfChecker",
    "PurityChecker",
    "SharedStateChecker",
]
