"""Shared-state and closure-capture rules (CONC family).

The parallel layer (``repro.parallel``) and the serving DES
(``repro.serve``) both invoke user callables from dispatcher/worker
machinery: ``pool.submit(fn, ...)``, ``server.schedule(t, callback)``.
Those callables run interleaved with other events, so:

- **CONC001** (project phase) — a function reachable from a
  worker-invoked entry point mutates module-level or class-attribute
  state.  Under any parallel or replayed-DES execution that shared
  mutation is an ordering hazard: results depend on dispatch order,
  which is exactly what the determinism ledger cannot tolerate.
  Instance state (``self.*``) is exempt — the DES event loop serializes
  access to the owning object.
- **CONC002** (per-file) — a ``lambda`` or nested ``def`` created
  inside a loop captures the loop variable and is handed to a
  worker-submit call.  Python closures capture by reference, so every
  worker sees the *last* loop value; bind it as a default
  (``lambda x=x: ...``) or use ``functools.partial``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    BaseChecker,
    BaseProjectChecker,
    register_checker,
    register_project_checker,
)
from repro.analysis.findings import Rule

__all__ = ["SharedStateChecker", "LoopCaptureChecker"]

CONC001 = Rule(
    "CONC001",
    "shared-state-mutation-from-worker",
    "Module-level or class-attribute state mutated from a worker-invoked function",
    "Shared mutable state touched from dispatcher/DES-invoked code makes "
    "results depend on dispatch order; replay determinism requires all "
    "worker-visible state to be instance-owned or immutable.",
)
CONC002 = Rule(
    "CONC002",
    "loop-var-captured-by-worker-closure",
    "Closure created in a loop captures the loop variable and is handed to a worker",
    "Python closures capture by reference — every deferred invocation "
    "sees the final loop value; bind the value as a default argument or "
    "use functools.partial.",
)

#: Attribute names of calls that hand a callable to worker machinery.
WORKER_SUBMIT_ATTRS = frozenset(
    {"submit", "schedule", "apply_async", "map_async", "defer", "spawn"}
)

#: Method names that mutate a container in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
        "sort",
    }
)


def _is_submit_call(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in WORKER_SUBMIT_ATTRS
    )


def _callable_args(call: ast.Call) -> list[ast.expr]:
    """Arguments of a submit-like call that may be callables."""
    return [a for a in call.args] + [kw.value for kw in call.keywords]


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound inside ``func`` (params + any Store), non-recursive enough."""
    a = func.args
    names = {p.arg for p in a.posonlyargs + a.args + a.kwonlyargs}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    for sub in ast.walk(func):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if sub is not func:
                names.add(sub.name)
    return names


@register_project_checker
class SharedStateChecker(BaseProjectChecker):
    """CONC001: shared-state mutation reachable from worker entry points."""

    rules = (CONC001,)

    def run(self):
        index = self.project.index
        graph = self.project.graph
        seeds = self._worker_seeds()
        for seed in sorted(seeds):
            reached = graph.reachable_from({seed})
            for qualname in sorted(reached):
                info = index.functions.get(qualname)
                if info is None:
                    continue
                self._check_mutations(info, seed)
        return self._dedup(self.findings)

    @staticmethod
    def _dedup(findings):
        # The same function may be reachable from several seeds; keep the
        # first (lexicographically smallest seed names it).
        seen = set()
        out = []
        for f in findings:
            key = (f.path, f.line, f.rule_id)
            if key not in seen:
                seen.add(key)
                out.append(f)
        return out

    def _worker_seeds(self) -> set[str]:
        index = self.project.index
        graph = self.project.graph
        seeds: set[str] = set()
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            mod = index.modules[info.module]
            for sub in ast.walk(info.node):
                if not (isinstance(sub, ast.Call) and _is_submit_call(sub)):
                    continue
                for arg in _callable_args(sub):
                    ref = graph.resolve_callable_ref(arg, info, mod)
                    if ref is not None:
                        seeds.add(ref)
        return seeds

    def _check_mutations(self, info, seed: str) -> None:
        mod = self.project.index.modules[info.module]
        local = _local_names(info.node)
        for sub in ast.walk(info.node):
            target_desc = None
            lineno = getattr(sub, "lineno", 1)
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    target_desc = target_desc or self._mutated_shared(
                        target, mod, local
                    )
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in _MUTATOR_METHODS:
                    base = sub.func.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in mod.module_vars
                        and base.id not in local
                    ):
                        target_desc = f"module-level `{base.id}`"
            if target_desc:
                self.report(
                    info.path,
                    "CONC001",
                    f"{target_desc} is mutated here, but this function is "
                    f"reachable from worker entry `{seed}`; shared mutable "
                    "state under dispatch is an ordering hazard — move it "
                    "onto the owning instance or pass it explicitly",
                    line=lineno,
                )

    def _mutated_shared(self, target: ast.expr, mod, local: set[str]) -> str | None:
        if isinstance(target, ast.Name):
            if target.id in mod.module_vars and target.id not in local:
                return f"module-level `{target.id}`"
            return None
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            name = target.value.id
            if name in mod.module_vars and name not in local:
                return f"module-level `{name}`"
            return None
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            base = target.value.id
            if base in ("self",):
                return None  # instance state: serialized by the event loop
            if base == "cls" or self.project.index.imported_class(mod, base):
                return f"class attribute `{base}.{target.attr}`"
        return None


@register_checker
class LoopCaptureChecker(BaseChecker):
    """CONC002: loop-variable capture in worker-bound closures."""

    rules = (CONC002,)

    def __init__(self, context):
        super().__init__(context)
        self._loop_vars: list[set[str]] = []
        # name -> loop vars captured, for `def`s nested inside a loop.
        self._loop_defs: dict[str, set[str]] = {}

    def _loop_targets(self, node: ast.For | ast.AsyncFor) -> set[str]:
        return {
            sub.id
            for sub in ast.walk(node.target)
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store)
        }

    def _visit_loop(self, node) -> None:
        self._loop_vars.append(self._loop_targets(node))
        self.generic_visit(node)
        self._loop_vars.pop()

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._loop_vars:
            enclosing = set().union(*self._loop_vars)
            captured = _free_loop_vars(node, enclosing)
            if captured:
                self._loop_defs[node.name] = captured
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_vars and _is_submit_call(node):
            enclosing = set().union(*self._loop_vars)
            for arg in _callable_args(node):
                captured = self._captured_loop_vars(arg, enclosing)
                if captured:
                    names = ", ".join(f"`{n}`" for n in sorted(captured))
                    self.report(
                        node,
                        "CONC002",
                        f"closure passed to worker captures loop variable "
                        f"{names} by reference — every deferred call sees "
                        "the last loop value; bind it as a default "
                        "argument instead",
                    )
        self.generic_visit(node)

    def _captured_loop_vars(self, arg: ast.expr, loop_vars: set[str]) -> set[str]:
        if isinstance(arg, ast.Lambda):
            return _free_loop_vars(arg, loop_vars)
        if isinstance(arg, ast.Name) and arg.id in self._loop_defs:
            return self._loop_defs[arg.id] & loop_vars
        return set()


def _free_loop_vars(
    fn: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef, loop_vars: set[str]
) -> set[str]:
    """Loop variables ``fn`` references without binding them itself."""
    a = fn.args
    bound = {p.arg for p in a.posonlyargs + a.args + a.kwonlyargs}
    if a.vararg:
        bound.add(a.vararg.arg)
    if a.kwarg:
        bound.add(a.kwarg.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    free: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Store):
                    bound.add(sub.id)
                elif isinstance(sub.ctx, ast.Load):
                    free.add(sub.id)
    return (free - bound) & loop_vars
