"""Numerical-safety checkers (NUM family).

Rules that keep numeric failures loud and localized: no swallowed
exceptions around kernels, no exact equality against float literals,
no mutable default arguments, no process-global ``np.seterr`` state,
and no division by a bare reduction (a sum/mean/norm that can be zero)
without an epsilon guard or an ``np.errstate`` context.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["NumericsChecker"]

NUM001 = Rule(
    "NUM001",
    "no-blanket-except",
    "bare `except:` / `except Exception:` without re-raise",
    "Swallowing errors hides NaNs and shape bugs; catch the narrowest type.",
)
NUM002 = Rule(
    "NUM002",
    "no-float-literal-equality",
    "`==`/`!=` against a non-integral float literal",
    "Round-off makes exact float equality order-dependent; compare with a tolerance.",
)
NUM003 = Rule(
    "NUM003",
    "no-mutable-default",
    "mutable default argument (list/dict/set/ndarray)",
    "Defaults are evaluated once; mutations leak across calls.",
)
NUM004 = Rule(
    "NUM004",
    "no-global-seterr",
    "np.seterr() mutates process-global error state",
    "Use the scoped `with np.errstate(...)` context manager instead.",
)
NUM005 = Rule(
    "NUM005",
    "no-unguarded-reduction-division",
    "division by a bare reduction (sum/mean/norm/len) that can be zero",
    "Guard with an epsilon (np.maximum(x, eps) / x + eps) or an np.errstate block.",
)

_REDUCTIONS = frozenset(
    {"sum", "mean", "std", "var", "norm", "count_nonzero", "len", "trace", "prod"}
)
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "array", "zeros", "ones", "empty", "full"}
)
_BLANKET_TYPES = frozenset({"Exception", "BaseException"})


def _call_name(node: ast.AST) -> str:
    """Return the terminal callee name of a Call node, or ''."""
    if not isinstance(node, ast.Call):
        return ""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register_checker
class NumericsChecker(BaseChecker):
    """Flags constructs that hide or destabilize numerical errors."""

    rules = (NUM001, NUM002, NUM003, NUM004, NUM005)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._errstate_depth = 0

    # -- NUM001 -------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        blanket = node.type is None or (
            isinstance(node.type, ast.Name) and node.type.id in _BLANKET_TYPES
        )
        reraises = any(
            isinstance(sub, ast.Raise) and sub.exc is None for sub in ast.walk(node)
        )
        if blanket and not reraises:
            what = "bare except" if node.type is None else f"except {node.type.id}"
            self.report(
                node,
                "NUM001",
                f"{what} swallows errors; catch a specific exception or re-raise",
            )
        self.generic_visit(node)

    # -- NUM002 -------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[i], operands[i + 1]):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and side.value != int(side.value)
                ):
                    self.report(
                        node,
                        "NUM002",
                        f"exact comparison against float literal {side.value!r}; "
                        "use np.isclose or a tolerance",
                    )
        self.generic_visit(node)

    # -- NUM003 -------------------------------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                _call_name(default) in _MUTABLE_FACTORIES
            )
            if mutable:
                self.report(
                    default,
                    "NUM003",
                    f"mutable default `{ast.unparse(default)}` in `{node.name}`; "
                    "default to None and construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- NUM004 / NUM005 ----------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        errstate = any(
            _call_name(item.context_expr) == "errstate" for item in node.items
        )
        if errstate:
            self._errstate_depth += 1
            self.generic_visit(node)
            self._errstate_depth -= 1
        else:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "seterr"
        ):
            self.report(
                node,
                "NUM004",
                "np.seterr mutates global error state; use `with np.errstate(...)`",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Div)
            and _call_name(node.right) in _REDUCTIONS
            and self._errstate_depth == 0
        ):
            self.report(
                node,
                "NUM005",
                f"division by bare `{ast.unparse(node.right)}`; add an epsilon "
                "guard or wrap in `with np.errstate(...)`",
            )
        self.generic_visit(node)
