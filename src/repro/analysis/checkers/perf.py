"""Performance checkers (PERF family).

Rules that keep the hot numeric paths on the fast idioms this codebase
has standardized on.  The first rule targets ``np.add.at``: the buffered
ufunc-at dispatch is 10-100x slower than an equivalent
``np.bincount``-based scatter, and the repo provides
:func:`repro.util.scatter.scatter_add` precisely so call sites never
need the slow form.  The second targets per-row ``predict*`` calls
inside loops: every model in this repo exposes a batched prediction
path (one vectorized forward + UQ pass for a whole matrix — the
amortization the serving layer is built on), so looping a single-row
predict over loop elements forfeits 10-100x of throughput.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["PerfChecker"]

PERF001 = Rule(
    "PERF001",
    "no-ufunc-at-scatter",
    "`np.add.at` scatter-add on a hot path",
    "Buffered `ufunc.at` dispatch is 10-100x slower than a bincount "
    "scatter; use repro.util.scatter.scatter_add instead.",
)

PERF002 = Rule(
    "PERF002",
    "no-per-row-predict-in-loop",
    "per-row `predict*` call inside a loop",
    "Calling `.predict*` on each loop element pays the full forward-pass "
    "dispatch per row; stack the rows and make one batched call "
    "(predict / predict_stable / predict_with_uncertainty / gate_batch "
    "all accept matrices).",
)

# The scatter helper itself is the one place allowed to own the idiom
# (it uses np.bincount, but any future fallback lives there too).
_SCATTER_MODULE_SUFFIX = "repro/util/scatter.py"


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by a loop target (handles tuple/starred unpacking)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _references_any(node: ast.expr, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


@register_checker
class PerfChecker(BaseChecker):
    """Flags slow numeric idioms with fast in-repo replacements."""

    rules = (PERF001, PERF002)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._is_scatter_module = context.path.endswith(_SCATTER_MODULE_SUFFIX)
        # Stack of name-sets bound by the enclosing for-loops /
        # comprehension generators the visitor is currently inside.
        self._loop_targets: list[set[str]] = []

    # -- loop-scope tracking -------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._loop_targets.append(_target_names(node.target))
        for stmt in node.body:
            self.visit(stmt)
        self._loop_targets.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def _visit_comprehension(self, node) -> None:
        names: set[str] = set()
        for gen in node.generators:
            # The iterable of the first generator is evaluated outside the
            # comprehension scope; conditions and elements are inside.
            self.visit(gen.iter)
            names |= _target_names(gen.target)
        self._loop_targets.append(names)
        for gen in node.generators:
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._loop_targets.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- call sites -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        # Match `<anything>.add.at(...)` — covers np.add.at and aliased
        # numpy imports without needing import resolution.
        func = node.func
        if (
            not self._is_scatter_module
            and isinstance(func, ast.Attribute)
            and func.attr == "at"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "add"
        ):
            self.report(
                node,
                "PERF001",
                "np.add.at scatter is 10-100x slower than bincount; "
                "use repro.util.scatter.scatter_add",
            )
        self._check_per_row_predict(node)
        self.generic_visit(node)

    def _check_per_row_predict(self, node: ast.Call) -> None:
        # Heuristic: a `.predict*` attribute call where some argument
        # references a name bound by an enclosing loop — the signature of
        # feeding loop elements one at a time into a batched API.  Batched
        # calls hoisted out of the loop, and loops over *models* (ensemble
        # members calling `m.predict(X)` on a fixed matrix), don't match.
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr.startswith("predict")):
            return
        if not self._loop_targets:
            return
        active = set().union(*self._loop_targets)
        if not active:
            return
        args = list(node.args) + [kw.value for kw in node.keywords]
        if any(_references_any(arg, active) for arg in args):
            self.report(
                node,
                "PERF002",
                f"per-row .{func.attr} call on a loop element; stack the "
                "rows and make one batched call",
            )
