"""Performance checkers (PERF family).

Rules that keep the hot numeric paths on the fast idioms this codebase
has standardized on.  The first rule targets ``np.add.at``: the buffered
ufunc-at dispatch is 10-100x slower than an equivalent
``np.bincount``-based scatter, and the repo provides
:func:`repro.util.scatter.scatter_add` precisely so call sites never
need the slow form.  The second targets per-row ``predict*`` calls
inside loops: every model in this repo exposes a batched prediction
path (one vectorized forward + UQ pass for a whole matrix — the
amortization the serving layer is built on), so looping a single-row
predict over loop elements forfeits 10-100x of throughput.  The third
targets per-call array allocation on traced hot paths: a function that
opens a trace span is, by construction, one the profiler
(``python -m repro.obs profile``) measures, and a fresh
``np.zeros``/``np.empty`` on every call shows up there as allocator and
page-fault time — the repo's idiom is a grow-only scratch object
(:class:`repro.md.forces.PairScratch`) reused across calls.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["PerfChecker"]

PERF001 = Rule(
    "PERF001",
    "no-ufunc-at-scatter",
    "`np.add.at` scatter-add on a hot path",
    "Buffered `ufunc.at` dispatch is 10-100x slower than a bincount "
    "scatter; use repro.util.scatter.scatter_add instead.",
)

PERF002 = Rule(
    "PERF002",
    "no-per-row-predict-in-loop",
    "per-row `predict*` call inside a loop",
    "Calling `.predict*` on each loop element pays the full forward-pass "
    "dispatch per row; stack the rows and make one batched call "
    "(predict / predict_stable / predict_with_uncertainty / gate_batch "
    "all accept matrices).",
)

PERF003 = Rule(
    "PERF003",
    "no-per-call-alloc-in-hot-span",
    "per-call `np.zeros`/`np.empty` allocation in a span-opening function",
    "A function that opens a trace span is on the profiled hot path; a "
    "fresh allocation per call pays allocator + page-fault cost on every "
    "invocation.  Reuse a grow-only scratch buffer across calls "
    "(the repro.md.forces.PairScratch idiom) or hoist the allocation "
    "out of the hot function.",
)

#: Attribute names whose call marks the enclosing function as a traced
#: hot-path function (Tracer.span / Tracer.open_span and the `_span`
#: convenience wrappers several subsystems define over them).
_SPAN_OPENERS = frozenset({"span", "open_span", "_span"})

#: Attribute names that allocate a fresh array sized per call.
_PER_CALL_ALLOCS = frozenset({"zeros", "empty", "zeros_like", "empty_like"})

# The scatter helper itself is the one place allowed to own the idiom
# (it uses np.bincount, but any future fallback lives there too).
_SCATTER_MODULE_SUFFIX = "repro/util/scatter.py"


def _own_nodes(func: ast.AST):
    """Walk a function body without descending into nested functions,
    lambdas, or classes — a span opened by a closure does not put the
    enclosing function on the hot path."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _opens_span(func: ast.AST) -> bool:
    """True when the function's own body calls a span-opening method."""
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SPAN_OPENERS
        for node in _own_nodes(func)
    )


def _span_callee_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions/methods called directly by a span-opening
    function in this module.

    One level of module-local reach: the traced wrapper pattern
    (``compute`` opens the span, the untraced ``_compute`` does the
    work) would otherwise hide the actual hot body from PERF003.  The
    match is by bare name, which is the right precision for per-file
    analysis — a false positive lands in the baseline with a
    justification, a false negative hides allocator time the profiler
    will attribute to the span.
    """
    names: set[str] = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _opens_span(func):
            continue
        for node in _own_nodes(func):
            if isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Attribute):
                    names.add(callee.attr)
                elif isinstance(callee, ast.Name):
                    names.add(callee.id)
    return frozenset(names - _SPAN_OPENERS)


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by a loop target (handles tuple/starred unpacking)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _references_any(node: ast.expr, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


@register_checker
class PerfChecker(BaseChecker):
    """Flags slow numeric idioms with fast in-repo replacements."""

    rules = (PERF001, PERF002, PERF003)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._is_scatter_module = context.path.endswith(_SCATTER_MODULE_SUFFIX)
        # Stack of name-sets bound by the enclosing for-loops /
        # comprehension generators the visitor is currently inside.
        self._loop_targets: list[set[str]] = []
        # Stack of "does the enclosing function open a span" flags.
        self._hot_functions: list[bool] = []
        self._span_callees = _span_callee_names(context.tree)

    # -- function-scope tracking ---------------------------------------
    def _visit_function(self, node) -> None:
        self._hot_functions.append(
            _opens_span(node) or node.name in self._span_callees
        )
        self.generic_visit(node)
        self._hot_functions.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- loop-scope tracking -------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._loop_targets.append(_target_names(node.target))
        for stmt in node.body:
            self.visit(stmt)
        self._loop_targets.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def _visit_comprehension(self, node) -> None:
        names: set[str] = set()
        for gen in node.generators:
            # The iterable of the first generator is evaluated outside the
            # comprehension scope; conditions and elements are inside.
            self.visit(gen.iter)
            names |= _target_names(gen.target)
        self._loop_targets.append(names)
        for gen in node.generators:
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._loop_targets.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- call sites -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        # Match `<anything>.add.at(...)` — covers np.add.at and aliased
        # numpy imports without needing import resolution.
        func = node.func
        if (
            not self._is_scatter_module
            and isinstance(func, ast.Attribute)
            and func.attr == "at"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "add"
        ):
            self.report(
                node,
                "PERF001",
                "np.add.at scatter is 10-100x slower than bincount; "
                "use repro.util.scatter.scatter_add",
            )
        self._check_per_row_predict(node)
        self._check_hot_span_alloc(node)
        self.generic_visit(node)

    def _check_hot_span_alloc(self, node: ast.Call) -> None:
        # Match `<anything>.zeros/empty/zeros_like/empty_like(...)` when
        # the innermost enclosing function also opens a trace span —
        # i.e. is a function the profile view measures per call.
        if not (self._hot_functions and self._hot_functions[-1]):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _PER_CALL_ALLOCS:
            self.report(
                node,
                "PERF003",
                f"per-call np.{func.attr} allocation inside a span-opening "
                "(profiled hot-path) function; reuse a grow-only scratch "
                "buffer or hoist the allocation",
            )

    def _check_per_row_predict(self, node: ast.Call) -> None:
        # Heuristic: a `.predict*` attribute call where some argument
        # references a name bound by an enclosing loop — the signature of
        # feeding loop elements one at a time into a batched API.  Batched
        # calls hoisted out of the loop, and loops over *models* (ensemble
        # members calling `m.predict(X)` on a fixed matrix), don't match.
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr.startswith("predict")):
            return
        if not self._loop_targets:
            return
        active = set().union(*self._loop_targets)
        if not active:
            return
        args = list(node.args) + [kw.value for kw in node.keywords]
        if any(_references_any(arg, active) for arg in args):
            self.report(
                node,
                "PERF002",
                f"per-row .{func.attr} call on a loop element; stack the "
                "rows and make one batched call",
            )
