"""Performance checkers (PERF family).

Rules that keep the hot numeric paths on the fast idioms this codebase
has standardized on.  The first rule targets ``np.add.at``: the buffered
ufunc-at dispatch is 10-100x slower than an equivalent
``np.bincount``-based scatter, and the repo provides
:func:`repro.util.scatter.scatter_add` precisely so call sites never
need the slow form.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["PerfChecker"]

PERF001 = Rule(
    "PERF001",
    "no-ufunc-at-scatter",
    "`np.add.at` scatter-add on a hot path",
    "Buffered `ufunc.at` dispatch is 10-100x slower than a bincount "
    "scatter; use repro.util.scatter.scatter_add instead.",
)

# The scatter helper itself is the one place allowed to own the idiom
# (it uses np.bincount, but any future fallback lives there too).
_SCATTER_MODULE_SUFFIX = "repro/util/scatter.py"


@register_checker
class PerfChecker(BaseChecker):
    """Flags slow numeric idioms with fast in-repo replacements."""

    rules = (PERF001,)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._is_scatter_module = context.path.endswith(_SCATTER_MODULE_SUFFIX)

    def visit_Call(self, node: ast.Call) -> None:
        # Match `<anything>.add.at(...)` — covers np.add.at and aliased
        # numpy imports without needing import resolution.
        func = node.func
        if (
            not self._is_scatter_module
            and isinstance(func, ast.Attribute)
            and func.attr == "at"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "add"
        ):
            self.report(
                node,
                "PERF001",
                "np.add.at scatter is 10-100x slower than bincount; "
                "use repro.util.scatter.scatter_add",
            )
        self.generic_visit(node)
