"""Determinism checkers (DET family).

Every stochastic component in this codebase must be replayable through
the single seeded pipeline in ``repro.util.rng`` — "no run is wasted".
These rules flag code paths that smuggle in entropy the pipeline cannot
see: the legacy numpy global RNG, the stdlib ``random`` module, unseeded
generators, process-unstable ``hash()`` seeding, and public ``rng``
parameters consumed raw instead of via ``ensure_rng``/``spawn_rngs``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import BaseChecker, FileContext, register_checker
from repro.analysis.findings import Rule

__all__ = ["DeterminismChecker"]

DET001 = Rule(
    "DET001",
    "no-legacy-global-rng",
    "Call into the legacy numpy global RNG (np.random.seed/rand/...)",
    "Global-state draws cannot be replayed or spawned; use ensure_rng.",
)
DET002 = Rule(
    "DET002",
    "no-stdlib-random",
    "Import of the stdlib `random` module",
    "stdlib random has its own hidden global state outside the seeded pipeline.",
)
DET003 = Rule(
    "DET003",
    "no-unseeded-default-rng",
    "Unseeded np.random.default_rng() outside repro.util.rng",
    "Only ensure_rng(None) may mint nondeterministic generators, so call sites stay replayable.",
)
DET004 = Rule(
    "DET004",
    "no-builtin-hash-seeding",
    "Use of builtin hash(), which is salted per process",
    "PYTHONHASHSEED makes hash() differ across runs; use a stable digest (see rng._stable_hash).",
)
DET005 = Rule(
    "DET005",
    "rng-param-normalized",
    "Public rng-taking callable uses `rng` raw without ensure_rng/spawn_rngs",
    "Normalizing lets every public entry point accept int seeds, Generators, or None uniformly.",
)

# Constructors/types reachable via np.random.* that do NOT touch the
# legacy global state.
_MODERN_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)
_NORMALIZERS = frozenset({"ensure_rng", "spawn_rngs"})


def _dotted_name(node: ast.AST) -> str | None:
    """Return the dotted source form of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_checker
class DeterminismChecker(BaseChecker):
    """Flags entropy sources outside the seeded RNG pipeline."""

    rules = (DET001, DET002, DET003, DET004, DET005)

    def __init__(self, context: FileContext):
        super().__init__(context)
        self._numpy_aliases: set[str] = set()
        self._numpy_random_aliases: set[str] = set()
        self._default_rng_aliases: set[str] = set()
        self._class_stack: list[str] = []
        self._in_rng_module = context.config.is_rng_module(context.path)

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                self.report(node, "DET002", "import of stdlib `random`; use repro.util.rng")
            if alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
            if alias.name == "numpy.random":
                self._numpy_random_aliases.add(alias.asname or "numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root == "random":
                self.report(node, "DET002", "import from stdlib `random`; use repro.util.rng")
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        self._numpy_random_aliases.add(alias.asname or "random")
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        self._default_rng_aliases.add(alias.asname or "default_rng")
                    elif alias.name not in _MODERN_RANDOM_ATTRS:
                        self.report(
                            node,
                            "DET001",
                            f"import of legacy numpy.random.{alias.name}; "
                            "use a Generator from ensure_rng",
                        )
        self.generic_visit(node)

    # -- calls --------------------------------------------------------

    def _random_attr(self, dotted: str) -> str | None:
        """If ``dotted`` is ``<np>.random.<attr>`` or an alias, return attr."""
        parts = dotted.split(".")
        if len(parts) == 3 and parts[0] in self._numpy_aliases and parts[1] == "random":
            return parts[2]
        if len(parts) == 2 and parts[0] in self._numpy_random_aliases:
            return parts[1]
        return None

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            attr = self._random_attr(dotted)
            if attr is not None and attr not in _MODERN_RANDOM_ATTRS:
                self.report(
                    node,
                    "DET001",
                    f"legacy global-RNG call {dotted}(); use a seeded Generator "
                    "from repro.util.rng.ensure_rng",
                )
            is_default_rng = (
                attr == "default_rng" or dotted in self._default_rng_aliases
            )
            if (
                is_default_rng
                and not node.args
                and not node.keywords
                and not self._in_rng_module
            ):
                self.report(
                    node,
                    "DET003",
                    "unseeded default_rng(); thread an rng through "
                    "ensure_rng so the run stays replayable",
                )
            if dotted == "hash":
                self.report(
                    node,
                    "DET004",
                    "builtin hash() is salted per process; use a stable "
                    "digest such as repro.util.rng's FNV-1a helper",
                )
        self.generic_visit(node)

    # -- rng-parameter normalization (DET005) -------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _check_rng_normalized(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        public = not node.name.startswith("_") or node.name == "__init__"
        if not public or any(c.startswith("_") for c in self._class_stack):
            return
        params = node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        if not any(a.arg == "rng" for a in params):
            return
        uses_raw = False
        normalizes = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                dotted = _dotted_name(sub.func) or ""
                if dotted.split(".")[-1] in _NORMALIZERS:
                    normalizes = True
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "rng"
            ):
                uses_raw = True
        if uses_raw and not normalizes and not self._in_rng_module:
            self.report(
                node,
                "DET005",
                f"public callable `{node.name}` draws from `rng` without "
                "normalizing via ensure_rng/spawn_rngs",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_rng_normalized(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_rng_normalized(node)
        self.generic_visit(node)
