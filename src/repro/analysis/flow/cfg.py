"""Per-function control-flow graphs with exception edges.

One :class:`CFG` is built per ``def``: every simple statement, branch
test, loop head, and ``except`` clause becomes a node (numbered in
source order), and edges carry a kind — ``next`` for fallthrough,
``true``/``false`` for branch outcomes, ``back`` for loop back-edges,
and ``except`` for the paths an exception takes.  Exception edges are
what make the graph useful for the FLOW rules: a span opened before a
call and closed after it has a path to the function exit that skips the
close, unless the close lives in a ``finally`` suite.

Exception routing is conservative: any statement that contains a call,
attribute access, subscript, arithmetic, or an explicit ``raise``/
``assert`` is assumed able to raise, and gets an edge to the innermost
enclosing handler chain (or ``finally`` suite, or the function exit when
nothing encloses it).  ``finally`` suites are modeled once, entered from
every completion of the protected region, and re-raise outward after
running.  The approximation only ever *adds* paths, so analyses built on
top (reaching definitions, span-leak search) stay sound for the rules
enforced here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "EDGE_NEXT",
    "EDGE_TRUE",
    "EDGE_FALSE",
    "EDGE_BACK",
    "EDGE_EXCEPT",
    "CFGNode",
    "CFGEdge",
    "CFG",
    "build_cfg",
]

EDGE_NEXT = "next"
EDGE_TRUE = "true"
EDGE_FALSE = "false"
EDGE_BACK = "back"
EDGE_EXCEPT = "except"

#: Statement types that can never raise at runtime.
_SAFE_STMTS = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)

#: Expression node types whose evaluation may raise.
_RAISY_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.BoolOp,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Starred,
    ast.FormattedValue,
)


@dataclass(frozen=True)
class CFGNode:
    """One CFG node: a statement, branch test, handler, or entry/exit.

    ``label`` is one of ``entry``, ``exit``, ``stmt``, ``test``,
    ``loop``, or ``handler``; ``stmt`` is the underlying AST node
    (``None`` for entry/exit).
    """

    node_id: int
    label: str
    stmt: ast.AST | None = None

    @property
    def lineno(self) -> int:
        """Source line of the underlying statement (0 for entry/exit)."""
        return getattr(self.stmt, "lineno", 0)


@dataclass(frozen=True, order=True)
class CFGEdge:
    """A directed, kind-labeled edge between two CFG nodes."""

    src: int
    dst: int
    kind: str


class CFG:
    """Control-flow graph of one function.

    Nodes are numbered in source order with ``entry`` first and ``exit``
    last; edges are deduplicated and sorted, so :meth:`describe` output
    is byte-stable and usable as a golden-test surface.
    """

    def __init__(self, name: str, nodes: list[CFGNode], edges: list[CFGEdge]):
        self.name = name
        self.nodes = nodes
        self.edges = sorted(set(edges))
        self.entry_id = 0
        self.exit_id = nodes[-1].node_id
        self._succ: dict[int, list[CFGEdge]] = {}
        self._pred: dict[int, list[CFGEdge]] = {}
        for edge in self.edges:
            self._succ.setdefault(edge.src, []).append(edge)
            self._pred.setdefault(edge.dst, []).append(edge)

    def node(self, node_id: int) -> CFGNode:
        """Return the node with ``node_id``."""
        return self.nodes[node_id]

    def successors(self, node_id: int) -> list[CFGEdge]:
        """Outgoing edges of ``node_id``, sorted."""
        return self._succ.get(node_id, [])

    def predecessors(self, node_id: int) -> list[CFGEdge]:
        """Incoming edges of ``node_id``, sorted."""
        return self._pred.get(node_id, [])

    def describe(self) -> str:
        """Deterministic text dump: one line per node, then per edge."""
        lines = [f"cfg {self.name}:"]
        for node in self.nodes:
            loc = f" L{node.lineno}" if node.stmt is not None else ""
            kind = type(node.stmt).__name__ if node.stmt is not None else ""
            suffix = f" {kind}" if kind else ""
            lines.append(f"  n{node.node_id} {node.label}{suffix}{loc}")
        for edge in self.edges:
            lines.append(f"  n{edge.src} -> n{edge.dst} [{edge.kind}]")
        return "\n".join(lines)


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservatively decide whether executing ``stmt`` can raise."""
    if isinstance(stmt, _SAFE_STMTS):
        return False
    if isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
        return True
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return True
    for sub in ast.walk(stmt):
        if isinstance(sub, _RAISY_EXPRS):
            return True
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested definition's body does not execute here.
            return False
    return False


@dataclass
class _Loop:
    """Break/continue targets for one enclosing loop."""

    head_id: int
    breaks: list[tuple[int, str]] = field(default_factory=list)


class _Builder:
    """Single-use CFG builder; ``build_cfg`` is the public entry point."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: list[CFGNode] = []
        self.edges: list[CFGEdge] = []
        self.loops: list[_Loop] = []
        self.returns: list[int] = []
        # Stack of pending-raise lists; edges land on the innermost
        # enclosing handler chain once it is materialized.  The bottom
        # list routes to the function exit.
        self.raises: list[list[int]] = [[]]

    def _add(self, label: str, stmt: ast.AST | None) -> int:
        nid = len(self.nodes)
        self.nodes.append(CFGNode(nid, label, stmt))
        return nid

    def _wire(self, pendings: list[tuple[int, str]], dst: int) -> None:
        for src, kind in pendings:
            self.edges.append(CFGEdge(src, dst, kind))

    def _stmt_node(self, stmt: ast.stmt, label: str, incoming: list[tuple[int, str]]) -> int:
        nid = self._add(label, stmt)
        self._wire(incoming, nid)
        if _may_raise(stmt):
            self.raises[-1].append(nid)
        return nid

    # ------------------------------------------------------------------
    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        """Build and return the CFG of ``func``."""
        entry = self._add("entry", None)
        out = self._body(func.body, [(entry, EDGE_NEXT)])
        exit_id = self._add("exit", None)
        self._wire(out, exit_id)
        for nid in self.returns:
            self.edges.append(CFGEdge(nid, exit_id, EDGE_NEXT))
        for nid in self.raises[0]:
            self.edges.append(CFGEdge(nid, exit_id, EDGE_EXCEPT))
        return CFG(self.name, self.nodes, self.edges)

    def _body(
        self, stmts: list[ast.stmt], incoming: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        current = incoming
        for stmt in stmts:
            current = self._dispatch(stmt, current)
        return current

    def _dispatch(
        self, stmt: ast.stmt, incoming: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, incoming)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, incoming)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, incoming)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, incoming)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, incoming)
        if isinstance(stmt, ast.Return):
            nid = self._stmt_node(stmt, "stmt", incoming)
            self.returns.append(nid)
            return []
        if isinstance(stmt, ast.Raise):
            self._stmt_node(stmt, "stmt", incoming)
            return []
        if isinstance(stmt, ast.Break):
            nid = self._stmt_node(stmt, "stmt", incoming)
            if self.loops:
                self.loops[-1].breaks.append((nid, EDGE_NEXT))
            return []
        if isinstance(stmt, ast.Continue):
            nid = self._stmt_node(stmt, "stmt", incoming)
            if self.loops:
                self.edges.append(CFGEdge(nid, self.loops[-1].head_id, EDGE_BACK))
            return []
        nid = self._stmt_node(stmt, "stmt", incoming)
        return [(nid, EDGE_NEXT)]

    # -- compound statements -------------------------------------------
    def _if(self, stmt: ast.If, incoming: list[tuple[int, str]]) -> list[tuple[int, str]]:
        test = self._stmt_node(stmt, "test", incoming)
        out = self._body(stmt.body, [(test, EDGE_TRUE)])
        if stmt.orelse:
            out += self._body(stmt.orelse, [(test, EDGE_FALSE)])
        else:
            out.append((test, EDGE_FALSE))
        return out

    def _while(self, stmt: ast.While, incoming: list[tuple[int, str]]) -> list[tuple[int, str]]:
        test = self._stmt_node(stmt, "test", incoming)
        loop = _Loop(test)
        self.loops.append(loop)
        body_out = self._body(stmt.body, [(test, EDGE_TRUE)])
        self.loops.pop()
        for src, _ in body_out:
            self.edges.append(CFGEdge(src, test, EDGE_BACK))
        out = [(test, EDGE_FALSE)] + loop.breaks
        if stmt.orelse:
            out = self._body(stmt.orelse, [(test, EDGE_FALSE)]) + loop.breaks
        return out

    def _for(self, stmt: ast.For | ast.AsyncFor, incoming: list[tuple[int, str]]) -> list[tuple[int, str]]:
        head = self._stmt_node(stmt, "loop", incoming)
        loop = _Loop(head)
        self.loops.append(loop)
        body_out = self._body(stmt.body, [(head, EDGE_TRUE)])
        self.loops.pop()
        for src, _ in body_out:
            self.edges.append(CFGEdge(src, head, EDGE_BACK))
        out = [(head, EDGE_FALSE)] + loop.breaks
        if stmt.orelse:
            out = self._body(stmt.orelse, [(head, EDGE_FALSE)]) + loop.breaks
        return out

    def _with(self, stmt: ast.With | ast.AsyncWith, incoming: list[tuple[int, str]]) -> list[tuple[int, str]]:
        head = self._stmt_node(stmt, "stmt", incoming)
        return self._body(stmt.body, [(head, EDGE_NEXT)])

    def _try(self, stmt: ast.Try, incoming: list[tuple[int, str]]) -> list[tuple[int, str]]:
        # Raises inside the protected body land on the handler chain
        # (or the finally suite when there are no handlers).
        n_returns = len(self.returns)
        self.raises.append([])
        body_out = self._body(stmt.body, incoming)
        body_raises = self.raises.pop()

        if stmt.orelse:
            body_out = self._body(stmt.orelse, body_out)

        handler_outs: list[tuple[int, str]] = []
        unmatched: list[tuple[int, str]] = []
        if stmt.handlers:
            prev: tuple[int, str] | None = None
            for handler in stmt.handlers:
                hid = self._add("handler", handler)
                if prev is None:
                    for nid in body_raises:
                        self.edges.append(CFGEdge(nid, hid, EDGE_EXCEPT))
                else:
                    self.edges.append(CFGEdge(prev[0], hid, prev[1]))
                # Handler bodies raise outward, past this try.
                handler_outs += self._body(handler.body, [(hid, EDGE_TRUE)])
                prev = (hid, EDGE_FALSE)
            if prev is not None:
                unmatched = [prev]
        else:
            unmatched = [(nid, EDGE_EXCEPT) for nid in body_raises]

        if stmt.finalbody:
            fin_in = body_out + handler_outs + unmatched
            # A `return` inside the protected region runs the finally
            # suite first: reroute region returns into the finalbody,
            # then let the finally's own exits stand in for them (an
            # over-approximation — the path also continues to the next
            # statement — but every return-path correctly passes
            # through the finally nodes).
            region_returns = self.returns[n_returns:]
            del self.returns[n_returns:]
            fin_in = fin_in + [(nid, EDGE_NEXT) for nid in region_returns]
            fin_out = self._body(stmt.finalbody, fin_in)
            if region_returns:
                self.returns.extend(src for src, _ in fin_out)
            # An unmatched exception re-raises after the finally suite.
            for src, _ in fin_out:
                self.raises[-1].append(src)
            return fin_out
        for src, _kind in unmatched:
            self.raises[-1].append(src)
        return body_out + handler_outs


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str | None = None
) -> CFG:
    """Build the control-flow graph of one function definition.

    ``name`` overrides the display name (e.g. a project qualname for
    ``--dump-cfg``); defaults to the function's own name.
    """
    return _Builder(name or func.name).build(func)
