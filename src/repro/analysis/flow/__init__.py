"""Project-level dataflow machinery for the static-analysis subsystem.

The per-file checkers (:mod:`repro.analysis.checkers`) are syntactic:
they match call names at the use site and see nothing across statement
or function boundaries.  This package supplies the semantic layer the
FLOW/CONC rule families are built on:

- :mod:`repro.analysis.flow.cfg` — per-function control-flow graphs
  with explicit exception edges (``try``/``except``/``finally``,
  ``with``, loops, early returns);
- :mod:`repro.analysis.flow.dataflow` — reaching definitions and
  def-use chains computed by a worklist pass over the CFG;
- :mod:`repro.analysis.flow.project` — a two-pass project symbol table
  and call graph resolved across ``src/repro`` modules;
- :mod:`repro.analysis.flow.taint` — worklist-based interprocedural
  taint propagation from ambient-entropy sources to serialization
  sinks, using per-function summaries over the call graph.

Everything here is pure stdlib ``ast`` — no new dependencies — and
fully deterministic: node ids follow source order, worklists iterate in
sorted order, and every public ``describe()`` view is byte-stable.
"""

from repro.analysis.flow.cfg import CFG, CFGEdge, CFGNode, build_cfg
from repro.analysis.flow.dataflow import ReachingDefs, compute_reaching
from repro.analysis.flow.project import CallGraph, ProjectIndex
from repro.analysis.flow.taint import TaintAnalysis, TaintFlow

__all__ = [
    "CFG",
    "CFGEdge",
    "CFGNode",
    "build_cfg",
    "ReachingDefs",
    "compute_reaching",
    "CallGraph",
    "ProjectIndex",
    "TaintAnalysis",
    "TaintFlow",
]
