"""Worklist-based interprocedural entropy-taint propagation.

**Sources** are expressions that read ambient entropy the deterministic
replay pipeline cannot see: wall clocks and ambient dates (outside the
sanctioned timing modules), ``os.environ``, unsorted filesystem
listings (``os.listdir``/``glob``/``Path.iterdir``), set-iteration
order, and the legacy/unseeded numpy RNG surface.  **Sinks** are the
serialization surfaces whose bytes the repo commits or replays:
``json.dump(s)``, trace export (``write_trace``/``dumps_trace``),
ledger/tracer ``record`` calls, and file writes.

Within one function, taint flows along the reaching-definition chains
of :mod:`repro.analysis.flow.dataflow` — assignments, arithmetic,
f-strings, containers, and attribute access propagate; ``sorted``/
``min``/``max``/``sum`` strip the *order* labels (they are
order-insensitive reductions), and comparisons strip them too
(membership tests do not depend on iteration order).

Across functions, a worklist iterates per-function **summaries** to a
fixpoint over the call graph: which parameters flow to the return
value (and whether order labels were stripped on the way), which taint
the function returns intrinsically, and which parameters reach a sink
inside the callee.  A caller that passes a wall-clock value into a
helper that serializes it is reported *at the call site* with the
helper named — the laundering case the per-file DET/OBS rules cannot
see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.dataflow import ReachingDefs, _own_parts, compute_reaching
from repro.analysis.flow.project import CallGraph, FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "LABELS",
    "ORDER_LABELS",
    "TaintFlow",
    "FunctionSummary",
    "TaintAnalysis",
]

#: Human descriptions per taint label.
LABELS = {
    "wall-clock": "ambient wall-clock read",
    "datetime": "ambient date/time read",
    "env": "os.environ read",
    "fs-order": "unsorted filesystem listing",
    "set-order": "set-iteration order",
    "rng": "ambient (unseeded) RNG draw",
}

#: Labels that order-insensitive reductions (sorted/min/max/sum) remove.
ORDER_LABELS = frozenset({"fs-order", "set-order"})

_CLOCK_CALLS = frozenset(
    f"time.{n}"
    for n in (
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    )
)
_DATETIME_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
_FS_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_FS_METHODS = frozenset({"iterdir", "rglob"})
_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "frozenset"})
_MODERN_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Sink call patterns: canonical dotted names and bare attribute names.
_SINK_CANONICAL = {
    "json.dump": "json serialization",
    "json.dumps": "json serialization",
}
_SINK_ATTRS = {
    "write_trace": "trace export",
    "dumps_trace": "trace export",
    "record": "ledger/trace record",
    "write_text": "file write",
    "write_bytes": "file write",
    "write": "file write",
}
_SINK_NAMES = {
    "write_trace": "trace export",
    "dumps_trace": "trace export",
}


@dataclass(frozen=True, order=True)
class TaintFlow:
    """One tainted value arriving at a serialization sink."""

    path: str
    line: int
    col: int
    sink: str
    label: str
    source_path: str
    source_line: int
    via: str = ""

    def message(self) -> str:
        """Human-readable finding message for reporters."""
        src = f"{LABELS[self.label]} at {self.source_path}:{self.source_line}"
        via = f" (via `{self.via}`)" if self.via else ""
        return (
            f"value carrying {src}{via} reaches {self.sink} sink; "
            "entropy in committed/replayed artifacts breaks byte-stable replay"
        )


@dataclass
class FunctionSummary:
    """Interprocedural taint summary of one function."""

    #: Source tokens the return value carries intrinsically.
    returns: frozenset = frozenset()
    #: param index -> True when order labels are stripped en route.
    param_to_return: dict = field(default_factory=dict)
    #: param index -> set of (sink description, order_sanitized).
    param_to_sink: dict = field(default_factory=dict)

    def signature(self) -> tuple:
        """Hashable fingerprint used for fixpoint convergence checks."""
        return (
            self.returns,
            tuple(sorted(self.param_to_return.items())),
            tuple(
                (k, tuple(sorted(v))) for k, v in sorted(self.param_to_sink.items())
            ),
        )


def _src_token(label: str, path: str, line: int, via: str = "") -> tuple:
    return ("src", label, path, line, via)


def _strip_order(tokens: frozenset) -> frozenset:
    out = set()
    for t in tokens:
        if t[0] == "src" and t[1] in ORDER_LABELS:
            continue
        if t[0] == "param":
            out.add(("param-sorted", t[1]))
        else:
            out.add(t)
    return frozenset(out)


class TaintAnalysis:
    """Project-wide taint fixpoint over the call graph."""

    def __init__(self, index: ProjectIndex, graph: CallGraph, config):
        self.index = index
        self.graph = graph
        self.config = config
        self.summaries: dict[str, FunctionSummary] = {}
        self._cfgs: dict[str, CFG] = {}
        self._rds: dict[str, ReachingDefs] = {}
        self._flows: dict[str, set[TaintFlow]] = {}

    # -- caches ---------------------------------------------------------
    def _cfg(self, qualname: str) -> CFG:
        if qualname not in self._cfgs:
            self._cfgs[qualname] = build_cfg(self.index.functions[qualname].node)
        return self._cfgs[qualname]

    def _rd(self, qualname: str) -> ReachingDefs:
        if qualname not in self._rds:
            self._rds[qualname] = compute_reaching(
                self._cfg(qualname), self.index.functions[qualname].node
            )
        return self._rds[qualname]

    # -- public API -----------------------------------------------------
    def run(self) -> list[TaintFlow]:
        """Iterate summaries to a fixpoint; return sorted sink flows."""
        names = sorted(self.index.functions)
        for _round in range(8):
            changed = False
            for qualname in names:
                before = self.summaries.get(
                    qualname, FunctionSummary()
                ).signature()
                self._analyze(qualname)
                if self.summaries[qualname].signature() != before:
                    changed = True
            if not changed:
                break
        flows: set[TaintFlow] = set()
        for per_fn in self._flows.values():
            flows |= per_fn
        return sorted(flows)

    # -- per-function analysis ------------------------------------------
    def _analyze(self, qualname: str) -> None:
        info = self.index.functions[qualname]
        mod = self.index.modules[info.module]
        cfg = self._cfg(qualname)
        rd = self._rd(qualname)
        state = _FunctionState(self, info, mod, cfg, rd)
        state.solve()
        self.summaries[qualname] = state.summary()
        self._flows[qualname] = state.flows


class _FunctionState:
    """Intra-function taint propagation for one analysis round."""

    def __init__(self, owner: TaintAnalysis, info, mod, cfg, rd):
        self.owner = owner
        self.info: FunctionInfo = info
        self.mod: ModuleInfo = mod
        self.cfg = cfg
        self.rd = rd
        self.config = owner.config
        self.def_taint: dict = {}
        self.returns: frozenset = frozenset()
        self.sink_params: dict = {}
        self.flows: set[TaintFlow] = set()
        self.params = info.params
        self._timing_ok = owner.config.is_timing_module(info.path)
        self._rng_ok = owner.config.is_rng_module(info.path)
        self._instances = owner.graph._local_instances(info, mod)
        for d in rd.defs_by_node.get(cfg.entry_id, []):
            if d.var in self.params:
                self.def_taint[d] = frozenset(
                    {("param", self.params.index(d.var))}
                )

    def solve(self) -> None:
        """Iterate the per-definition taint map to a local fixpoint."""
        for _ in range(6):
            changed = False
            for node in self.cfg.nodes:
                for d in self.rd.defs_by_node.get(node.node_id, []):
                    if d.kind == "param":
                        continue
                    taint = self._def_value_taint(node, d)
                    old = self.def_taint.get(d, frozenset())
                    new = old | taint
                    if new != old:
                        self.def_taint[d] = new
                        changed = True
            if not changed:
                break
        # Final pass: sinks and returns, with the converged map.
        for node in self.cfg.nodes:
            self._scan_node(node)

    def summary(self) -> FunctionSummary:
        """Condense this function's state into its call summary."""
        returns = set()
        param_to_return: dict = {}
        for t in self.returns:
            if t[0] == "src":
                returns.add(t)
            elif t[0] == "param":
                param_to_return[t[1]] = False
            elif t[0] == "param-sorted":
                param_to_return.setdefault(t[1], True)
        return FunctionSummary(
            returns=frozenset(returns),
            param_to_return=param_to_return,
            param_to_sink={k: frozenset(v) for k, v in self.sink_params.items()},
        )

    # -- node scanning ---------------------------------------------------
    def _def_value_taint(self, node, d) -> frozenset:
        stmt = node.stmt
        if d.kind in ("assign", "ann"):
            return self._eval(stmt.value, node.node_id)
        if d.kind == "aug":
            return self._eval(stmt.value, node.node_id) | self._name_taint(
                d.var, node.node_id
            )
        if d.kind == "for":
            return self._eval(stmt.iter, node.node_id)
        if d.kind == "with":
            return frozenset().union(
                *(
                    self._eval(item.context_expr, node.node_id)
                    for item in stmt.items
                )
            )
        if d.kind == "walrus":
            taint = frozenset()
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.NamedExpr)
                    and isinstance(sub.target, ast.Name)
                    and sub.target.id == d.var
                ):
                    taint |= self._eval(sub.value, node.node_id)
            return taint
        return frozenset()

    def _scan_node(self, node) -> None:
        if node.stmt is None:
            return
        _defs, use_exprs = _own_parts(node)
        for expr in use_exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    self._check_sink(sub, node.node_id)
                elif isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value:
                    self.returns |= self._eval(sub.value, node.node_id)
        if isinstance(node.stmt, ast.Return) and node.stmt.value is not None:
            self.returns |= self._eval(node.stmt.value, node.node_id)

    # -- expression evaluation -------------------------------------------
    def _canonical(self, expr: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        root = self.mod.imports.get(expr.id, expr.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def _name_taint(self, var: str, node_id: int) -> frozenset:
        taint: frozenset = frozenset()
        for d in self.rd.reaching_in(node_id, var):
            taint |= self.def_taint.get(d, frozenset())
        return taint

    def _source_token(self, call: ast.Call, canonical: str | None):
        if canonical is None:
            return None
        path, line = self.info.path, getattr(call, "lineno", 0)
        if canonical in _CLOCK_CALLS and not self._timing_ok:
            return _src_token("wall-clock", path, line)
        if canonical in _DATETIME_CALLS and not self._timing_ok:
            return _src_token("datetime", path, line)
        if canonical == "os.getenv" or canonical.startswith("os.environ."):
            return _src_token("env", path, line)
        if canonical in _FS_CALLS:
            return _src_token("fs-order", path, line)
        if canonical.startswith("numpy.random."):
            attr = canonical.rsplit(".", 1)[-1]
            if attr not in _MODERN_RANDOM and not self._rng_ok:
                return _src_token("rng", path, line)
            if attr == "default_rng" and not call.args and not call.keywords and not self._rng_ok:
                return _src_token("rng", path, line)
        return None

    def _call_args(self, call: ast.Call, node_id: int) -> list[frozenset]:
        return [
            self._eval(a.value if isinstance(a, ast.Starred) else a, node_id)
            for a in call.args
        ] + [self._eval(kw.value, node_id) for kw in call.keywords]

    def _eval(self, expr: ast.expr, node_id: int) -> frozenset:
        if expr is None or isinstance(expr, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(expr, ast.Name):
            return self._name_taint(expr.id, node_id)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, node_id)
        if isinstance(expr, ast.Attribute):
            canonical = self._canonical(expr)
            if canonical is not None and canonical.startswith("os.environ"):
                return frozenset(
                    {
                        _src_token(
                            "env", self.info.path, getattr(expr, "lineno", 0)
                        )
                    }
                )
            return self._eval(expr.value, node_id)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            if isinstance(expr, ast.Set):
                inner = frozenset().union(
                    *(self._eval(e, node_id) for e in expr.elts)
                )
            else:
                inner = frozenset().union(
                    *(self._eval(g.iter, node_id) for g in expr.generators)
                )
            return inner | frozenset(
                {
                    _src_token(
                        "set-order", self.info.path, getattr(expr, "lineno", 0)
                    )
                }
            )
        if isinstance(expr, ast.Compare):
            joined = self._eval(expr.left, node_id).union(
                *(self._eval(c, node_id) for c in expr.comparators)
            )
            return frozenset(
                t for t in joined if not (t[0] == "src" and t[1] in ORDER_LABELS)
            )
        if isinstance(expr, ast.IfExp):
            return self._eval(expr.body, node_id) | self._eval(
                expr.orelse, node_id
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            taint = frozenset().union(
                *(self._eval(g.iter, node_id) for g in expr.generators)
            )
            if isinstance(expr, ast.DictComp):
                return taint | self._eval(expr.key, node_id) | self._eval(
                    expr.value, node_id
                )
            return taint | self._eval(expr.elt, node_id)
        # Generic recursive union over child expressions.
        taint = frozenset()
        for sub in ast.iter_child_nodes(expr):
            if isinstance(sub, ast.expr):
                taint |= self._eval(sub, node_id)
            elif isinstance(sub, ast.comprehension):
                taint |= self._eval(sub.iter, node_id)
        return taint

    def _eval_call(self, call: ast.Call, node_id: int) -> frozenset:
        canonical = self._canonical(call.func)
        source = self._source_token(call, canonical)
        if source is not None:
            return frozenset({source})
        if canonical in _SANITIZERS:
            taint = frozenset().union(*self._call_args(call, node_id)) or frozenset()
            return _strip_order(taint)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FS_METHODS
        ):
            return frozenset(
                {
                    _src_token(
                        "fs-order", self.info.path, getattr(call, "lineno", 0)
                    )
                }
            )
        callee = self.owner.graph.resolve_call(
            call, self.info, self.mod, self._instances
        )
        args = self._call_args(call, node_id)
        if callee is not None and callee in self.owner.summaries:
            summary = self.owner.summaries[callee]
            result = set()
            for t in summary.returns:
                result.add((t[0], t[1], t[2], t[3], t[4] or callee))
            for idx, sanitized in summary.param_to_return.items():
                if idx < len(args):
                    arg = _strip_order(args[idx]) if sanitized else args[idx]
                    result |= arg
            return frozenset(result)
        # Unknown callee: conservatively join the arguments (a float()
        # or np.mean() of a tainted value stays tainted) plus the
        # receiver object for method calls.
        taint = frozenset().union(*args) if args else frozenset()
        if isinstance(call.func, ast.Attribute):
            taint |= self._eval(call.func.value, node_id)
        return taint

    # -- sinks -----------------------------------------------------------
    def _sink_name(self, call: ast.Call) -> str | None:
        canonical = self._canonical(call.func)
        if canonical in _SINK_CANONICAL:
            return _SINK_CANONICAL[canonical]
        if isinstance(call.func, ast.Attribute) and call.func.attr in _SINK_ATTRS:
            return _SINK_ATTRS[call.func.attr]
        if isinstance(call.func, ast.Name):
            name = self.mod.imports.get(call.func.id, call.func.id)
            short = name.rsplit(".", 1)[-1]
            if short in _SINK_NAMES:
                return _SINK_NAMES[short]
        return None

    def _emit(self, call: ast.Call, sink: str, taint: frozenset, via: str) -> None:
        for t in sorted(taint):
            if t[0] != "src":
                continue
            self.flows.add(
                TaintFlow(
                    path=self.info.path,
                    line=getattr(call, "lineno", 0),
                    col=getattr(call, "col_offset", 0),
                    sink=sink,
                    label=t[1],
                    source_path=t[2],
                    source_line=t[3],
                    via=via or t[4],
                )
            )

    def _check_sink(self, call: ast.Call, node_id: int) -> None:
        args = self._call_args(call, node_id)
        sink = self._sink_name(call)
        if sink is not None:
            for arg in args:
                self._emit(call, sink, arg, via="")
                for t in arg:
                    if t[0] in ("param", "param-sorted"):
                        self.sink_params.setdefault(t[1], set()).add(
                            (sink, t[0] == "param-sorted")
                        )
        callee = self.owner.graph.resolve_call(
            call, self.info, self.mod, self._instances
        )
        if callee is not None and callee in self.owner.summaries:
            summary = self.owner.summaries[callee]
            for idx, sinks in sorted(summary.param_to_sink.items()):
                if idx >= len(args):
                    continue
                for sink_name, sanitized in sorted(sinks):
                    arg = _strip_order(args[idx]) if sanitized else args[idx]
                    self._emit(call, sink_name, arg, via=callee)
                    for t in arg:
                        if t[0] in ("param", "param-sorted"):
                            self.sink_params.setdefault(t[1], set()).add(
                                (sink_name, sanitized or t[0] == "param-sorted")
                            )
