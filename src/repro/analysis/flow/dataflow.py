"""Reaching definitions and def-use chains over a function CFG.

A :class:`Definition` is one binding of a local name at one CFG node
(an assignment, loop target, ``with`` alias, import, parameter, ...).
:func:`compute_reaching` runs the classic forward worklist algorithm —
``IN[n] = union OUT[p]``, ``OUT[n] = GEN[n] | (IN[n] - KILL[n])`` — over
the exception-edge-aware CFG, so a definition that is only consumed on
an error path (a ``finally`` suite reading state set before the
``try``) still counts as used.

The resulting :class:`ReachingDefs` exposes def-use chains and the raw
dead-definition list the FLOW dead-store rule filters; names captured
by nested functions or declared ``global``/``nonlocal`` are reported
separately so checkers can skip them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.cfg import CFG, CFGNode

__all__ = ["Definition", "ReachingDefs", "compute_reaching"]


@dataclass(frozen=True, order=True)
class Definition:
    """One binding of ``var`` at CFG node ``node_id``.

    ``kind`` records the binding construct: ``param``, ``assign``,
    ``aug``, ``ann``, ``for``, ``with``, ``import``, ``def``,
    ``handler``, or ``walrus``.  ``from_unpack`` marks tuple/starred
    unpacking targets, which dead-store rules conventionally skip.
    """

    var: str
    node_id: int
    kind: str = "assign"
    from_unpack: bool = False


def _target_names(target: ast.expr, kind: str, node_id: int) -> list[Definition]:
    """Definitions bound by an assignment/loop target expression."""
    if isinstance(target, ast.Name):
        return [Definition(target.id, node_id, kind)]
    defs: list[Definition] = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            defs.append(Definition(sub.id, node_id, kind, from_unpack=True))
    return defs


class _UseCollector(ast.NodeVisitor):
    """Collect Name loads in an expression, tracking closure captures.

    Names referenced inside nested ``lambda``/``def`` bodies are
    recorded both as uses (they keep outer definitions live) and in the
    ``captured`` set (so dead-store rules can skip those variables
    entirely — a closure may read them long after this function frame
    would have considered them dead).
    """

    def __init__(self) -> None:
        self.uses: set[str] = set()
        self.walrus: list[str] = []
        self.captured: set[str] = set()
        self._nested = 0

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.uses.add(node.id)
            if self._nested:
                self.captured.add(node.id)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        if not self._nested and isinstance(node.target, ast.Name):
            self.walrus.append(node.target.id)
        self.visit(node.value)

    def _enter_nested(self, node) -> None:
        self._nested += 1
        self.generic_visit(node)
        self._nested -= 1

    visit_Lambda = _enter_nested
    visit_FunctionDef = _enter_nested
    visit_AsyncFunctionDef = _enter_nested


def _own_parts(node: CFGNode) -> tuple[list[Definition], list[ast.expr]]:
    """The definitions and use-expressions *owned* by one CFG node.

    Compound statements (``if``/``while``/``for``/``with``/handlers)
    own only their test/iterator/context expressions — their bodies are
    separate CFG nodes — so this never double-counts.
    """
    stmt = node.stmt
    nid = node.node_id
    if stmt is None:
        return [], []
    if node.label == "test":  # ast.If / ast.While
        return [], [stmt.test]
    if node.label == "loop":  # ast.For / ast.AsyncFor
        return _target_names(stmt.target, "for", nid), [stmt.iter]
    if node.label == "handler":  # ast.ExceptHandler
        defs = [Definition(stmt.name, nid, "handler")] if stmt.name else []
        return defs, [stmt.type] if stmt.type else []
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        defs: list[Definition] = []
        uses: list[ast.expr] = []
        for item in stmt.items:
            uses.append(item.context_expr)
            if item.optional_vars is not None:
                defs += _target_names(item.optional_vars, "with", nid)
        return defs, uses
    if isinstance(stmt, ast.Assign):
        defs = []
        uses = [stmt.value]
        for target in stmt.targets:
            if isinstance(target, (ast.Name, ast.Tuple, ast.List, ast.Starred)):
                defs += _target_names(target, "assign", nid)
            else:
                # a[i] = v / a.x = v mutate, not rebind: the base is a use.
                uses.append(target)
        return defs, uses
    if isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            return (
                [Definition(stmt.target.id, nid, "aug")],
                [stmt.value, ast.Name(id=stmt.target.id, ctx=ast.Load())],
            )
        return [], [stmt.value, stmt.target]
    if isinstance(stmt, ast.AnnAssign):
        uses = [stmt.value] if stmt.value else []
        if stmt.value and isinstance(stmt.target, ast.Name):
            return [Definition(stmt.target.id, nid, "ann")], uses
        return [], uses + ([stmt.target] if not isinstance(stmt.target, ast.Name) else [])
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        defs = [
            Definition((alias.asname or alias.name).split(".")[0], nid, "import")
            for alias in stmt.names
            if alias.name != "*"
        ]
        return defs, []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        uses = list(stmt.decorator_list) + [
            d for d in stmt.args.defaults + stmt.args.kw_defaults if d is not None
        ]
        return [Definition(stmt.name, nid, "def")], uses
    if isinstance(stmt, ast.ClassDef):
        return [Definition(stmt.name, nid, "class")], list(stmt.bases) + list(
            stmt.decorator_list
        )
    # Everything else (Expr, Return, Raise, Assert, Delete, ...) only uses.
    uses = [sub for sub in ast.iter_child_nodes(stmt) if isinstance(sub, ast.expr)]
    return [], uses


class ReachingDefs:
    """Reaching-definition sets, def-use chains, and capture info."""

    def __init__(self, cfg: CFG, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.cfg = cfg
        self.params: list[str] = [
            a.arg
            for a in (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
        ]
        if func.args.vararg:
            self.params.append(func.args.vararg.arg)
        if func.args.kwarg:
            self.params.append(func.args.kwarg.arg)
        self.captured: set[str] = set()
        self.scoped_out: set[str] = set()
        self.defs_by_node: dict[int, list[Definition]] = {}
        self.uses_by_node: dict[int, set[str]] = {}
        self._collect(func)
        self.in_: dict[int, frozenset[Definition]] = {}
        self.out_: dict[int, frozenset[Definition]] = {}
        self._solve()

    # -- local syntax scan ---------------------------------------------
    def _collect(self, func) -> None:
        entry_defs = [Definition(p, self.cfg.entry_id, "param") for p in self.params]
        self.defs_by_node[self.cfg.entry_id] = entry_defs
        for node in self.cfg.nodes:
            if node.stmt is None:
                continue
            if isinstance(node.stmt, (ast.Global, ast.Nonlocal)):
                self.scoped_out.update(node.stmt.names)
            defs, use_exprs = _own_parts(node)
            collector = _UseCollector()
            for expr in use_exprs:
                collector.visit(expr)
            if isinstance(
                node.stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # The nested body is not part of this CFG, but names it
                # loads are closure captures: record them as uses (they
                # keep outer definitions live) and mark them captured.
                for sub in node.stmt.body:
                    for name in ast.walk(sub):
                        if isinstance(name, ast.Name) and isinstance(
                            name.ctx, ast.Load
                        ):
                            collector.uses.add(name.id)
                            collector.captured.add(name.id)
            defs = defs + [
                Definition(v, node.node_id, "walrus") for v in collector.walrus
            ]
            if defs:
                self.defs_by_node.setdefault(node.node_id, []).extend(defs)
            if collector.uses:
                self.uses_by_node[node.node_id] = collector.uses
            self.captured |= collector.captured

    # -- worklist -------------------------------------------------------
    def _solve(self) -> None:
        all_defs: dict[str, set[Definition]] = {}
        for defs in self.defs_by_node.values():
            for d in defs:
                all_defs.setdefault(d.var, set()).add(d)
        gen: dict[int, frozenset[Definition]] = {}
        kill: dict[int, frozenset[Definition]] = {}
        for node in self.cfg.nodes:
            defs = self.defs_by_node.get(node.node_id, [])
            gen[node.node_id] = frozenset(defs)
            killed: set[Definition] = set()
            for d in defs:
                killed |= all_defs[d.var] - {d}
            kill[node.node_id] = frozenset(killed)
        in_: dict[int, set[Definition]] = {n.node_id: set() for n in self.cfg.nodes}
        out: dict[int, set[Definition]] = {
            n.node_id: set(gen[n.node_id]) for n in self.cfg.nodes
        }
        work = [n.node_id for n in self.cfg.nodes]
        while work:
            nid = work.pop(0)
            new_in: set[Definition] = set()
            for edge in self.cfg.predecessors(nid):
                if edge.kind == "except":
                    # The raising statement may have failed before its
                    # own binding took effect, so its KILL must not
                    # apply along the exception edge; its GEN may-have
                    # happened, so it still joins (union semantics).
                    new_in |= gen[edge.src] | in_[edge.src]
                else:
                    new_in |= out[edge.src]
            new_out = gen[nid] | (new_in - kill[nid])
            changed = new_out != out[nid] or new_in != in_[nid]
            in_[nid] = new_in
            out[nid] = new_out
            if changed:
                for edge in self.cfg.successors(nid):
                    if edge.dst not in work:
                        work.append(edge.dst)
        self.in_ = {nid: frozenset(s) for nid, s in in_.items()}
        self.out_ = {nid: frozenset(s) for nid, s in out.items()}

    # -- queries --------------------------------------------------------
    def reaching_in(self, node_id: int, var: str) -> list[Definition]:
        """Definitions of ``var`` that reach the start of ``node_id``."""
        return sorted(d for d in self.in_[node_id] if d.var == var)

    def uses_of(self, definition: Definition) -> list[int]:
        """Node ids whose uses of the variable may observe ``definition``."""
        hits = []
        for nid, used in self.uses_by_node.items():
            if definition.var in used and definition in self.in_[nid]:
                hits.append(nid)
        return sorted(hits)

    def dead_definitions(self) -> list[Definition]:
        """Definitions no use can observe (raw; callers apply skip rules)."""
        dead = []
        for defs in self.defs_by_node.values():
            for d in defs:
                if d.var in self.captured or d.var in self.scoped_out:
                    continue
                if not self.uses_of(d):
                    dead.append(d)
        return sorted(dead)


def compute_reaching(
    cfg: CFG, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> ReachingDefs:
    """Run the reaching-definitions worklist for ``func`` over ``cfg``."""
    return ReachingDefs(cfg, func)
