"""Two-pass project symbol table and call graph.

Pass 1 walks every analyzed file and indexes its module name (derived
from the path, ``src/repro/md/bench.py`` → ``repro.md.bench``), its
import aliases, its top-level functions and classes (with methods), and
its module-level assignments.  Pass 2 resolves every call site inside
every function body against that table, producing a :class:`CallGraph`
whose edges connect fully-qualified function names.

Resolution is deliberately simple and deterministic:

- plain names resolve through local definitions, then import aliases;
- ``self.``/``cls.`` attribute calls resolve to methods of the
  enclosing class;
- attribute calls on a variable assigned from ``ClassName(...)`` in the
  same function resolve to that class's methods (one-step local type
  inference — enough for ``dispatcher = OnlineDispatcher(...);``
  ``dispatcher.submit(...)``);
- as a last resort an attribute call resolves to a method name that is
  defined by exactly **one** project class (unique-name matching);
  ambiguous names produce no edge rather than a wrong one.

The graph is an over-approximation in places and incomplete in others
(first-class function values are not tracked); the FLOW/CONC rules are
designed to stay useful under both errors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "module_name_for",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "CallGraph",
]


def module_name_for(path: str) -> str:
    """Dotted module name for a posix file path.

    Paths under a ``src/`` root drop the root (``src/repro/x.py`` →
    ``repro.x``); everything else converts the whole relative path, so
    test and benchmark files still get stable, unique names.
    """
    p = path[:-3] if path.endswith(".py") else path
    parts = [part for part in p.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One project function or method, keyed by its qualified name."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def params(self) -> list[str]:
        """Positional/keyword parameter names, ``self``/``cls`` included."""
        a = self.node.args
        return [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]

    @property
    def name(self) -> str:
        """The bare function name."""
        return self.node.name


@dataclass
class ClassInfo:
    """One project class with its method table."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module symbol information from pass 1."""

    name: str
    path: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)  # alias -> qualified
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # bare name
    classes: dict[str, ClassInfo] = field(default_factory=dict)  # bare name
    module_vars: set[str] = field(default_factory=set)  # top-level assignments


class ProjectIndex:
    """Symbol table over every analyzed file (pass 1)."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._method_name_index: dict[str, list[str]] = {}

    @classmethod
    def build(cls, trees: dict[str, ast.Module]) -> "ProjectIndex":
        """Index ``{path: parsed module}`` into a project symbol table."""
        index = cls()
        for path in sorted(trees):
            index._index_module(path, trees[path])
        for methods in index._method_name_index.values():
            methods.sort()
        return index

    # -- pass 1 ---------------------------------------------------------
    def _index_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_for(path)
        mod = ModuleInfo(name=name, path=path, tree=tree)
        self.modules[name] = mod
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(stmt, ast.ImportFrom):
                base = self._resolve_from(mod, stmt)
                for alias in stmt.names:
                    if alias.name != "*":
                        mod.imports[alias.asname or alias.name] = (
                            f"{base}.{alias.name}" if base else alias.name
                        )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(f"{name}.{stmt.name}", name, path, stmt)
                mod.functions[stmt.name] = info
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            mod.module_vars.add(sub.id)

    def _resolve_from(self, mod: ModuleInfo, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        parts = mod.name.split(".")
        # level 1 = current package: for a module `a.b.c`, that is `a.b`.
        base_parts = parts[: len(parts) - stmt.level]
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts)

    def _index_class(self, mod: ModuleInfo, stmt: ast.ClassDef) -> None:
        qual = f"{mod.name}.{stmt.name}"
        cls_info = ClassInfo(qual, mod.name, stmt)
        mod.classes[stmt.name] = cls_info
        self.classes[qual] = cls_info
        for sub in stmt.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    f"{qual}.{sub.name}", mod.name, mod.path, sub, stmt.name
                )
                cls_info.methods[sub.name] = info
                self.functions[info.qualname] = info
                self._method_name_index.setdefault(sub.name, []).append(
                    info.qualname
                )

    # -- resolution helpers ---------------------------------------------
    def resolve_name(self, mod: ModuleInfo, name: str) -> str | None:
        """Resolve a bare name in ``mod`` to a project function qualname."""
        if name in mod.functions:
            return mod.functions[name].qualname
        if name in mod.classes:
            init = mod.classes[name].methods.get("__init__")
            return init.qualname if init else mod.classes[name].qualname
        target = mod.imports.get(name)
        if target is None:
            return None
        if target in self.functions:
            return target
        if target in self.classes:
            init = self.classes[target].methods.get("__init__")
            return init.qualname if init else target
        return None

    def resolve_attr_on_class(self, class_qual: str, attr: str) -> str | None:
        """Resolve ``attr`` as a method of the class ``class_qual``."""
        cls_info = self.classes.get(class_qual)
        if cls_info and attr in cls_info.methods:
            return cls_info.methods[attr].qualname
        return None

    def resolve_unique_method(self, attr: str) -> str | None:
        """Resolve a method name defined by exactly one project class."""
        owners = self._method_name_index.get(attr, [])
        return owners[0] if len(owners) == 1 else None

    def imported_class(self, mod: ModuleInfo, name: str) -> str | None:
        """The class qualname a bare name refers to in ``mod``, if any."""
        if name in mod.classes:
            return mod.classes[name].qualname
        target = mod.imports.get(name)
        if target in self.classes:
            return target
        return None


@dataclass(frozen=True)
class _CallSite:
    """One resolved call edge with its source location."""

    caller: str
    callee: str
    lineno: int


class CallGraph:
    """Resolved call edges between project functions (pass 2)."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.edges: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}
        self.sites: list[_CallSite] = []

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        """Resolve every call site in every indexed function."""
        graph = cls(index)
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            mod = index.modules[info.module]
            for call, callee in graph._calls_in(info, mod):
                graph._add(qualname, callee, getattr(call, "lineno", 0))
        return graph

    def _add(self, caller: str, callee: str, lineno: int) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)
        self.sites.append(_CallSite(caller, callee, lineno))

    # -- resolution ------------------------------------------------------
    def _local_instances(self, info: FunctionInfo, mod: ModuleInfo) -> dict[str, str]:
        """Map local var -> class qualname for ``v = ClassName(...)`` defs."""
        instances: dict[str, str] = {}
        for sub in ast.walk(info.node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Name)
            ):
                qual = self.index.imported_class(mod, sub.value.func.id)
                if qual is not None:
                    instances[sub.targets[0].id] = qual
        return instances

    def _calls_in(self, info: FunctionInfo, mod: ModuleInfo):
        instances = self._local_instances(info, mod)
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.Call):
                continue
            callee = self.resolve_call(sub, info, mod, instances)
            if callee is not None:
                yield sub, callee

    def resolve_call(
        self,
        call: ast.Call,
        info: FunctionInfo,
        mod: ModuleInfo,
        instances: dict[str, str] | None = None,
    ) -> str | None:
        """Resolve one call node to a project function qualname, if possible."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.index.resolve_name(mod, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and info.class_name is not None:
                own = self.index.resolve_attr_on_class(
                    f"{mod.name}.{info.class_name}", attr
                )
                if own is not None:
                    return own
            if instances and base.id in instances:
                hit = self.index.resolve_attr_on_class(instances[base.id], attr)
                if hit is not None:
                    return hit
            # Module-alias call: mod_alias.func(...)
            target = mod.imports.get(base.id)
            if target is not None:
                qual = f"{target}.{attr}"
                if qual in self.index.functions:
                    return qual
                if qual in self.index.classes:
                    init = self.index.classes[qual].methods.get("__init__")
                    return init.qualname if init else qual
        # Attribute on self-attribute or unknown object: unique-name match.
        return self.index.resolve_unique_method(attr)

    def resolve_callable_ref(
        self, expr: ast.expr, info: FunctionInfo, mod: ModuleInfo
    ) -> str | None:
        """Resolve a *reference* to a function (not a call) to a qualname.

        Handles ``worker_fn`` (local/imported) and ``self._on_event``;
        used to seed worker-reachability for the CONC rules.
        """
        if isinstance(expr, ast.Name):
            return self.index.resolve_name(mod, expr.id)
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and info.class_name is not None
            ):
                return self.index.resolve_attr_on_class(
                    f"{mod.name}.{info.class_name}", expr.attr
                )
            return self.index.resolve_unique_method(expr.attr)
        return None

    # -- queries ---------------------------------------------------------
    def reachable_from(self, seeds: set[str]) -> set[str]:
        """Transitive closure of ``seeds`` over call edges (seeds included)."""
        seen = set(seeds)
        work = sorted(seeds)
        while work:
            current = work.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen

    def describe(self) -> str:
        """Deterministic text dump of the call graph, one edge per line."""
        lines = ["call graph:"]
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                lines.append(f"  {caller} -> {callee}")
        lines.append(
            f"{len(self.index.functions)} functions, "
            f"{sum(len(v) for v in self.edges.values())} edges"
        )
        return "\n".join(lines)
