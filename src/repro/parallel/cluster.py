"""Discrete-event cluster simulator.

Workers with heterogeneous speed factors execute tasks under a scheduler;
a virtual clock advances event by event.  This models the execution layer
that the paper's research issues 7–8 target: "runtime systems that are
capable of real-time performance tuning and adaptive execution for
workloads comprised of multiple heterogeneous tasks."
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "TaskSpec",
    "Worker",
    "ExecutionTrace",
    "OnlineDispatcher",
    "ClusterSimulator",
]


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work.

    Attributes
    ----------
    task_id:
        Unique identifier.
    work:
        Abstract work units; a worker with speed s takes work/s seconds.
    kind:
        Free-form label; the mixed MLaroundHPC workloads use
        ``"simulation"`` and ``"lookup"``.
    """

    task_id: int
    work: float
    kind: str = "simulation"

    def __post_init__(self) -> None:
        check_positive("work", self.work)


@dataclass(frozen=True)
class Worker:
    """A compute resource with a relative speed factor."""

    worker_id: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        check_positive("speed", self.speed)

    def duration(self, task: TaskSpec) -> float:
        return task.work / self.speed


@dataclass
class ExecutionTrace:
    """Outcome of one simulated schedule."""

    makespan: float
    worker_busy: np.ndarray            # total busy seconds per worker
    assignments: list[tuple[int, int, float, float]] = field(default_factory=list)
    #: (task_id, worker_id, start, end) per executed task

    @property
    def n_tasks(self) -> int:
        return len(self.assignments)

    def utilization(self) -> float:
        """Mean fraction of the makespan each worker spent busy."""
        if self.makespan == 0:
            return 1.0
        return float(np.mean(self.worker_busy / self.makespan))

    def imbalance(self) -> float:
        """max busy / mean busy — 1.0 is perfectly balanced."""
        mean = float(np.mean(self.worker_busy))
        if mean == 0:
            return 1.0
        return float(np.max(self.worker_busy) / mean)


class OnlineDispatcher:
    """Incremental next-free-worker dispatch over a worker pool.

    The stateful core of list scheduling, exposed so *online* clients — the
    serving layer's fallback pool, most importantly — can feed tasks one at
    a time as they materialize instead of handing over a complete queue.
    Each :meth:`submit` assigns the task to the worker that frees up first
    (ties broken by submission order, so dispatch is deterministic), charges
    the per-task ``dispatch_overhead``, and returns the placement.
    :meth:`ClusterSimulator.run_dynamic` is this dispatcher driven over a
    static queue.

    Parameters
    ----------
    workers:
        The pool; ids must be unique.
    dispatch_overhead:
        Per-task cost of pulling work from the shared queue.
    tracer:
        Optional duck-typed :class:`~repro.obs.trace.Tracer`; when set,
        every placement is recorded as an explicit-coordinate span of
        kind ``"dispatch"`` at the task's virtual ``[start, end]``, with
        the worker id and queue wait in its attrs.
    """

    def __init__(
        self,
        workers: list[Worker],
        dispatch_overhead: float = 0.0,
        *,
        tracer=None,
    ):
        if not workers:
            raise ValueError("need at least one worker")
        if dispatch_overhead < 0:
            raise ValueError(f"dispatch_overhead must be >= 0, got {dispatch_overhead}")
        self.workers = list(workers)
        self.dispatch_overhead = float(dispatch_overhead)
        self.tracer = tracer
        self._busy = np.zeros(len(self.workers))
        self._trace = ExecutionTrace(makespan=0.0, worker_busy=self._busy)
        self._counter = itertools.count()
        self._heap = [(0.0, next(self._counter), i) for i in range(len(self.workers))]
        heapq.heapify(self._heap)
        self._ends: list[float] = []

    def submit(
        self, task: TaskSpec, release: float = 0.0
    ) -> tuple[int, float, float]:
        """Place ``task`` on the next-free worker, no earlier than ``release``.

        Returns ``(worker_id, start, end)`` in virtual seconds.  ``release``
        models the instant the task becomes runnable (e.g. the moment a UQ
        gate rejects a query); a worker that frees up earlier idles until
        then.
        """
        if release < 0:
            raise ValueError(f"release must be >= 0, got {release}")
        free_at, _, i = heapq.heappop(self._heap)
        w = self.workers[i]
        start = max(free_at, release)
        dur = self.dispatch_overhead + w.duration(task)
        end = start + dur
        self._trace.assignments.append((task.task_id, w.worker_id, start, end))
        self._busy[i] += dur
        self._ends.append(end)
        heapq.heappush(self._heap, (end, next(self._counter), i))
        if self.tracer is not None:
            self.tracer.record(
                "dispatch",
                "dispatch",
                start,
                end,
                attrs={
                    "task_id": int(task.task_id),
                    "worker_id": int(w.worker_id),
                    "queue_wait": start - release,
                },
            )
        return w.worker_id, start, end

    def in_flight(self, now: float) -> int:
        """Number of submitted tasks still running at virtual time ``now``."""
        return sum(1 for end in self._ends if end > now)

    def next_free_at(self) -> float:
        """Earliest virtual time at which some worker is idle."""
        return self._heap[0][0]

    def trace(self) -> ExecutionTrace:
        """Snapshot the execution trace accumulated so far."""
        self._trace.makespan = float(max(self._ends)) if self._ends else 0.0
        return self._trace


class ClusterSimulator:
    """Event-driven executor over a fixed worker pool.

    ``dispatch_overhead`` is the per-task cost of pulling work from the
    shared queue in :meth:`run_dynamic` (scheduler latency / task-launch
    cost).  It is what makes micro-tasks — the 1e5-times-cheaper surrogate
    lookups of §III-A — expensive to schedule one by one, and what the
    surrogate-aware scheduler's lookup batching amortizes away.  Static
    assignments (:meth:`run_assignment`) are precomputed and pay nothing.
    """

    def __init__(self, workers: list[Worker], dispatch_overhead: float = 0.0):
        if not workers:
            raise ValueError("need at least one worker")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError("worker ids must be unique")
        if dispatch_overhead < 0:
            raise ValueError(f"dispatch_overhead must be >= 0, got {dispatch_overhead}")
        self.workers = list(workers)
        self.dispatch_overhead = float(dispatch_overhead)

    def run_assignment(
        self, assignment: dict[int, list[TaskSpec]]
    ) -> ExecutionTrace:
        """Execute a *static* assignment: worker_id -> ordered task list."""
        by_id = {w.worker_id: w for w in self.workers}
        unknown = set(assignment) - set(by_id)
        if unknown:
            raise ValueError(f"assignment references unknown workers {unknown}")
        busy = np.zeros(len(self.workers))
        trace = ExecutionTrace(makespan=0.0, worker_busy=busy)
        index = {w.worker_id: i for i, w in enumerate(self.workers)}
        for wid, tasks in assignment.items():
            t = 0.0
            for task in tasks:
                dur = by_id[wid].duration(task)
                trace.assignments.append((task.task_id, wid, t, t + dur))
                t += dur
            busy[index[wid]] = t
        trace.makespan = float(np.max(busy)) if len(busy) else 0.0
        return trace

    def run_dynamic(self, queue: list[TaskSpec]) -> ExecutionTrace:
        """Execute a shared queue greedily: the next free worker pulls the
        next task (list scheduling — the idealized work-stealing limit)."""
        dispatcher = OnlineDispatcher(self.workers, self.dispatch_overhead)
        for task in queue:
            dispatcher.submit(task)
        return dispatcher.trace()
