"""Alpha-beta communication cost model.

The standard parallel-computing abstraction: sending an ``n``-word
message costs ``alpha + beta * n`` seconds (latency + inverse bandwidth).
All collectives and the parameter-server models derive their costs from
one :class:`CommModel` instance, so experiments can sweep interconnect
quality the way §III-A sweeps synchronization strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["CommModel"]


@dataclass(frozen=True)
class CommModel:
    """Point-to-point cost parameters.

    Attributes
    ----------
    alpha:
        Per-message latency (seconds).
    beta:
        Per-word transfer time (seconds/word).
    flop_time:
        Time per arithmetic reduction op (used for the reduction work in
        collectives; usually negligible but kept explicit).
    """

    alpha: float = 1e-5
    beta: float = 1e-9
    flop_time: float = 1e-10

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha, strict=False)
        check_positive("beta", self.beta, strict=False)
        check_positive("flop_time", self.flop_time, strict=False)

    def p2p(self, n_words: int | float) -> float:
        """Cost of one point-to-point message of ``n_words`` words."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        return self.alpha + self.beta * float(n_words)

    def reduce_work(self, n_words: int | float) -> float:
        """Arithmetic cost of combining two ``n_words`` buffers."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        return self.flop_time * float(n_words)
