"""Heterogeneous workflow DAGs on the simulated cluster (§III-E issues 6-8).

The paper's systems research issues ask for "appropriate systems
frameworks for MLaroundHPC" (issue 6 — "Is Dataflow useful?") and
"runtime systems ... for workloads comprised of multiple heterogeneous
tasks" (issues 7-8).  This module supplies the dataflow layer:

* :class:`WorkflowDAG` — tasks with work, kind and dependencies; cycle
  detection, topological order, critical-path analysis,
* :func:`simulate_workflow` — event-driven execution on a
  :class:`~repro.parallel.cluster.ClusterSimulator`: tasks become ready
  when their dependencies finish, free workers pull the largest ready
  task (list scheduling),
* :func:`mlaround_campaign_dag` — the §III-D "simple case" pipeline
  (N_train simulations → train → N_lookup inferences) as a DAG, so the
  effective-speedup model's parallel-training assumption can be checked
  against an actual schedule.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.cluster import ClusterSimulator, ExecutionTrace
from repro.util.validation import check_positive

__all__ = ["WorkflowTask", "WorkflowDAG", "simulate_workflow", "mlaround_campaign_dag"]


@dataclass(frozen=True)
class WorkflowTask:
    """One DAG node: work units, a kind label, and dependencies."""

    task_id: int
    work: float
    kind: str = "simulation"
    deps: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_positive("work", self.work)


class WorkflowDAG:
    """A dependency graph of heterogeneous tasks."""

    def __init__(self) -> None:
        self._tasks: dict[int, WorkflowTask] = {}
        self._next_id = 0

    def add(
        self,
        work: float,
        kind: str = "simulation",
        deps: tuple[int, ...] | list[int] = (),
    ) -> int:
        """Add a task; returns its id.  Dependencies must already exist."""
        for d in deps:
            if d not in self._tasks:
                raise ValueError(f"dependency {d} not in the DAG")
        tid = self._next_id
        self._next_id += 1
        self._tasks[tid] = WorkflowTask(tid, float(work), kind, tuple(deps))
        return tid

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, tid: int) -> WorkflowTask:
        return self._tasks[tid]

    def tasks(self) -> list[WorkflowTask]:
        return list(self._tasks.values())

    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Kahn's algorithm; raises on cycles.

        (Cycles cannot be built through :meth:`add`, which only accepts
        existing tasks as dependencies, but the check keeps externally
        constructed graphs honest.)
        """
        in_deg = {tid: len(t.deps) for tid, t in self._tasks.items()}
        children: dict[int, list[int]] = {tid: [] for tid in self._tasks}
        for tid, t in self._tasks.items():
            for d in t.deps:
                children[d].append(tid)
        ready = [tid for tid, deg in in_deg.items() if deg == 0]
        order: list[int] = []
        while ready:
            tid = ready.pop()
            order.append(tid)
            for c in children[tid]:
                in_deg[c] -= 1
                if in_deg[c] == 0:
                    ready.append(c)
        if len(order) != len(self._tasks):
            raise ValueError("workflow DAG contains a cycle")
        return order

    def critical_path(self) -> float:
        """Longest dependency chain by work (unit-speed lower bound on
        the makespan, regardless of worker count)."""
        finish: dict[int, float] = {}
        for tid in self.topological_order():
            t = self._tasks[tid]
            start = max((finish[d] for d in t.deps), default=0.0)
            finish[tid] = start + t.work
        return max(finish.values(), default=0.0)

    def total_work(self) -> float:
        return sum(t.work for t in self._tasks.values())


def simulate_workflow(
    dag: WorkflowDAG, cluster: ClusterSimulator
) -> ExecutionTrace:
    """Event-driven list-scheduled execution of the DAG.

    Free workers pull the largest ready task (LPT among ready).  Returns
    the usual :class:`~repro.parallel.cluster.ExecutionTrace`.
    """
    order = dag.topological_order()  # validates acyclicity
    children: dict[int, list[int]] = {tid: [] for tid in order}
    remaining = {}
    for tid in order:
        t = dag[tid]
        remaining[tid] = len(t.deps)
        for d in t.deps:
            children[d].append(tid)

    workers = cluster.workers
    busy = np.zeros(len(workers))
    trace = ExecutionTrace(makespan=0.0, worker_busy=busy)
    counter = itertools.count()

    # ready: max-heap by work (negate), worker pool: min-heap by free time.
    ready: list[tuple[float, int, int]] = []
    for tid in order:
        if remaining[tid] == 0:
            heapq.heappush(ready, (-dag[tid].work, next(counter), tid))
    free: list[tuple[float, int, int]] = [
        (0.0, next(counter), i) for i in range(len(workers))
    ]
    heapq.heapify(free)
    running: list[tuple[float, int, int, int]] = []  # (end, seq, tid, worker)
    now = 0.0
    n_done = 0

    while n_done < len(order):
        # Dispatch every ready task onto the earliest-free workers that
        # are free at or before the earliest running completion.
        while ready and free:
            free_at, _, wi = heapq.heappop(free)
            if running and free_at > running[0][0]:
                heapq.heappush(free, (free_at, next(counter), wi))
                break
            _, _, tid = heapq.heappop(ready)
            start = max(free_at, now)
            dur = cluster.dispatch_overhead + workers[wi].duration(dag[tid])
            end = start + dur
            busy[wi] += dur
            trace.assignments.append((tid, workers[wi].worker_id, start, end))
            heapq.heappush(running, (end, next(counter), tid, wi))
        if not running:
            raise RuntimeError("workflow stalled with unfinished tasks")
        end, _, tid, wi = heapq.heappop(running)
        now = end
        n_done += 1
        heapq.heappush(free, (end, next(counter), wi))
        for c in children[tid]:
            remaining[c] -= 1
            if remaining[c] == 0:
                heapq.heappush(ready, (-dag[c].work, next(counter), c))

    trace.makespan = max((a[3] for a in trace.assignments), default=0.0)
    return trace


def mlaround_campaign_dag(
    n_train: int,
    n_lookup: int,
    *,
    sim_work: float = 1.0,
    train_work: float = 2.0,
    lookup_work: float = 1e-4,
) -> WorkflowDAG:
    """The §III-D simple-case pipeline as a DAG.

    ``n_train`` independent simulations feed one training task; all
    ``n_lookup`` inferences depend on training.  Simulating this DAG on a
    p-worker cluster realizes the T_train = T_seq/p parallel-training
    assumption the effective-speedup model makes.
    """
    if n_train < 1 or n_lookup < 0:
        raise ValueError("need n_train >= 1 and n_lookup >= 0")
    dag = WorkflowDAG()
    sims = [dag.add(sim_work, "simulation") for _ in range(n_train)]
    train = dag.add(train_work, "train", deps=tuple(sims))
    for _ in range(n_lookup):
        dag.add(lookup_work, "lookup", deps=(train,))
    return dag
