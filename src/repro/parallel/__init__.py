"""Simulated HPC runtime (§III-A and the paper's conclusions).

The paper's systems claims — four synchronization models for parallel ML,
optimized collectives beating asynchronous updates, and the scheduling
challenge of workloads mixing ~1e5-times-faster surrogate lookups with
full simulations — are about *semantics and cost shape*, not about any
particular interconnect.  This package models them explicitly:

* :mod:`repro.parallel.cluster` — discrete-event cluster: heterogeneous
  workers, a virtual clock, task execution traces,
* :mod:`repro.parallel.network` — latency/bandwidth (alpha-beta)
  communication cost model,
* :mod:`repro.parallel.collectives` — flat, binary-tree, and ring
  allreduce algorithms with step-accurate cost accounting (and a real
  data-combining reduction so correctness is testable),
* :mod:`repro.parallel.computation_models` — the paper's four parallel
  computation models — (a) Locking, (b) Rotation, (c) Allreduce,
  (d) Asynchronous — applied to data-parallel SGD, K-means and cyclic
  coordinate descent,
* :mod:`repro.parallel.scheduler` — static, dynamic (work-stealing-style
  list scheduling) and surrogate-aware schedulers for heterogeneous
  learnt+unlearnt workloads (experiment E9).
"""

from repro.parallel.network import CommModel
from repro.parallel.cluster import (
    Worker,
    ClusterSimulator,
    OnlineDispatcher,
    TaskSpec,
    ExecutionTrace,
)
from repro.parallel.collectives import (
    allreduce_cost,
    flat_allreduce,
    tree_allreduce,
    ring_allreduce,
    AllreduceResult,
)
from repro.parallel.computation_models import (
    ComputationModel,
    ConvergenceTrace,
    ParallelSGD,
    ParallelKMeans,
    ParallelCCD,
)
from repro.parallel.gibbs import ParallelIsingGibbs
from repro.parallel.workflow import (
    WorkflowDAG,
    WorkflowTask,
    simulate_workflow,
    mlaround_campaign_dag,
)
from repro.parallel.scheduler import (
    Scheduler,
    StaticRoundRobin,
    DynamicGreedy,
    SurrogateAwareScheduler,
    ScheduleReport,
    pack_lookup_batches,
    make_mixed_workload,
)

__all__ = [
    "CommModel",
    "Worker",
    "ClusterSimulator",
    "OnlineDispatcher",
    "TaskSpec",
    "ExecutionTrace",
    "allreduce_cost",
    "flat_allreduce",
    "tree_allreduce",
    "ring_allreduce",
    "AllreduceResult",
    "ComputationModel",
    "ConvergenceTrace",
    "ParallelSGD",
    "ParallelKMeans",
    "ParallelCCD",
    "ParallelIsingGibbs",
    "WorkflowDAG",
    "WorkflowTask",
    "simulate_workflow",
    "mlaround_campaign_dag",
    "Scheduler",
    "StaticRoundRobin",
    "DynamicGreedy",
    "SurrogateAwareScheduler",
    "ScheduleReport",
    "pack_lookup_batches",
    "make_mixed_workload",
]
