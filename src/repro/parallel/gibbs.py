"""Parallel Gibbs sampling under the four computation models (§III-A).

Gibbs sampling is the first kernel the paper lists ("looking in
particular at Gibbs Sampling, Stochastic Gradient Descent (SGD), Cyclic
Coordinate Descent (CCD) and K-means clustering"), representing the
MCMC class.  The testbed is the 2-D Ising model — heat-bath (Gibbs)
single-spin updates on a periodic lattice — partitioned into row-strip
shards across workers:

* **Locking** — workers take turns sweeping their strip against the
  globally current lattice (serialized, always-fresh boundaries),
* **Rotation** — strip ownership rotates; in each sub-step every worker
  sweeps a *different* strip, and strips are disjoint so all p updates
  per sub-step are exact (small halo messages),
* **Allreduce** — chromatic (red-black) parallelism: all same-color
  spins are conditionally independent, so each half-sweep is one bulk
  parallel update followed by a halo allreduce,
* **Asynchronous** — workers sweep their strips concurrently against
  *stale* neighbor-strip boundaries (Hogwild-style), refreshing halos
  only after each local sweep.

All variants sample the same model; the physics observable (energy per
site) converges to the same equilibrium value, while virtual time and
boundary staleness differ — exactly the paper's synchronization-pattern
trade-off, now for MCMC.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.collectives import allreduce_cost
from repro.parallel.computation_models import ComputationModel, ConvergenceTrace, _shard
from repro.parallel.network import CommModel
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import check_integer, check_positive

__all__ = ["ParallelIsingGibbs"]


class ParallelIsingGibbs:
    """Heat-bath Ising sampling with worker-sharded rows.

    Parameters
    ----------
    shape:
        Lattice dimensions (rows, cols), periodic boundaries.
    beta:
        Inverse temperature (coupling J = 1).
    n_workers:
        Row strips are distributed contiguously across this many workers.
    comm:
        Alpha-beta communication model for the virtual clock.
    flop_time:
        Virtual cost per single-spin update.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        beta: float,
        n_workers: int,
        comm: CommModel | None = None,
        *,
        flop_time: float = 1e-8,
    ):
        ny, nx = shape
        ny = check_integer("ny", ny, minimum=4)
        nx = check_integer("nx", nx, minimum=4)
        n_workers = check_integer("n_workers", n_workers, minimum=1)
        if n_workers > ny // 2:
            raise ValueError("need 1 <= n_workers <= rows/2")
        self.ny, self.nx = ny, nx
        self.beta = check_positive("beta", beta)
        self.p = n_workers
        self.comm = comm or CommModel()
        self.flop_time = check_positive("flop_time", flop_time)
        self.strips = _shard(self.ny, self.p)

    # ------------------------------------------------------------------
    def random_lattice(self, rng: int | np.random.Generator) -> np.ndarray:
        """Uniform ±1 spin lattice drawn from ``rng`` (seed or Generator)."""
        gen = ensure_rng(rng)
        return gen.choice([-1, 1], size=(self.ny, self.nx)).astype(np.int8)

    def energy_per_site(self, spins: np.ndarray) -> float:
        """Nearest-neighbor energy density, each bond counted once."""
        right = np.roll(spins, -1, axis=1)
        down = np.roll(spins, -1, axis=0)
        return float(-(spins * right + spins * down).sum() / spins.size)

    def magnetization(self, spins: np.ndarray) -> float:
        return float(np.abs(spins.mean()))

    # -- update kernels ----------------------------------------------
    def _heat_bath_rows(
        self,
        spins: np.ndarray,
        rows: np.ndarray,
        rng: np.random.Generator,
        top_halo: np.ndarray | None = None,
        bottom_halo: np.ndarray | None = None,
    ) -> None:
        """Sequential heat-bath updates over the given rows (in place).

        Optional stale halos replace the live neighbor rows at the strip
        boundary — the mechanism of the asynchronous model.
        """
        ny, nx = spins.shape
        for y in rows:
            up_row = (
                top_halo
                if top_halo is not None and y == rows[0]
                else spins[(y - 1) % ny]
            )
            down_row = (
                bottom_halo
                if bottom_halo is not None and y == rows[-1]
                else spins[(y + 1) % ny]
            )
            us = rng.random(nx)
            for x in range(nx):
                nn = (
                    int(up_row[x])
                    + int(down_row[x])
                    + int(spins[y, (x - 1) % nx])
                    + int(spins[y, (x + 1) % nx])
                )
                p_up = 1.0 / (1.0 + np.exp(-2.0 * self.beta * nn))
                spins[y, x] = 1 if us[x] < p_up else -1

    def _chromatic_half_sweep(
        self, spins: np.ndarray, color: int, rng: np.random.Generator
    ) -> None:
        """Vectorized heat-bath update of every site of one parity."""
        nn = (
            np.roll(spins, 1, axis=0)
            + np.roll(spins, -1, axis=0)
            + np.roll(spins, 1, axis=1)
            + np.roll(spins, -1, axis=1)
        )
        p_up = 1.0 / (1.0 + np.exp(-2.0 * self.beta * nn))
        draws = rng.random(spins.shape)
        parity = (np.add.outer(np.arange(self.ny), np.arange(self.nx)) % 2) == color
        spins[parity] = np.where(draws[parity] < p_up[parity], 1, -1).astype(np.int8)

    # -- cost model -----------------------------------------------------
    def _strip_compute(self, strip: np.ndarray) -> float:
        return self.flop_time * len(strip) * self.nx

    # ------------------------------------------------------------------
    def run(
        self,
        model: ComputationModel,
        n_sweeps: int = 50,
        rng: int | np.random.Generator | None = None,
    ) -> ConvergenceTrace:
        """Sample ``n_sweeps`` lattice sweeps; trace = energy per site."""
        if n_sweeps < 1:
            raise ValueError("n_sweeps must be >= 1")
        gen = ensure_rng(rng)
        spins = self.random_lattice(gen)
        trace = ConvergenceTrace(model=model)
        trace.record(0.0, self.energy_per_site(spins))
        halo_words = self.nx

        if model is ComputationModel.LOCKING:
            t = 0.0
            msg = self.comm.p2p(halo_words)
            for _ in range(n_sweeps):
                for i, strip in enumerate(self.strips):
                    self._heat_bath_rows(spins, strip, gen)
                    t += 2 * msg + self._strip_compute(strip)
                trace.record(t, self.energy_per_site(spins))

        elif model is ComputationModel.ROTATION:
            t = 0.0
            rotate_cost = self.comm.p2p(halo_words)
            for _ in range(n_sweeps):
                for s in range(self.p):
                    # Worker i sweeps strip (i+s) mod p; strips are
                    # disjoint so the p sub-updates commute exactly.
                    for i in range(self.p):
                        self._heat_bath_rows(spins, self.strips[(i + s) % self.p], gen)
                    t += max(
                        self._strip_compute(self.strips[(i + s) % self.p])
                        for i in range(self.p)
                    ) + rotate_cost
                trace.record(t, self.energy_per_site(spins))
            # NOTE: with strips swept in rotation order the full sweep is
            # p sub-steps; compute per sub-step is one strip per worker.

        elif model is ComputationModel.ALLREDUCE:
            t = 0.0
            sync = allreduce_cost("ring", self.p, 2 * halo_words, self.comm)
            per_half = max(self._strip_compute(s) for s in self.strips) / 2.0
            for _ in range(n_sweeps):
                self._chromatic_half_sweep(spins, 0, gen)
                self._chromatic_half_sweep(spins, 1, gen)
                t += 2 * (per_half + sync)
                trace.record(t, self.energy_per_site(spins))

        elif model is ComputationModel.ASYNCHRONOUS:
            t = 0.0
            worker_rngs = spawn_rngs(gen, self.p)
            msg = self.comm.p2p(halo_words)
            for _ in range(n_sweeps):
                # Snapshot stale halos, then all workers sweep concurrently.
                halos = []
                for strip in self.strips:
                    top = spins[(strip[0] - 1) % self.ny].copy()
                    bottom = spins[(strip[-1] + 1) % self.ny].copy()
                    halos.append((top, bottom))
                for i, strip in enumerate(self.strips):
                    top, bottom = halos[i]
                    self._heat_bath_rows(
                        spins, strip, worker_rngs[i], top_halo=top, bottom_halo=bottom
                    )
                t += max(self._strip_compute(s) for s in self.strips) + msg
                trace.record(t, self.energy_per_site(spins))
        else:
            raise ValueError(f"unknown computation model {model}")
        return trace

    def equilibrium_energy(
        self, n_sweeps: int = 200, burn_in: int = 100, rng=None
    ) -> float:
        """Reference equilibrium energy density from long chromatic runs
        (exact sampler; used as ground truth in tests and benches)."""
        gen = ensure_rng(rng)
        spins = self.random_lattice(gen)
        energies = []
        for sweep in range(n_sweeps):
            self._chromatic_half_sweep(spins, 0, gen)
            self._chromatic_half_sweep(spins, 1, gen)
            if sweep >= burn_in:
                energies.append(self.energy_per_site(spins))
        return float(np.mean(energies))
