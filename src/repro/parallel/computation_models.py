"""The four parallel computation models of §III-A.

The paper categorizes parallel iterative ML algorithms "into four types
of computation models (a) Locking, (b) Rotation, (c) Allreduce, (d)
Asynchronous, based on the synchronization patterns and the effectiveness
of the model parameter update", studied on Gibbs sampling, SGD, cyclic
coordinate descent (CCD) and K-means.  This module implements the four
models over three of those kernels — SGD (least squares), K-means, and
CCD (ridge regression) — with *real* numerics (losses are exact) and
*virtual* wall-clock accounting from an alpha-beta communication model,
so time-to-convergence comparisons are meaningful.

Model semantics (p workers, model size D, per-worker data shards):

* **Locking** — a parameter server serializes updates: fetch, compute,
  write-back, one worker at a time.  Always-fresh parameters, zero
  parallelism in the update path.
* **Rotation** — the model is partitioned into p disjoint blocks;
  in each sub-step every worker updates a distinct block against its
  local data, then blocks rotate (small D/p messages).  After p
  sub-steps every block has seen every shard.  No global barrier on the
  full model, no stale overwrites (blocks are disjoint).
* **Allreduce** — bulk-synchronous: all workers compute on the same
  parameters, contributions are combined with a (ring by default)
  allreduce, everyone applies the identical update.
* **Asynchronous** — workers fetch and write a shared parameter store at
  their own pace with no locks; gradients are computed on stale
  snapshots.  Fastest pipeline, noisiest updates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.parallel.collectives import allreduce_cost
from repro.parallel.network import CommModel
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.scatter import scatter_add
from repro.util.validation import check_positive

__all__ = [
    "ComputationModel",
    "ConvergenceTrace",
    "ParallelSGD",
    "ParallelKMeans",
    "ParallelCCD",
]


class ComputationModel(Enum):
    """The four synchronization models of §III-A."""

    LOCKING = "locking"
    ROTATION = "rotation"
    ALLREDUCE = "allreduce"
    ASYNCHRONOUS = "asynchronous"


@dataclass
class ConvergenceTrace:
    """(virtual time, loss) series for one run."""

    model: ComputationModel
    times: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    def record(self, t: float, loss: float) -> None:
        self.times.append(float(t))
        self.losses.append(float(loss))

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("inf")

    @property
    def total_time(self) -> float:
        return self.times[-1] if self.times else 0.0

    def time_to(self, loss_target: float) -> float | None:
        """First virtual time at which the loss reached the target."""
        for t, l in zip(self.times, self.losses):
            if l <= loss_target:
                return t
        return None


def _shard(n: int, p: int) -> list[np.ndarray]:
    """Contiguous near-equal index shards."""
    bounds = np.linspace(0, n, p + 1).astype(int)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(p)]


class _WorkerPool:
    """Shared speed/cost bookkeeping for all three kernels."""

    def __init__(
        self,
        n_workers: int,
        comm: CommModel,
        *,
        speeds: np.ndarray | None = None,
        flop_time: float = 1e-9,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.p = int(n_workers)
        self.comm = comm
        if speeds is None:
            speeds = np.ones(self.p)
        self.speeds = np.asarray(speeds, dtype=float)
        if self.speeds.shape != (self.p,) or np.any(self.speeds <= 0):
            raise ValueError("speeds must be positive, one per worker")
        self.flop_time = check_positive("flop_time", flop_time)

    def compute_time(self, i: int, flops: float) -> float:
        return flops * self.flop_time / self.speeds[i]


class ParallelSGD(_WorkerPool):
    """Data-parallel mini-batch SGD on least squares ``||X theta - y||^2 / n``.

    Parameters
    ----------
    x, y:
        The full dataset (sharded internally across workers).
    n_workers, comm, speeds, flop_time:
        Pool configuration (see :class:`CommModel`).
    lr, batch_size:
        Optimization hyperparameters.
    allreduce_algorithm:
        Collective used in ALLREDUCE mode (flat | tree | ring).
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_workers: int,
        comm: CommModel | None = None,
        *,
        lr: float = 0.05,
        batch_size: int = 16,
        speeds: np.ndarray | None = None,
        flop_time: float = 1e-9,
        allreduce_algorithm: str = "ring",
    ):
        super().__init__(n_workers, comm or CommModel(), speeds=speeds, flop_time=flop_time)
        self.x = np.atleast_2d(np.asarray(x, dtype=float))
        self.y = np.asarray(y, dtype=float).ravel()
        if len(self.x) != len(self.y):
            raise ValueError("x and y lengths differ")
        if len(self.x) < self.p:
            raise ValueError("fewer samples than workers")
        self.lr = check_positive("lr", lr)
        self.batch_size = int(check_positive("batch_size", batch_size))
        self.shards = _shard(len(self.x), self.p)
        self.d = self.x.shape[1]
        self.allreduce_algorithm = allreduce_algorithm

    # -- helpers ---------------------------------------------------------
    def loss(self, theta: np.ndarray) -> float:
        r = self.x @ theta - self.y
        return float(np.mean(r * r))

    def _grad(self, theta: np.ndarray, idx: np.ndarray) -> np.ndarray:
        xb, yb = self.x[idx], self.y[idx]
        return 2.0 * xb.T @ (xb @ theta - yb) / len(idx)

    def _batch(self, i: int, rng: np.random.Generator) -> np.ndarray:
        shard = self.shards[i]
        k = min(self.batch_size, len(shard))
        return rng.choice(shard, size=k, replace=False)

    def _grad_flops(self) -> float:
        return 4.0 * self.batch_size * self.d  # two mat-vec passes

    # -- the four models --------------------------------------------------
    def run(
        self,
        model: ComputationModel,
        n_rounds: int = 50,
        rng: int | np.random.Generator | None = None,
    ) -> ConvergenceTrace:
        """Run ``n_rounds`` logical rounds (one round ~ p worker updates,
        or one bulk-synchronous step for ALLREDUCE) and trace convergence."""
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        gen = ensure_rng(rng)
        theta = np.zeros(self.d)
        trace = ConvergenceTrace(model=model)
        trace.record(0.0, self.loss(theta))
        runner = {
            ComputationModel.LOCKING: self._run_locking,
            ComputationModel.ROTATION: self._run_rotation,
            ComputationModel.ALLREDUCE: self._run_allreduce,
            ComputationModel.ASYNCHRONOUS: self._run_async,
        }[model]
        runner(theta, n_rounds, gen, trace)
        return trace

    def _run_locking(self, theta, n_rounds, gen, trace) -> None:
        t = 0.0
        fetch_cost = self.comm.p2p(self.d)
        for _ in range(n_rounds):
            for i in range(self.p):
                g = self._grad(theta, self._batch(i, gen))
                theta -= self.lr * g
                t += fetch_cost + self.compute_time(i, self._grad_flops()) + fetch_cost
            trace.record(t, self.loss(theta))

    def _run_allreduce(self, theta, n_rounds, gen, trace) -> None:
        t = 0.0
        comm_cost = allreduce_cost(self.allreduce_algorithm, self.p, self.d, self.comm)
        for _ in range(n_rounds):
            grads = np.stack(
                [self._grad(theta, self._batch(i, gen)) for i in range(self.p)]
            )
            theta -= self.lr * grads.mean(axis=0)
            compute = max(
                self.compute_time(i, self._grad_flops()) for i in range(self.p)
            )
            t += compute + comm_cost
            trace.record(t, self.loss(theta))

    def _run_rotation(self, theta, n_rounds, gen, trace) -> None:
        t = 0.0
        blocks = _shard(self.d, self.p)
        rotate_cost = self.comm.p2p(max(self.d / self.p, 1))
        for _ in range(n_rounds):
            for s in range(self.p):
                new_theta = theta.copy()
                for i in range(self.p):
                    b = blocks[(i + s) % self.p]
                    g = self._grad(theta, self._batch(i, gen))
                    new_theta[b] = theta[b] - self.lr * g[b]
                theta[...] = new_theta
                compute = max(
                    self.compute_time(i, self._grad_flops()) for i in range(self.p)
                )
                t += compute + rotate_cost
            trace.record(t, self.loss(theta))

    def _run_async(self, theta, n_rounds, gen, trace) -> None:
        fetch_cost = self.comm.p2p(self.d)
        n_updates = n_rounds * self.p
        worker_rngs = spawn_rngs(gen, self.p)
        # Event heap: (finish_time, seq, worker, theta_snapshot, batch)
        counter = itertools.count()
        heap: list[tuple[float, int, int, np.ndarray, np.ndarray]] = []
        for i in range(self.p):
            start = fetch_cost
            dur = self.compute_time(i, self._grad_flops())
            heap.append(
                (start + dur, next(counter), i, theta.copy(), self._batch(i, worker_rngs[i]))
            )
        heapq.heapify(heap)
        done = 0
        while done < n_updates and heap:
            finish, _, i, snapshot, batch = heapq.heappop(heap)
            g = self._grad(snapshot, batch)
            theta -= self.lr * g
            done += 1
            t_apply = finish + fetch_cost
            if done % self.p == 0:
                trace.record(t_apply, self.loss(theta))
            # Worker immediately refetches and starts the next gradient.
            refetch = t_apply + fetch_cost
            dur = self.compute_time(i, self._grad_flops())
            heapq.heappush(
                heap,
                (refetch + dur, next(counter), i, theta.copy(),
                 self._batch(i, worker_rngs[i])),
            )


class ParallelKMeans(_WorkerPool):
    """Data-parallel Lloyd iterations under the four computation models.

    In ALLREDUCE mode each round is an exact Lloyd step (partial sums
    combined collectively); LOCKING serializes per-shard centroid updates;
    ASYNCHRONOUS applies per-shard updates to a shared table with
    staleness; ROTATION partitions *centroids* into p blocks that rotate
    across workers (each worker refines its current block against its
    shard only).
    """

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        n_workers: int,
        comm: CommModel | None = None,
        *,
        speeds: np.ndarray | None = None,
        flop_time: float = 1e-9,
        allreduce_algorithm: str = "ring",
    ):
        super().__init__(n_workers, comm or CommModel(), speeds=speeds, flop_time=flop_time)
        self.x = np.atleast_2d(np.asarray(x, dtype=float))
        if k < 1 or k > len(self.x):
            raise ValueError("require 1 <= k <= n_samples")
        if len(self.x) < self.p:
            raise ValueError("fewer samples than workers")
        self.k = int(k)
        self.d = self.x.shape[1]
        self.shards = _shard(len(self.x), self.p)
        self.allreduce_algorithm = allreduce_algorithm

    def loss(self, centroids: np.ndarray) -> float:
        d2 = np.sum((self.x[:, None, :] - centroids[None]) ** 2, axis=-1)
        return float(np.mean(np.min(d2, axis=1)))

    def _partials(self, centroids: np.ndarray, idx: np.ndarray):
        xs = self.x[idx]
        d2 = np.sum((xs[:, None, :] - centroids[None]) ** 2, axis=-1)
        assign = np.argmin(d2, axis=1)
        sums = np.zeros((self.k, self.d))
        scatter_add(sums, assign, xs)
        counts = np.bincount(assign, minlength=self.k).astype(float)
        return sums, counts

    def _assign_flops(self, n_points: int) -> float:
        return 3.0 * n_points * self.k * self.d

    def init_centroids(self, rng: int | np.random.Generator) -> np.ndarray:
        """Pick ``k`` distinct data points as starting centroids."""
        gen = ensure_rng(rng)
        idx = gen.choice(len(self.x), size=self.k, replace=False)
        return self.x[idx].copy()

    def run(
        self,
        model: ComputationModel,
        n_rounds: int = 20,
        rng: int | np.random.Generator | None = None,
    ) -> ConvergenceTrace:
        gen = ensure_rng(rng)
        centroids = self.init_centroids(gen)
        trace = ConvergenceTrace(model=model)
        trace.record(0.0, self.loss(centroids))
        words = self.k * self.d + self.k
        if model is ComputationModel.ALLREDUCE:
            comm_cost = allreduce_cost(self.allreduce_algorithm, self.p, words, self.comm)
            t = 0.0
            for _ in range(n_rounds):
                parts = [self._partials(centroids, s) for s in self.shards]
                sums = np.sum([p[0] for p in parts], axis=0)
                counts = np.sum([p[1] for p in parts], axis=0)
                nz = counts > 0
                centroids[nz] = sums[nz] / counts[nz, None]
                t += max(
                    self.compute_time(i, self._assign_flops(len(self.shards[i])))
                    for i in range(self.p)
                ) + comm_cost
                trace.record(t, self.loss(centroids))
        elif model is ComputationModel.LOCKING:
            t = 0.0
            msg = self.comm.p2p(words)
            for _ in range(n_rounds):
                for i in range(self.p):
                    sums, counts = self._partials(centroids, self.shards[i])
                    nz = counts > 0
                    # Convex blend of the current table with shard means.
                    centroids[nz] = 0.5 * centroids[nz] + 0.5 * (
                        sums[nz] / counts[nz, None]
                    )
                    t += msg + self.compute_time(
                        i, self._assign_flops(len(self.shards[i]))
                    ) + msg
                trace.record(t, self.loss(centroids))
        elif model is ComputationModel.ASYNCHRONOUS:
            msg = self.comm.p2p(words)
            counter = itertools.count()
            heap = []
            for i in range(self.p):
                dur = self.compute_time(i, self._assign_flops(len(self.shards[i])))
                heap.append((msg + dur, next(counter), i, centroids.copy()))
            heapq.heapify(heap)
            done, n_updates = 0, n_rounds * self.p
            while done < n_updates and heap:
                finish, _, i, snapshot = heapq.heappop(heap)
                sums, counts = self._partials(snapshot, self.shards[i])
                nz = counts > 0
                centroids[nz] = 0.5 * centroids[nz] + 0.5 * (
                    sums[nz] / counts[nz, None]
                )
                done += 1
                t_apply = finish + msg
                if done % self.p == 0:
                    trace.record(t_apply, self.loss(centroids))
                dur = self.compute_time(i, self._assign_flops(len(self.shards[i])))
                heapq.heappush(
                    heap, (t_apply + msg + dur, next(counter), i, centroids.copy())
                )
        elif model is ComputationModel.ROTATION:
            t = 0.0
            blocks = _shard(self.k, self.p)
            rotate_cost = self.comm.p2p(max(words / self.p, 1))
            for _ in range(n_rounds):
                for s in range(self.p):
                    new_c = centroids.copy()
                    for i in range(self.p):
                        b = blocks[(i + s) % self.p]
                        if len(b) == 0:
                            continue
                        sums, counts = self._partials(centroids, self.shards[i])
                        nz = b[counts[b] > 0]
                        new_c[nz] = 0.5 * centroids[nz] + 0.5 * (
                            sums[nz] / counts[nz, None]
                        )
                    centroids = new_c
                    t += max(
                        self.compute_time(i, self._assign_flops(len(self.shards[i])))
                        for i in range(self.p)
                    ) + rotate_cost
                trace.record(t, self.loss(centroids))
        else:
            raise ValueError(f"unknown computation model {model}")
        return trace


class ParallelCCD(_WorkerPool):
    """Cyclic coordinate descent for ridge regression under the models.

    CCD is the paper's canonical *rotation* kernel: coordinates partition
    naturally into p blocks, each block update is exact given the current
    residual, and rotating block ownership avoids both locks and stale
    overwrites.  ALLREDUCE mode does Jacobi-style simultaneous block
    updates (cheap but can oscillate); LOCKING serializes exact block
    updates (one worker at a time); ROTATION performs p disjoint exact
    block updates per sub-step.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_workers: int,
        comm: CommModel | None = None,
        *,
        l2: float = 0.1,
        speeds: np.ndarray | None = None,
        flop_time: float = 1e-9,
        allreduce_algorithm: str = "ring",
        damping: float = 0.5,
    ):
        super().__init__(n_workers, comm or CommModel(), speeds=speeds, flop_time=flop_time)
        self.x = np.atleast_2d(np.asarray(x, dtype=float))
        self.y = np.asarray(y, dtype=float).ravel()
        if len(self.x) != len(self.y):
            raise ValueError("x and y lengths differ")
        self.l2 = check_positive("l2", l2, strict=False)
        self.d = self.x.shape[1]
        if self.d < self.p:
            raise ValueError("fewer coordinates than workers")
        self.blocks = _shard(self.d, self.p)
        self.allreduce_algorithm = allreduce_algorithm
        self.damping = check_positive("damping", damping)
        self._col_sq = np.sum(self.x * self.x, axis=0) + self.l2

    def loss(self, theta: np.ndarray) -> float:
        r = self.x @ theta - self.y
        return float(np.mean(r * r) + self.l2 * np.sum(theta * theta) / len(self.y))

    def _block_update(self, theta: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact coordinate minimization over block b (sequential in-block,
        incremental residual maintenance)."""
        new = theta.copy()
        r = self.x @ new - self.y
        for j in b:
            xj = self.x[:, j]
            r_minus = r - xj * new[j]
            # minimize ||r_minus + x_j t||^2 + l2 t^2 over t
            new_j = float(-(xj @ r_minus)) / self._col_sq[j]
            r = r_minus + xj * new_j
            new[j] = new_j
        return new

    def _block_flops(self, block_size: int) -> float:
        return 4.0 * len(self.x) * block_size

    def run(
        self,
        model: ComputationModel,
        n_rounds: int = 10,
        rng: int | np.random.Generator | None = None,
    ) -> ConvergenceTrace:
        # Note: all three schedules below are deterministic given the
        # fixed block partition, so ``rng`` is accepted for interface
        # symmetry with the SGD runners but never drawn from.
        theta = np.zeros(self.d)
        trace = ConvergenceTrace(model=model)
        trace.record(0.0, self.loss(theta))
        if model is ComputationModel.ROTATION:
            t = 0.0
            rotate_cost = self.comm.p2p(max(self.d / self.p, 1))
            for _ in range(n_rounds):
                for s in range(self.p):
                    new_theta = theta.copy()
                    for i in range(self.p):
                        b = self.blocks[(i + s) % self.p]
                        upd = self._block_update(theta, b)
                        new_theta[b] = upd[b]
                    theta = new_theta
                    t += max(
                        self.compute_time(i, self._block_flops(len(self.blocks[0])))
                        for i in range(self.p)
                    ) + rotate_cost
                trace.record(t, self.loss(theta))
        elif model is ComputationModel.LOCKING:
            t = 0.0
            msg = self.comm.p2p(self.d)
            for _ in range(n_rounds):
                for i in range(self.p):
                    theta = self._block_update(theta, self.blocks[i])
                    t += msg + self.compute_time(
                        i, self._block_flops(len(self.blocks[i]))
                    ) + msg
                trace.record(t, self.loss(theta))
        elif model is ComputationModel.ALLREDUCE:
            t = 0.0
            comm_cost = allreduce_cost(self.allreduce_algorithm, self.p, self.d, self.comm)
            for _ in range(n_rounds):
                updates = [self._block_update(theta, b) for b in self.blocks]
                new_theta = theta.copy()
                for b, upd in zip(self.blocks, updates):
                    # Damped Jacobi: simultaneous block updates oscillate
                    # undamped when features correlate across blocks.
                    new_theta[b] = (1 - self.damping) * theta[b] + self.damping * upd[b]
                theta = new_theta
                t += max(
                    self.compute_time(i, self._block_flops(len(self.blocks[i])))
                    for i in range(self.p)
                ) + comm_cost
                trace.record(t, self.loss(theta))
        elif model is ComputationModel.ASYNCHRONOUS:
            msg = self.comm.p2p(self.d)
            counter = itertools.count()
            heap = []
            for i in range(self.p):
                dur = self.compute_time(i, self._block_flops(len(self.blocks[i])))
                heap.append((msg + dur, next(counter), i, theta.copy()))
            heapq.heapify(heap)
            done, n_updates = 0, n_rounds * self.p
            while done < n_updates and heap:
                finish, _, i, snapshot = heapq.heappop(heap)
                upd = self._block_update(snapshot, self.blocks[i])
                theta = theta.copy()
                theta[self.blocks[i]] = upd[self.blocks[i]]
                done += 1
                t_apply = finish + msg
                if done % self.p == 0:
                    trace.record(t_apply, self.loss(theta))
                dur = self.compute_time(i, self._block_flops(len(self.blocks[i])))
                heapq.heappush(
                    heap, (t_apply + msg + dur, next(counter), i, theta.copy())
                )
        else:
            raise ValueError(f"unknown computation model {model}")
        return trace
