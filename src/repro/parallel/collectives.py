"""Allreduce collectives: flat, binary-tree, and ring algorithms.

§III-A: "we discover that optimized collective communication can improve
the model update speed, thus allowing the model to converge faster ...
To foster faster model convergence, we need to design new collective
communication abstractions."  Each algorithm here both *computes* the
reduction (on real numpy buffers, so tests can verify bit-level
correctness against ``sum``) and *accounts* its virtual cost under an
alpha-beta :class:`~repro.parallel.network.CommModel`:

* flat: everyone sends to a root, root broadcasts — O(p) latency terms,
* tree: reduce + broadcast along a binomial tree — O(log p) rounds of
  full-size messages,
* ring: reduce-scatter + allgather — 2(p-1) rounds of (n/p)-size
  messages; bandwidth-optimal, the algorithm behind Horovod's NCCL-style
  allreduce referenced by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.parallel.network import CommModel

__all__ = [
    "AllreduceResult",
    "flat_allreduce",
    "tree_allreduce",
    "ring_allreduce",
    "allreduce_cost",
]


@dataclass
class AllreduceResult:
    """Reduced buffer (identical on every rank) + virtual cost."""

    value: np.ndarray
    time_seconds: float
    n_messages: int


def _validate(buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
    if len(buffers) < 1:
        raise ValueError("need at least one buffer")
    arrs = [np.asarray(b, dtype=float).ravel() for b in buffers]
    n = arrs[0].size
    if any(a.size != n for a in arrs):
        raise ValueError("all buffers must have equal length")
    return arrs


def flat_allreduce(buffers: Sequence[np.ndarray], comm: CommModel) -> AllreduceResult:
    """Gather-to-root then broadcast; root receives serially."""
    arrs = _validate(buffers)
    p, n = len(arrs), arrs[0].size
    total = arrs[0].copy()
    for a in arrs[1:]:
        total += a
    # (p-1) serialized receives + reductions at the root, then (p-1)
    # serialized sends of the result.
    t = (p - 1) * (comm.p2p(n) + comm.reduce_work(n)) + (p - 1) * comm.p2p(n)
    return AllreduceResult(value=total, time_seconds=t, n_messages=2 * (p - 1))


def tree_allreduce(buffers: Sequence[np.ndarray], comm: CommModel) -> AllreduceResult:
    """Binomial-tree reduce followed by binomial-tree broadcast."""
    arrs = _validate(buffers)
    p, n = len(arrs), arrs[0].size
    work = [a.copy() for a in arrs]
    n_messages = 0
    rounds = 0
    stride = 1
    while stride < p:
        for dst in range(0, p, 2 * stride):
            src = dst + stride
            if src < p:
                work[dst] += work[src]
                n_messages += 1
        stride *= 2
        rounds += 1
    total = work[0]
    # Broadcast mirrors the reduce tree: same number of rounds.
    n_messages += max(p - 1, 0)
    t = 2 * rounds * (comm.p2p(n) + comm.reduce_work(n))
    return AllreduceResult(value=total, time_seconds=t, n_messages=n_messages)


def ring_allreduce(buffers: Sequence[np.ndarray], comm: CommModel) -> AllreduceResult:
    """Reduce-scatter + allgather around a ring.

    Executes the actual chunked ring algorithm on the data so tests can
    confirm every rank ends with the full sum.
    """
    arrs = _validate(buffers)
    p, n = len(arrs), arrs[0].size
    if p == 1:
        return AllreduceResult(value=arrs[0].copy(), time_seconds=0.0, n_messages=0)
    bounds = np.linspace(0, n, p + 1).astype(int)
    chunks = [(bounds[i], bounds[i + 1]) for i in range(p)]
    work = [a.copy() for a in arrs]

    # Reduce-scatter: after p-1 steps, rank r owns the full sum of chunk
    # (r+1) mod p.
    for step in range(p - 1):
        for r in range(p):
            c = (r - step) % p
            lo, hi = chunks[c]
            dst = (r + 1) % p
            work[dst][lo:hi] += work[r][lo:hi]

    # Allgather: circulate each completed chunk around the ring.
    for step in range(p - 1):
        for r in range(p):
            c = (r + 1 - step) % p
            lo, hi = chunks[c]
            dst = (r + 1) % p
            work[dst][lo:hi] = work[r][lo:hi]

    chunk_words = n / p
    per_step = comm.p2p(chunk_words) + comm.reduce_work(chunk_words)
    t = 2 * (p - 1) * per_step
    value = work[0]
    return AllreduceResult(value=value, time_seconds=t, n_messages=2 * p * (p - 1))


def allreduce_cost(algorithm: str, p: int, n_words: int, comm: CommModel) -> float:
    """Closed-form virtual cost of an allreduce without executing it."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if n_words < 0:
        raise ValueError(f"n_words must be >= 0, got {n_words}")
    if p == 1:
        return 0.0
    if algorithm == "flat":
        return (p - 1) * (2 * comm.p2p(n_words) + comm.reduce_work(n_words))
    if algorithm == "tree":
        rounds = int(np.ceil(np.log2(p)))
        return 2 * rounds * (comm.p2p(n_words) + comm.reduce_work(n_words))
    if algorithm == "ring":
        chunk = n_words / p
        return 2 * (p - 1) * (comm.p2p(chunk) + comm.reduce_work(chunk))
    raise ValueError(f"unknown algorithm {algorithm!r}; use flat|tree|ring")
