"""Schedulers for heterogeneous MLaroundHPC workloads (§III-A, E9).

"Heterogeneity can lead to difficulty in parallel computing.  This is
extreme for MLaroundHPC as the ML learnt result can be huge factors
(1e5 in our initial example) faster than simulated answers ... One can
address by load balancing the unlearnt and learnt separately."

Schedulers compared:

* :class:`StaticRoundRobin` — oblivious cyclic assignment (the baseline
  that suffers exactly the imbalance the paper warns about),
* :class:`DynamicGreedy` — shared-queue list scheduling, optionally
  sorted longest-processing-time-first (the idealized work-stealing
  limit),
* :class:`SurrogateAwareScheduler` — the paper's suggestion made
  concrete: separate learnt (lookup) from unlearnt (simulation) tasks,
  amortize dispatch overhead by batching the micro-lookups, then
  LPT-balance everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.cluster import ClusterSimulator, ExecutionTrace, TaskSpec
from repro.util.rng import ensure_rng

__all__ = [
    "Scheduler",
    "StaticRoundRobin",
    "DynamicGreedy",
    "SurrogateAwareScheduler",
    "ScheduleReport",
    "pack_lookup_batches",
    "make_mixed_workload",
]


def pack_lookup_batches(
    lookups: list[TaskSpec], n_batches: int, *, kind: str = "lookup"
) -> list[TaskSpec]:
    """Pack micro-lookup tasks into at most ``n_batches`` aggregate tasks.

    Each aggregate carries the summed work of its chunk and a negative
    ``task_id`` so batches are distinguishable from real tasks in traces.
    This is the amortization step shared by the offline
    :class:`SurrogateAwareScheduler` and any online client that wants one
    dispatch per batch instead of one per microsecond-scale lookup.
    """
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    chunks = np.array_split(np.arange(len(lookups)), n_batches)
    return [
        TaskSpec(
            task_id=-(c + 1),
            work=sum(lookups[i].work for i in chunk),
            kind=kind,
        )
        for c, chunk in enumerate(chunks)
        if len(chunk)
    ]


@dataclass
class ScheduleReport:
    """Summary row for the E9 comparison table."""

    scheduler: str
    makespan: float
    utilization: float
    imbalance: float

    @classmethod
    def from_trace(cls, name: str, trace: ExecutionTrace) -> "ScheduleReport":
        return cls(
            scheduler=name,
            makespan=trace.makespan,
            utilization=trace.utilization(),
            imbalance=trace.imbalance(),
        )


class Scheduler:
    """Interface: produce an :class:`ExecutionTrace` for a workload."""

    name = "base"

    def schedule(
        self, tasks: list[TaskSpec], cluster: ClusterSimulator
    ) -> ExecutionTrace:
        raise NotImplementedError


class StaticRoundRobin(Scheduler):
    """Cyclic assignment in arrival order, blind to task cost."""

    name = "static-round-robin"

    def schedule(self, tasks, cluster) -> ExecutionTrace:
        assignment: dict[int, list[TaskSpec]] = {
            w.worker_id: [] for w in cluster.workers
        }
        ids = [w.worker_id for w in cluster.workers]
        for k, task in enumerate(tasks):
            assignment[ids[k % len(ids)]].append(task)
        return cluster.run_assignment(assignment)


class DynamicGreedy(Scheduler):
    """Shared-queue list scheduling (next free worker takes next task).

    ``lpt=True`` sorts the queue longest-first, the classic 4/3-approx
    bound for makespan; requires known (or predicted) durations.
    """

    name = "dynamic-greedy"

    def __init__(self, lpt: bool = False):
        self.lpt = bool(lpt)
        if lpt:
            self.name = "dynamic-greedy-lpt"

    def schedule(self, tasks, cluster) -> ExecutionTrace:
        queue = sorted(tasks, key=lambda t: -t.work) if self.lpt else list(tasks)
        return cluster.run_dynamic(queue)


class SurrogateAwareScheduler(Scheduler):
    """Learnt/unlearnt-separated scheduling (the paper's proposal).

    Learnt (lookup) tasks are first *separated* from unlearnt
    (simulation) tasks and packed into a small number of batch tasks —
    one dispatch per batch instead of one per microsecond-scale lookup.
    The batches then join the simulations in a single LPT list schedule
    over all workers, so no capacity is stranded when either class
    dominates.  Batching is what separation buys: a shared queue that
    interleaves raw lookups with simulations pays the per-task dispatch
    overhead thousands of times for negligible work.
    """

    name = "surrogate-aware"

    def __init__(self, lookup_kind: str = "lookup", batches_per_worker: int = 4):
        if batches_per_worker < 1:
            raise ValueError("batches_per_worker must be >= 1")
        self.lookup_kind = lookup_kind
        self.batches_per_worker = int(batches_per_worker)

    def schedule(self, tasks, cluster) -> ExecutionTrace:
        lookups = [t for t in tasks if t.kind == self.lookup_kind]
        sims = [t for t in tasks if t.kind != self.lookup_kind]
        if not lookups:
            return DynamicGreedy(lpt=True).schedule(tasks, cluster)

        n_batches = max(1, len(cluster.workers) * self.batches_per_worker)
        batched = pack_lookup_batches(lookups, n_batches, kind=self.lookup_kind)
        combined = sorted(sims + batched, key=lambda t: -t.work)
        return cluster.run_dynamic(combined)


def make_mixed_workload(
    n_simulations: int,
    n_lookups: int,
    *,
    sim_work: float = 1.0,
    lookup_work: float = 1e-5,
    sim_cv: float = 0.3,
    rng: int | np.random.Generator | None = None,
) -> list[TaskSpec]:
    """A shuffled MLaroundHPC task mix.

    Simulation durations are log-normal around ``sim_work`` with
    coefficient of variation ``sim_cv``; lookups are ``lookup_work``
    (the 1e5 heterogeneity factor by default).
    """
    if n_simulations < 0 or n_lookups < 0 or n_simulations + n_lookups == 0:
        raise ValueError("need a non-empty workload")
    gen = ensure_rng(rng)
    sigma = float(np.sqrt(np.log1p(sim_cv**2)))
    mu = float(np.log(sim_work)) - 0.5 * sigma * sigma
    tasks: list[TaskSpec] = []
    for i in range(n_simulations):
        tasks.append(
            TaskSpec(task_id=i, work=float(gen.lognormal(mu, sigma)), kind="simulation")
        )
    for j in range(n_lookups):
        tasks.append(
            TaskSpec(task_id=n_simulations + j, work=lookup_work, kind="lookup")
        )
    perm = gen.permutation(len(tasks))
    return [tasks[i] for i in perm]
