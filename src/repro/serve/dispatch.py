"""UQ-gated fallback dispatch onto the simulated worker pool.

When the surrogate's predictive uncertainty exceeds the engine's
tolerance, the serving loop cannot answer from the network — the query
falls back to a real simulation, exactly the unlearnt path of §III-D.
:class:`FallbackPool` wraps the parallel layer's
:class:`~repro.parallel.cluster.OnlineDispatcher` so those fallbacks are
placed online, one at a time as UQ gates reject them, on the next-free
worker of a heterogeneous pool.  The pool's execution trace is the same
:class:`~repro.parallel.cluster.ExecutionTrace` the E9 scheduler
experiments analyse, so serving-time fallback behaviour and offline
scheduling results are directly comparable.
"""

from __future__ import annotations

from repro.parallel.cluster import ExecutionTrace, OnlineDispatcher, TaskSpec, Worker
from repro.parallel.scheduler import ScheduleReport

__all__ = ["FallbackPool"]


class FallbackPool:
    """Online next-free-worker pool for UQ-rejected fallback simulations.

    Parameters
    ----------
    workers:
        The simulated pool; heterogeneous speeds are honoured.
    dispatch_overhead:
        Per-task virtual cost of handing a fallback to a worker.
    """

    def __init__(self, workers: list[Worker], dispatch_overhead: float = 0.0):
        self._dispatcher = OnlineDispatcher(
            workers, dispatch_overhead=dispatch_overhead
        )
        self.n_workers = len(workers)
        self.n_submitted = 0

    def bind_tracer(self, tracer) -> None:
        """Route placements into a duck-typed tracer as dispatch spans."""
        self._dispatcher.tracer = tracer

    def submit(
        self, task_id: int, work: float, release: float
    ) -> tuple[int, float, float]:
        """Run one fallback of ``work`` virtual seconds, runnable at ``release``.

        Returns ``(worker_id, start, end)``; ``end`` is when the response
        can be emitted.  ``work`` is expressed in unit-speed seconds, so a
        worker of speed ``s`` finishes it in ``work / s``.
        """
        self.n_submitted += 1
        return self._dispatcher.submit(
            TaskSpec(task_id=task_id, work=work, kind="fallback"), release=release
        )

    def in_flight(self, now: float) -> int:
        """Fallbacks still running at virtual time ``now``."""
        return self._dispatcher.in_flight(now)

    def next_free_at(self) -> float:
        """Earliest virtual time at which some worker is idle."""
        return self._dispatcher.next_free_at()

    def trace(self) -> ExecutionTrace:
        """The pool's execution trace so far."""
        return self._dispatcher.trace()

    def report(self, name: str = "fallback-pool") -> ScheduleReport:
        """Summary row (makespan / utilization / imbalance) for the pool."""
        return ScheduleReport.from_trace(name, self.trace())
