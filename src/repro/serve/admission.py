"""Admission control: token bucket, bounded queues, overload degradation.

A serving system that accepts everything under overload serves nothing
well.  This module makes the overload policy explicit and deterministic:

* a :class:`TokenBucket` bounds the sustained accept rate (refilled in
  *virtual* time, so admission decisions replay bitwise),
* a bounded queue depth rejects work the backlog could never absorb,
* between "healthy" and "full" sits a *degraded* band in which queries
  are still answered — but with a cheap point prediction and no UQ pass
  (the explicit quality-for-throughput trade the paper's huge
  learnt/unlearnt cost gap makes worthwhile under pressure).

Every decision is one of :data:`DECISION_ACCEPT`, :data:`DECISION_DEGRADE`
or :data:`DECISION_REJECT`; the server turns rejections into explicit
``Rejected`` responses rather than silent drops.
"""

from __future__ import annotations

__all__ = [
    "DECISION_ACCEPT",
    "DECISION_DEGRADE",
    "DECISION_REJECT",
    "TokenBucket",
    "AdmissionController",
]

#: Admit with the full UQ-gated pipeline.
DECISION_ACCEPT = "accept"
#: Admit, but serve a point prediction without UQ (overload band).
DECISION_DEGRADE = "degrade"
#: Refuse: token bucket empty or queue at capacity.
DECISION_REJECT = "reject"


class TokenBucket:
    """Deterministic token bucket refilled along the virtual clock.

    ``rate`` tokens accrue per virtual second up to ``burst``; each
    admitted request spends one.  ``rate=None`` disables rate limiting
    (the bucket always grants).
    """

    def __init__(self, rate: float | None, burst: float = 1.0):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 or None, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = None if rate is None else float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._t_last = 0.0

    def try_acquire(self, now: float) -> bool:
        """Spend one token at virtual time ``now`` if available."""
        if self.rate is None:
            return True
        if now < self._t_last:
            raise ValueError(
                f"token bucket time moved backwards: {self._t_last} -> {now}"
            )
        self._tokens = min(self.burst, self._tokens + (now - self._t_last) * self.rate)
        self._t_last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available at the last refill instant."""
        return self._tokens


class AdmissionController:
    """Bounded-queue admission with an explicit degraded band.

    Parameters
    ----------
    max_depth:
        Queue depth (batcher backlog + in-flight fallbacks) at or above
        which new work is rejected.
    degrade_depth:
        Depth at or above which admitted work is served degraded (point
        prediction, no UQ).  ``None`` disables degradation.
    bucket:
        Optional :class:`TokenBucket` bounding the sustained accept rate.
    """

    def __init__(
        self,
        max_depth: int = 256,
        degrade_depth: int | None = None,
        bucket: TokenBucket | None = None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if degrade_depth is not None and not 0 < degrade_depth <= max_depth:
            raise ValueError(
                f"degrade_depth must be in (0, max_depth], got {degrade_depth}"
            )
        self.max_depth = int(max_depth)
        self.degrade_depth = None if degrade_depth is None else int(degrade_depth)
        self.bucket = bucket
        self.n_accepted = 0
        self.n_degraded = 0
        self.n_rejected = 0

    def admit(self, now: float, depth: int) -> str:
        """Decide the fate of a request arriving at ``now`` with backlog
        ``depth``; returns one of the ``DECISION_*`` constants."""
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if self.bucket is not None and not self.bucket.try_acquire(now):
            self.n_rejected += 1
            return DECISION_REJECT
        if depth >= self.max_depth:
            self.n_rejected += 1
            return DECISION_REJECT
        if self.degrade_depth is not None and depth >= self.degrade_depth:
            self.n_degraded += 1
            return DECISION_DEGRADE
        self.n_accepted += 1
        return DECISION_ACCEPT
