"""repro.serve: deterministic, production-shaped surrogate serving.

The paper's effective-performance argument (§III-D) is about *serving*:
once a surrogate answers most queries, the user-visible speedup is set by
how cheaply lookups are delivered and how gracefully the system falls
back to real simulation when the UQ gate says no.  This package is that
serving layer, built over any trained
:class:`~repro.core.mlaround.MLAroundHPC`:

* :mod:`~repro.serve.batching` — micro-batching of queued queries into
  single vectorized NN + UQ passes (size and max-wait flush policies);
* :mod:`~repro.serve.cache` — quantized-key LRU result cache;
* :mod:`~repro.serve.dispatch` — online fallback dispatch of
  low-confidence queries onto the simulated worker pool;
* :mod:`~repro.serve.admission` — token-bucket + bounded-queue admission
  with explicit rejected/degraded outcomes;
* :mod:`~repro.serve.server` — the discrete-event loop tying the stages
  together on a simulated clock;
* :mod:`~repro.serve.metrics` / :mod:`~repro.serve.loadgen` /
  :mod:`~repro.serve.bench` — per-stage metrics feeding
  :meth:`~repro.core.effective.EffectiveSpeedupModel.from_ledger`, seeded
  open-loop load generation, and the tracked ``BENCH_serve.json`` CLI.

Everything runs on a virtual clock: answers come from the real kernels,
timing comes from the :class:`~repro.serve.cost.ServeCostModel`, and an
identical seeded request stream reproduces responses, ledger and metrics
bitwise.
"""

from repro.serve.admission import (
    DECISION_ACCEPT,
    DECISION_DEGRADE,
    DECISION_REJECT,
    AdmissionController,
    TokenBucket,
)
from repro.serve.batching import FlushDirective, MicroBatcher, PendingQuery
from repro.serve.cache import CachedResult, QuantizedLRUCache
from repro.serve.clock import SimulatedClock
from repro.serve.control import ControlPolicy
from repro.serve.cost import ServeCostModel
from repro.serve.dispatch import FallbackPool
from repro.serve.loadgen import OpenLoopLoadGenerator
from repro.serve.messages import (
    SOURCE_CACHE,
    SOURCE_NONE,
    SOURCE_SIMULATION,
    SOURCE_SURROGATE,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    Request,
    Response,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.server import SurrogateServer

__all__ = [
    "AdmissionController",
    "CachedResult",
    "ControlPolicy",
    "DECISION_ACCEPT",
    "DECISION_DEGRADE",
    "DECISION_REJECT",
    "FallbackPool",
    "FlushDirective",
    "MicroBatcher",
    "OpenLoopLoadGenerator",
    "PendingQuery",
    "QuantizedLRUCache",
    "Request",
    "Response",
    "ServeCostModel",
    "ServeMetrics",
    "SimulatedClock",
    "SOURCE_CACHE",
    "SOURCE_NONE",
    "SOURCE_SIMULATION",
    "SOURCE_SURROGATE",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_SHED",
    "SurrogateServer",
    "TokenBucket",
]
