"""The simulated clock behind the serving subsystem.

Everything in :mod:`repro.serve` runs in *virtual* time: arrivals,
batching deadlines, admission-control refills and fallback-simulation
completions are all coordinates on a :class:`SimulatedClock`, never on
``time.perf_counter``.  That is what makes identical query streams
produce bitwise-identical responses, ledgers and metrics across runs —
the determinism contract the effective-speedup accounting (§III-D)
needs to be trustworthy.
"""

from __future__ import annotations

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotonic virtual clock measured in seconds.

    The clock only moves when the event loop tells it to; it never reads
    wall time.  ``advance_to`` enforces monotonicity so an out-of-order
    event is a loud bug instead of silent time travel.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t``; rejects moving backwards."""
        if t < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested {t}"
            )
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.6g})"
