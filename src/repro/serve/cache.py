"""Quantized-key LRU result cache.

Repeated and near-duplicate queries are a fact of surrogate traffic —
parameter sweeps revisit grid points, interactive users retry the same
configuration.  The cache keys on the query point *quantized* to a
configurable resolution, so two queries within half a quantum of each
other share an entry and the second one never touches the network.  In
effective-performance terms (§III-D) a hit costs a dict probe instead of
an amortized NN flush — the serving stack's cheapest tier.

Eviction is least-recently-used over an :class:`collections.OrderedDict`;
insertion order (not salted hashing) determines victims, so cache
behavior is bitwise reproducible across runs and processes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CachedResult", "QuantizedLRUCache"]

# Quantized coordinates are clipped into the exactly-representable int64
# band so pathological inputs degrade to a shared sentinel key instead of
# overflowing.
_CLIP = 2.0**62


@dataclass(frozen=True)
class CachedResult:
    """One cached answer: outputs plus the uncertainty it was served with."""

    y: np.ndarray
    uncertainty: float
    source: str


class QuantizedLRUCache:
    """LRU cache keyed by quantized query coordinates.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted on overflow.
    quantum:
        Quantization step per coordinate.  Queries mapping to the same
        quantized lattice point share an entry.  Choose it below the
        resolution at which the application distinguishes inputs.
    """

    def __init__(self, capacity: int = 4096, quantum: float = 1e-6):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.capacity = int(capacity)
        self.quantum = float(quantum)
        self._store: OrderedDict[bytes, CachedResult] = OrderedDict()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0

    # ------------------------------------------------------------------
    def key(self, x: np.ndarray) -> bytes:
        """Quantized lattice key for a query point."""
        x = np.asarray(x, dtype=float).ravel()
        if not np.all(np.isfinite(x)):
            raise ValueError("cache keys require finite query coordinates")
        scaled = np.clip(np.round(x / self.quantum), -_CLIP, _CLIP)
        return scaled.astype(np.int64).tobytes()

    def get(self, x: np.ndarray) -> CachedResult | None:
        """Return the cached result for ``x`` (refreshing recency) or None."""
        k = self.key(x)
        hit = self._store.get(k)
        if hit is None:
            self.n_misses += 1
            return None
        self._store.move_to_end(k)
        self.n_hits += 1
        return hit

    def put(self, x: np.ndarray, result: CachedResult) -> None:
        """Insert/refresh the entry for ``x``, evicting LRU on overflow."""
        k = self.key(x)
        if k in self._store:
            self._store.move_to_end(k)
        self._store[k] = result
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.n_evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, x) -> bool:
        return self.key(x) in self._store

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.n_hits + self.n_misses
        return self.n_hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"QuantizedLRUCache(size={len(self)}/{self.capacity}, "
            f"hit_rate={self.hit_rate:.3f})"
        )
