"""The serving event loop: cache → batcher → UQ gate → fallback pool.

:class:`SurrogateServer` wires the serving components around a trained
:class:`~repro.core.mlaround.MLAroundHPC` engine and replays a request
stream on the simulated clock as a discrete-event simulation:

1. **admission** — each arrival passes the token bucket / bounded-queue
   check; rejects get an explicit ``rejected`` response immediately;
2. **cache** — admitted queries probe the quantized LRU cache; hits are
   answered in ``t_cache_hit`` virtual seconds without touching the NN;
3. **batching** — misses join the micro-batch, flushed on fill or on the
   max-wait timer;
4. **gate** — one vectorized :meth:`~repro.core.mlaround.MLAroundHPC.gate_batch`
   call serves the whole flush; confident rows answer from the surrogate,
   degraded rows (overload band) get an un-gated point prediction;
5. **fallback** — rows the gate rejects are dispatched online to the
   simulated worker pool and answered by the *real* simulation (banked,
   retrain cadence honored — "no run is wasted").

Two time domains never mix: answers are computed by the real NN and
simulation kernels, while every latency, queue decision and ledger entry
is virtual time from the :class:`~repro.serve.cost.ServeCostModel`.
Identical seeded request streams therefore produce bitwise-identical
responses, metrics and ledger, while the served numbers remain honest
model outputs rather than wall-clock noise.

When a :class:`~repro.obs.trace.Tracer` is attached, the loop records an
explicit-coordinate span for every stage — admit verdicts, batch
flushes, cache hits, per-row UQ lookups, fallback simulations and
retrains — at the same virtual endpoints the ledger books, one
ledger-kind span per ledger record.  The trace is therefore bitwise
reproducible like everything else, and folding its ledger-kind spans
back through :func:`repro.obs.summary.ledger_from_spans` reconstructs
this run's §III-D inputs from the trace file alone.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.mlaround import MLAroundHPC
from repro.parallel.cluster import Worker
from repro.serve.admission import DECISION_DEGRADE, DECISION_REJECT, AdmissionController
from repro.serve.batching import MicroBatcher, PendingQuery
from repro.serve.cache import CachedResult, QuantizedLRUCache
from repro.serve.clock import SimulatedClock
from repro.serve.control import (
    ACTION_FORCE_FALLBACK,
    ACTION_RETRAIN,
    ACTION_TIGHTEN_GATE,
    ControlPolicy,
)
from repro.serve.cost import ServeCostModel
from repro.serve.dispatch import FallbackPool
from repro.serve.messages import (
    SOURCE_CACHE,
    SOURCE_NONE,
    SOURCE_SIMULATION,
    SOURCE_SURROGATE,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    Request,
    Response,
)
from repro.serve.metrics import ServeMetrics
from repro.util.rng import ensure_rng

__all__ = ["SurrogateServer"]

_ARRIVAL = "arrival"
_TIMER = "timer"
_COMPLETE = "complete"
_CALLBACK = "callback"


class SurrogateServer:
    """Deterministic DES serving loop over a trained MLaroundHPC engine.

    Parameters
    ----------
    engine:
        A trained :class:`~repro.core.mlaround.MLAroundHPC`; its surrogate
        answers flushes and its simulation backs the fallback pool.
    cost:
        Virtual service-time constants (default :class:`ServeCostModel`).
    batcher, cache, admission, pool:
        The pipeline stages; any left ``None`` gets a sensible default
        (batch 64 / 1 ms wait, 4096-entry cache, depth-256 admission,
        4 unit-speed fallback workers).
    rng:
        Seed/generator for the log-normal fallback *durations* (virtual
        time only — answers never depend on it).
    tracer:
        Optional duck-typed :class:`~repro.obs.trace.Tracer`.  The
        server only ever records spans at explicit virtual coordinates,
        so the tracer's own clock is never consulted and tracing cannot
        perturb the run.  The fallback pool's dispatcher is bound to the
        same tracer so placements appear as ``dispatch`` spans.
    monitor:
        Optional duck-typed :class:`~repro.obs.monitor.MonitorSuite`.
        Every span the server itself records is also fed to the suite,
        in record order — exactly the order a trace file replays — and
        any alert the feed fires comes straight back: alerts carrying a
        control action (``retrain`` / ``tighten_gate`` /
        ``force_fallback``) are executed, subject to ``control``, and
        the execution is recorded as a span of its own.  Requires
        ``tracer`` (spans are the monitor's input).
    control:
        Bounds on alert-driven actions
        (:class:`~repro.serve.control.ControlPolicy`; defaults apply
        when ``None``).
    metrics:
        Optional pre-built :class:`~repro.serve.metrics.ServeMetrics` —
        the hook certification runs use to serve with
        ``exact_latency=True`` retention, or to share one registry
        across replicas.  Default: a fresh sketch-mode sink.
    """

    def __init__(
        self,
        engine: MLAroundHPC,
        *,
        cost: ServeCostModel | None = None,
        batcher: MicroBatcher | None = None,
        cache: QuantizedLRUCache | None = None,
        admission: AdmissionController | None = None,
        pool: FallbackPool | None = None,
        rng: int | np.random.Generator | None = None,
        tracer=None,
        monitor=None,
        control: ControlPolicy | None = None,
        metrics: ServeMetrics | None = None,
    ):
        self.engine = engine
        self.cost = cost or ServeCostModel()
        self.batcher = batcher or MicroBatcher()
        self.cache = cache or QuantizedLRUCache()
        self.admission = admission or AdmissionController()
        self.pool = pool or FallbackPool([Worker(i) for i in range(4)])
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.clock = SimulatedClock()
        self.tracer = tracer
        if monitor is not None and tracer is None:
            raise ValueError("monitor requires a tracer (spans are its feed)")
        self.monitor = monitor
        self.control = control or ControlPolicy()
        if tracer is not None:
            self.pool.bind_tracer(tracer)
        # One persistent stream so fallback durations are reproducible
        # across the whole run regardless of how flushes group them.
        self._dur_rng = ensure_rng(rng)
        self._nn_free_at = 0.0
        self._seq = itertools.count()
        self._events: list[tuple[float, int, str, object]] = []
        self._served_once = False
        self._in_control = False
        self._control_retrains = 0
        self._force_fallback_until = float("-inf")

    # ------------------------------------------------------------------
    def serve(self, requests: list[Request]) -> list[Response]:
        """Replay a request stream; returns responses sorted by query id.

        One server instance serves one stream: the simulated clock only
        moves forward, so call :meth:`serve` once per
        :class:`SurrogateServer`.
        """
        if self._served_once:
            raise RuntimeError(
                "SurrogateServer.serve is one-shot; build a fresh server "
                "per request stream"
            )
        self._served_once = True
        if not self.engine.is_trained:
            raise RuntimeError("serving requires a trained engine (bootstrap first)")
        responses: list[Response] = []
        ordered = sorted(requests, key=lambda r: (r.t_arrival, r.query_id))
        root = None
        if self.tracer is not None:
            t0 = ordered[0].t_arrival if ordered else 0.0
            root = self.tracer.open_span(
                "serve",
                "serve",
                t_start=t0,
                attrs={"n_requests": len(ordered), "t_seq": self.cost.t_simulate},
            )
        try:
            for req in ordered:
                self._push(req.t_arrival, _ARRIVAL, req)
            while self._events:
                t, _, kind, payload = heapq.heappop(self._events)
                self.clock.advance_to(t)
                if kind == _ARRIVAL:
                    self._on_arrival(payload, t)
                elif kind == _TIMER:
                    if payload == self.batcher.epoch:
                        self._flush(t, timer=True)
                elif kind == _CALLBACK:
                    payload(self, t)
                else:  # _COMPLETE
                    response, cache_x, cached = payload
                    if cache_x is not None:
                        self.cache.put(cache_x, cached)
                    self.metrics.observe(response)
                    responses.append(response)
        finally:
            # Close the root span even when a handler raises so the
            # partial trace stays well-formed for replay.
            if root is not None:
                self._emit(self.tracer.close_span(root, t_end=self.clock.now))
        return sorted(responses, key=lambda r: r.query_id)

    def schedule(self, t: float, callback) -> None:
        """Run ``callback(server, t)`` at virtual time ``t`` during serve.

        The bench layer's fault/drift-injection hook: schedule a state
        perturbation (e.g. biasing the surrogate's output scaler) before
        calling :meth:`serve` and it fires deterministically between the
        events straddling ``t``.
        """
        self._push(float(t), _CALLBACK, callback)

    # ------------------------------------------------------------------
    def _push(self, t: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (t, next(self._seq), kind, payload))

    def _emit(self, span) -> None:
        """Feed one just-recorded span to the monitor suite and react.

        Spans reach the suite in the tracer's record order — the same
        order :func:`repro.obs.export.write_trace` serializes and a
        replay feeds — which is what makes the live alert log and the
        trace-replayed one byte-identical.  Alerts fired while a control
        action is itself being executed are logged but not re-acted on,
        so the loop cannot recurse.
        """
        if self.monitor is None or span is None:
            return
        fired = self.monitor.on_span(span)
        if fired and not self._in_control:
            self._apply_alerts(fired, span.t_end)

    def _apply_alerts(self, alerts, t: float) -> None:
        self._in_control = True
        try:
            for alert in alerts:
                action = getattr(alert, "action", None)
                if action == ACTION_RETRAIN:
                    self._control_retrain(alert, t)
                elif action == ACTION_TIGHTEN_GATE:
                    self._control_tighten(alert, t)
                elif action == ACTION_FORCE_FALLBACK:
                    self._control_force_fallback(alert, t)
        finally:
            self._in_control = False

    def _control_retrain(self, alert, t: float) -> None:
        """Execute a monitor-confirmed early retrain (MLControl)."""
        if self._control_retrains >= self.control.max_retrains:
            return
        if not self.engine.retrain_now():
            return
        self._control_retrains += 1
        self.metrics.ledger.record("train", self.cost.t_retrain)
        t_end = t + self.cost.t_retrain
        self._nn_free_at = max(self._nn_free_at, t_end)
        if self.tracer is not None:
            self._emit(
                self.tracer.record(
                    "control_retrain", "train", t, t_end,
                    attrs={
                        "trigger": f"{alert.source}/{alert.kind}",
                        "n_control_retrains": int(self._control_retrains),
                    },
                )
            )

    def _control_tighten(self, alert, t: float) -> None:
        """Tighten the UQ admission gate in response to an alert."""
        old = self.engine.tolerance
        if old is None:
            return
        new = self.control.tightened(old)
        if new >= old:
            return
        self.engine.set_tolerance(new)
        if self.tracer is not None:
            self._emit(
                self.tracer.record(
                    "control_tighten", "control", t, t,
                    attrs={
                        "trigger": f"{alert.source}/{alert.kind}",
                        "old_tolerance": float(old),
                        "new_tolerance": float(new),
                    },
                )
            )

    def _control_force_fallback(self, alert, t: float) -> None:
        """Bypass the surrogate for a hold period (circuit breaker)."""
        until = t + self.control.fallback_hold_s
        if until <= self._force_fallback_until:
            return
        self._force_fallback_until = until
        if self.tracer is not None:
            self._emit(
                self.tracer.record(
                    "control_fallback", "control", t, until,
                    attrs={"trigger": f"{alert.source}/{alert.kind}"},
                )
            )

    def _complete(
        self,
        response: Response,
        *,
        cache_x: np.ndarray | None = None,
        cached: CachedResult | None = None,
    ) -> None:
        self._push(response.t_done, _COMPLETE, (response, cache_x, cached))

    @staticmethod
    def _tag(attrs: dict, req: Request) -> dict:
        """Attach the request's tenant label to span attrs (when tagged)."""
        if req.tenant is not None:
            attrs["tenant"] = req.tenant
        return attrs

    def _on_arrival(self, req: Request, now: float) -> None:
        depth = self.batcher.size + self.pool.in_flight(now)
        decision = self.admission.admit(now, depth)
        if decision == DECISION_REJECT:
            if self.tracer is not None:
                self._emit(
                    self.tracer.record(
                        "reject", "admit", now, now,
                        attrs=self._tag(
                            {"query_id": int(req.query_id), "depth": int(depth)}, req
                        ),
                    )
                )
            self._complete(
                Response(
                    query_id=req.query_id,
                    status=STATUS_REJECTED,
                    source=SOURCE_NONE,
                    t_arrival=req.t_arrival,
                    t_done=now,
                    tenant=req.tenant,
                )
            )
            return
        hit = self.cache.get(req.x)
        if hit is not None:
            self.metrics.ledger.record("cache", self.cost.t_cache_hit)
            if self.tracer is not None:
                self._emit(
                    self.tracer.record(
                        "cache_hit", "cache", now, now + self.cost.t_cache_hit,
                        attrs=self._tag(
                            {
                                "query_id": int(req.query_id),
                                "lat": now + self.cost.t_cache_hit - req.t_arrival,
                            },
                            req,
                        ),
                    )
                )
            self._complete(
                Response(
                    query_id=req.query_id,
                    status=STATUS_OK,
                    source=SOURCE_CACHE,
                    t_arrival=req.t_arrival,
                    t_done=now + self.cost.t_cache_hit,
                    y=hit.y,
                    uncertainty=hit.uncertainty,
                    x=req.x,
                    tenant=req.tenant,
                )
            )
            return
        pending = PendingQuery(request=req, degraded=decision == DECISION_DEGRADE)
        directive = self.batcher.add(pending, now)
        if directive.flush_now:
            self._flush(now)
        elif directive.arm_timer_at is not None:
            self._push(directive.arm_timer_at, _TIMER, directive.epoch)

    # ------------------------------------------------------------------
    def _flush(self, now: float, *, timer: bool = False) -> None:
        batch = self.batcher.drain(timer=timer)
        if not batch:
            return
        service_start = max(now, self._nn_free_at)
        live: list[PendingQuery] = []
        for p in batch:
            deadline = p.request.deadline
            if deadline is not None and deadline < service_start:
                if self.tracer is not None:
                    self._emit(
                        self.tracer.record(
                            "shed", "shed", now, now,
                            attrs=self._tag(
                                {"query_id": int(p.request.query_id)}, p.request
                            ),
                        )
                    )
                self._complete(
                    Response(
                        query_id=p.request.query_id,
                        status=STATUS_SHED,
                        source=SOURCE_NONE,
                        t_arrival=p.request.t_arrival,
                        t_done=now,
                        tenant=p.request.tenant,
                    )
                )
            else:
                live.append(p)
        if not live:
            return
        normal = [p for p in live if not p.degraded]
        degraded = [p for p in live if p.degraded]
        flush_cost = self.cost.flush_cost(len(normal), len(degraded))
        t_done = service_start + flush_cost
        self._nn_free_at = t_done
        flush_sid = None
        if self.tracer is not None:
            flush_sid = self.tracer.open_span(
                "flush",
                "batch",
                t_start=service_start,
                attrs={
                    "n_normal": len(normal),
                    "n_degraded": len(degraded),
                    "timer": bool(timer),
                },
            )

        try:
            if normal:
                X = np.stack([p.request.x for p in normal])
                mean, std, std_norm, confident = self.engine.gate_batch(X)
                if service_start < self._force_fallback_until:
                    # Circuit breaker armed: the gate still ran (its cost is
                    # real and its mean/std feed the calibration probes), but
                    # no surrogate answer is trusted.
                    confident = np.zeros(len(normal), dtype=bool)
                uq_share = self.cost.flush_cost(len(normal)) / len(normal)
                fallbacks = [i for i in range(len(normal)) if not confident[i]]
                durations = self.cost.sample_sim_durations(len(fallbacks), self._dur_rng)
                for i, p in enumerate(normal):
                    self.metrics.ledger.record("lookup", uq_share)
                    if self.tracer is not None:
                        row_attrs = self._tag(
                            {
                                "query_id": int(normal[i].request.query_id),
                                "confident": bool(confident[i]),
                            },
                            normal[i].request,
                        )
                        if confident[i]:
                            row_attrs["lat"] = t_done - p.request.t_arrival
                        self._emit(
                            self.tracer.record(
                                "uq_row", "lookup", service_start, service_start + uq_share,
                                attrs=row_attrs,
                            )
                        )
                    if confident[i]:
                        self._complete(
                            Response(
                                query_id=p.request.query_id,
                                status=STATUS_OK,
                                source=SOURCE_SURROGATE,
                                t_arrival=p.request.t_arrival,
                                t_done=t_done,
                                y=mean[i],
                                uncertainty=float(std_norm[i]),
                                batch_size=len(normal),
                                x=p.request.x,
                                tenant=p.request.tenant,
                            ),
                            cache_x=p.request.x,
                            cached=CachedResult(
                                y=mean[i],
                                uncertainty=float(std_norm[i]),
                                source=SOURCE_SURROGATE,
                            ),
                        )
                for j, i in enumerate(fallbacks):
                    self._fallback(
                        normal[i],
                        float(durations[j]),
                        t_done,
                        len(normal),
                        mean_row=mean[i],
                        std_row=std[i],
                    )

            if degraded:
                y_degraded = self.engine.surrogate.predict_stable(
                    np.stack([p.request.x for p in degraded])
                )
                for i, p in enumerate(degraded):
                    self.metrics.ledger.record("lookup", self.cost.t_point_row)
                    if self.tracer is not None:
                        self._emit(
                            self.tracer.record(
                                "degraded_row",
                                "lookup",
                                service_start,
                                service_start + self.cost.t_point_row,
                                attrs=self._tag(
                                    {
                                        "query_id": int(p.request.query_id),
                                        "lat": t_done - p.request.t_arrival,
                                    },
                                    p.request,
                                ),
                            )
                        )
                    self._complete(
                        Response(
                            query_id=p.request.query_id,
                            status=STATUS_DEGRADED,
                            source=SOURCE_SURROGATE,
                            t_arrival=p.request.t_arrival,
                            t_done=t_done,
                            y=y_degraded[i],
                            batch_size=len(live),
                            x=p.request.x,
                            tenant=p.request.tenant,
                        )
                    )
        finally:
            if flush_sid is not None:
                self._emit(self.tracer.close_span(flush_sid, t_end=t_done))

    def _fallback(
        self,
        p: PendingQuery,
        work: float,
        release: float,
        batch_size: int,
        *,
        mean_row: np.ndarray | None = None,
        std_row: np.ndarray | None = None,
    ) -> None:
        """Dispatch one gate-rejected query to the simulated worker pool.

        ``mean_row`` / ``std_row`` are the gate's prediction and raw UQ
        std for this query; paired with the simulated truth they form a
        free calibration probe, attached to the fallback span as the
        ``cal`` attr for the drift monitor.
        """
        worker_id, start, end = self.pool.submit(
            task_id=p.request.query_id, work=work, release=release
        )
        trained_before = self.engine.ledger.count("train")
        outcome = self.engine.force_simulate(p.request.x)
        self.metrics.ledger.record("simulate", end - start)
        if self.tracer is not None:
            attrs = self._tag(
                {
                    "query_id": int(p.request.query_id),
                    "worker_id": int(worker_id),
                    "lat": end - p.request.t_arrival,
                },
                p.request,
            )
            if (
                mean_row is not None
                and std_row is not None
                and np.all(np.isfinite(mean_row))
                and np.all(np.isfinite(std_row))
                and np.all(np.isfinite(outcome.outputs))
            ):
                attrs["cal"] = {
                    "mean": [float(v) for v in mean_row],
                    "std": [float(v) for v in std_row],
                    "truth": [float(v) for v in outcome.outputs],
                }
            self._emit(self.tracer.record("fallback", "simulate", start, end, attrs=attrs))
        if self.engine.ledger.count("train") > trained_before:
            self.metrics.ledger.record("train", self.cost.t_retrain)
            if self.tracer is not None:
                self._emit(
                    self.tracer.record(
                        "retrain", "train", end, end + self.cost.t_retrain,
                        attrs={"n_banked": int(self.engine.ledger.count("train"))},
                    )
                )
        self._complete(
            Response(
                query_id=p.request.query_id,
                status=STATUS_OK,
                source=SOURCE_SIMULATION,
                t_arrival=p.request.t_arrival,
                t_done=end,
                y=outcome.outputs,
                batch_size=batch_size,
                worker_id=worker_id,
                x=p.request.x,
                tenant=p.request.tenant,
            ),
            cache_x=p.request.x,
            cached=CachedResult(
                y=outcome.outputs,
                uncertainty=float("nan"),
                source=SOURCE_SIMULATION,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"SurrogateServer(engine={self.engine!r}, "
            f"served={self.metrics.n_requests})"
        )
