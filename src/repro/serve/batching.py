"""The micro-batcher: coalesce queued queries into vectorized flushes.

The single biggest serving lever this codebase has is that one
``predict_with_uncertainty`` call over a 64-row matrix costs barely more
than over 1 row (the MC-sample forward passes dominate and are shared).
The batcher buffers admitted queries and flushes them as one batch under
two policies:

* **size**: the buffer reached ``max_batch_size`` — flush immediately;
* **wait**: ``max_wait`` virtual seconds elapsed since the first query
  entered the current batch — flush whatever is there, bounding the
  latency a lone query can pay for the amortization.

Because the UQ backends are bitwise row-stable, *which* queries end up
sharing a flush cannot change any answer — batching is purely a
performance decision, never a numerical one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.messages import Request

__all__ = ["PendingQuery", "FlushDirective", "MicroBatcher"]


@dataclass(frozen=True)
class PendingQuery:
    """A buffered request plus its admission verdict."""

    request: Request
    degraded: bool = False


@dataclass(frozen=True)
class FlushDirective:
    """What the event loop should do after an :meth:`MicroBatcher.add`.

    ``flush_now`` — the batch hit ``max_batch_size``; drain immediately.
    ``arm_timer_at`` — first query of a fresh batch: schedule a flush at
    this virtual time (``None`` when no timer is needed).  ``epoch``
    identifies the batch the timer belongs to; a timer whose epoch no
    longer matches the batcher's is stale and must be ignored.
    """

    flush_now: bool
    arm_timer_at: float | None
    epoch: int


class MicroBatcher:
    """Coalesces queries into batches under size and max-wait policies.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many queries are buffered.
    max_wait:
        Maximum virtual seconds the *first* query of a batch may wait
        before the batch is flushed regardless of fill.
    """

    def __init__(self, max_batch_size: int = 64, max_wait: float = 1e-3):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)
        self._buffer: list[PendingQuery] = []
        self._epoch = 0
        self.n_size_flushes = 0
        self.n_timer_flushes = 0
        self.n_rows_flushed = 0
        self.n_flushes = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Queries currently buffered."""
        return len(self._buffer)

    @property
    def epoch(self) -> int:
        """Identifier of the batch currently being assembled."""
        return self._epoch

    def add(self, pending: PendingQuery, now: float) -> FlushDirective:
        """Buffer one admitted query; report what the event loop must do."""
        self._buffer.append(pending)
        if len(self._buffer) >= self.max_batch_size:
            return FlushDirective(flush_now=True, arm_timer_at=None, epoch=self._epoch)
        if len(self._buffer) == 1:
            return FlushDirective(
                flush_now=False, arm_timer_at=now + self.max_wait, epoch=self._epoch
            )
        return FlushDirective(flush_now=False, arm_timer_at=None, epoch=self._epoch)

    def drain(self, *, timer: bool = False) -> list[PendingQuery]:
        """Remove and return the current batch, starting a new epoch.

        ``timer`` records which flush policy fired (for the metrics'
        batch-fill accounting); draining an empty buffer returns ``[]``
        without consuming an epoch.
        """
        if not self._buffer:
            return []
        batch = self._buffer
        self._buffer = []
        self._epoch += 1
        self.n_flushes += 1
        self.n_rows_flushed += len(batch)
        if timer:
            self.n_timer_flushes += 1
        else:
            self.n_size_flushes += 1
        return batch

    @property
    def mean_batch_size(self) -> float:
        """Mean rows per flush so far (0.0 before the first flush)."""
        return self.n_rows_flushed / self.n_flushes if self.n_flushes else 0.0
