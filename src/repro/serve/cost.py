"""Virtual service-time constants for the serving loop.

The serving layer separates *what* is computed (real vectorized NN
forwards, real fallback simulations, banked runs) from *how long it
counts as taking* (virtual seconds on the simulated clock).  A
:class:`ServeCostModel` holds the per-stage constants; the bench CLI can
:meth:`~ServeCostModel.calibrate` them against wall-clock
micro-measurements of the actual kernels so the modeled system tracks
the machine, while served runs stay deterministic because they only ever
consume the constants.

The cost structure mirrors §III-A/§III-D: one UQ flush costs a fixed
``t_batch_overhead`` (the MC-sample forward passes exist whether the
batch holds 1 row or 64) plus a small marginal ``t_per_row_uq``, so the
amortized per-query lookup cost falls roughly linearly with batch fill —
exactly the dispatch-amortization argument the surrogate-aware scheduler
makes for learnt/unlearnt separation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

__all__ = ["ServeCostModel"]


@dataclass(frozen=True)
class ServeCostModel:
    """Virtual per-stage service times (seconds) for the serving loop.

    Attributes
    ----------
    t_cache_hit:
        Answering from the quantized LRU cache (a dict probe).
    t_batch_overhead:
        Fixed cost of one UQ flush — the batch-size-independent part of
        the MC/ensemble forward passes.
    t_per_row_uq:
        Marginal cost per queued row inside a UQ flush.
    t_point_row:
        Per-row cost of a degraded (single deterministic forward, no UQ)
        answer riding along with a flush.
    t_simulate:
        Mean virtual cost of one fallback simulation.
    sim_cv:
        Coefficient of variation of the log-normal fallback-simulation
        durations (the §III-A heterogeneity knob; 0 = constant cost).
    t_retrain:
        Virtual cost booked under ``"train"`` when a fallback run trips
        the retrain cadence.
    """

    t_cache_hit: float = 2e-6
    t_batch_overhead: float = 1e-3
    t_per_row_uq: float = 2e-5
    t_point_row: float = 2e-6
    t_simulate: float = 0.05
    sim_cv: float = 0.3
    t_retrain: float = 0.5

    def __post_init__(self) -> None:
        check_positive("t_cache_hit", self.t_cache_hit)
        check_positive("t_batch_overhead", self.t_batch_overhead)
        check_positive("t_per_row_uq", self.t_per_row_uq)
        check_positive("t_point_row", self.t_point_row)
        check_positive("t_simulate", self.t_simulate)
        check_positive("sim_cv", self.sim_cv, strict=False)
        check_positive("t_retrain", self.t_retrain, strict=False)

    # ------------------------------------------------------------------
    def flush_cost(self, n_uq_rows: int, n_point_rows: int = 0) -> float:
        """Virtual service time of one flush over the queued rows."""
        if n_uq_rows < 0 or n_point_rows < 0:
            raise ValueError("row counts must be >= 0")
        cost = 0.0
        if n_uq_rows:
            cost += self.t_batch_overhead + n_uq_rows * self.t_per_row_uq
        if n_point_rows:
            cost += n_point_rows * self.t_point_row
        return cost

    def amortized_lookup(self, batch_size: float) -> float:
        """Per-query lookup cost at a given mean UQ batch size."""
        check_positive("batch_size", batch_size)
        return self.t_batch_overhead / batch_size + self.t_per_row_uq

    def sample_sim_durations(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw ``n`` log-normal fallback durations with mean ``t_simulate``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        gen = ensure_rng(rng)
        if self.sim_cv == 0.0:
            return np.full(n, self.t_simulate)
        sigma = float(np.sqrt(np.log1p(self.sim_cv**2)))
        mu = float(np.log(self.t_simulate)) - 0.5 * sigma * sigma
        return gen.lognormal(mu, sigma, n)

    # ------------------------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        surrogate,
        *,
        batch_size: int = 64,
        rounds: int = 5,
        t_simulate: float = 0.05,
        sim_cv: float = 0.3,
        t_retrain: float = 0.5,
        rng: int | np.random.Generator | None = None,
    ) -> "ServeCostModel":
        """Measure the NN-side constants on the actual kernels.

        Wall-clock timings (best-of-``rounds``) of a batch-1 UQ pass, a
        batch-``batch_size`` UQ pass, a point-prediction pass and a dict
        probe yield ``t_batch_overhead``, ``t_per_row_uq``, ``t_point_row``
        and ``t_cache_hit``.  Calibration intentionally reads wall time —
        it happens *outside* any served run; the returned constants are
        what the deterministic event loop consumes.  The simulation-side
        constants cannot be inferred from the surrogate and are passed
        through.
        """
        if batch_size < 2:
            raise ValueError(f"batch_size must be >= 2, got {batch_size}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        gen = ensure_rng(rng)
        x1 = gen.normal(size=(1, surrogate.in_dim))
        xb = gen.normal(size=(batch_size, surrogate.in_dim))

        def best_of(fn) -> float:
            fn()
            best = float("inf")
            for _ in range(rounds):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        t_one = best_of(lambda: surrogate.predict_with_uncertainty(x1))
        t_batch = best_of(lambda: surrogate.predict_with_uncertainty(xb))
        t_point = best_of(lambda: surrogate.predict_stable(xb)) / batch_size
        probe = {b"k": 0}
        t_probe = best_of(lambda: probe.get(b"k"))
        per_row = max((t_batch - t_one) / (batch_size - 1), 1e-9)
        overhead = max(t_one - per_row, 1e-9)
        return cls(
            t_cache_hit=max(t_probe, 1e-9),
            t_batch_overhead=overhead,
            t_per_row_uq=per_row,
            t_point_row=max(t_point, 1e-9),
            t_simulate=t_simulate,
            sim_cv=sim_cv,
            t_retrain=t_retrain,
        )
