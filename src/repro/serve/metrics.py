"""Per-stage serving metrics and the measured effective-speedup bridge.

:class:`ServeMetrics` is the single sink every stage of the serving loop
reports into: admission verdicts, per-source latencies, batch fill, cache
hits, and — most importantly — a virtual-time
:class:`~repro.util.timing.WallClockLedger` using the same
``simulate`` / ``train`` / ``lookup`` categories as
:class:`~repro.core.mlaround.MLaroundHPC`.  That shared vocabulary is the
point: :meth:`effective_model` hands the served ledger straight to
:meth:`~repro.core.effective.EffectiveSpeedupModel.from_ledger`, so the
*measured* effective speedup of a serving run is computed by the exact
§III-D machinery the analytic experiments use, and the two can be
compared number-for-number at the same lookup fraction.

Counters live in a :class:`~repro.obs.metrics.MetricRegistry` (the
status/source tallies are ``serve.status.*`` / ``serve.source.*``
counters, latencies feed ``serve.latency.*`` histograms, and the ledger
is constructed bound to the registry so the two can never drift); the
dict-shaped accessors are thin views over those metrics.

All latencies are virtual seconds; percentile aggregation uses
``np.percentile`` over the recorded populations, never sampling, so a
replayed run reports bitwise-identical metrics.  The registry histograms
are the mergeable fixed-bucket summaries of the same populations.
"""

from __future__ import annotations

import numpy as np

from repro.core.effective import EffectiveSpeedupModel
from repro.obs.metrics import MetricRegistry
from repro.serve.messages import (
    SOURCE_CACHE,
    SOURCE_SIMULATION,
    SOURCE_SURROGATE,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    Response,
)
from repro.util.timing import WallClockLedger

__all__ = ["ServeMetrics"]

_STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_REJECTED, STATUS_SHED)
_SOURCES = (SOURCE_CACHE, SOURCE_SURROGATE, SOURCE_SIMULATION)


class ServeMetrics:
    """Accumulates per-stage counters, latency populations and the ledger.

    Parameters
    ----------
    registry:
        Metrics sink shared with the rest of the run; a private
        :class:`~repro.obs.metrics.MetricRegistry` is created when not
        given.
    """

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.ledger = WallClockLedger(registry=self.registry, prefix="serve.ledger")
        self._latency: dict[str, list[float]] = {s: [] for s in _SOURCES}
        self.t_first_arrival = float("inf")
        self.t_last_done = 0.0
        for status in _STATUSES:
            self.registry.counter(f"serve.status.{status}")
        for source in _SOURCES:
            self.registry.counter(f"serve.source.{source}")

    # ------------------------------------------------------------------
    def observe(self, response: Response) -> None:
        """Fold one response into the counters."""
        if response.status not in _STATUSES:
            raise ValueError(f"unknown status {response.status!r}")
        self.registry.counter("serve.requests").inc()
        self.registry.counter(f"serve.status.{response.status}").inc()
        self.t_first_arrival = min(self.t_first_arrival, response.t_arrival)
        self.t_last_done = max(self.t_last_done, response.t_done)
        if response.served:
            self.registry.counter(f"serve.source.{response.source}").inc()
            self._latency[response.source].append(response.latency)
            self.registry.histogram(
                f"serve.latency.{response.source}"
            ).observe(response.latency)

    # ------------------------------------------------------------------
    @property
    def status_counts(self) -> dict[str, int]:
        """Responses per admission status (view over the registry)."""
        return {
            s: int(self.registry.counter(f"serve.status.{s}").value)
            for s in _STATUSES
        }

    @property
    def source_counts(self) -> dict[str, int]:
        """Served responses per answer source (view over the registry)."""
        return {
            s: int(self.registry.counter(f"serve.source.{s}").value)
            for s in _SOURCES
        }

    @property
    def n_requests(self) -> int:
        """Total responses observed."""
        return int(self.registry.counter("serve.requests").value)

    @property
    def n_served(self) -> int:
        """Requests that received an answer (ok or degraded)."""
        counts = self.status_counts
        return counts[STATUS_OK] + counts[STATUS_DEGRADED]

    @property
    def duration(self) -> float:
        """Virtual span from first arrival to last completion."""
        if self.n_requests == 0:
            return 0.0
        return self.t_last_done - self.t_first_arrival

    def throughput(self) -> float:
        """Served responses per virtual second."""
        return self.n_served / self.duration if self.duration > 0 else 0.0

    def latencies(self, source: str | None = None) -> np.ndarray:
        """Latency population for one source, or all served traffic."""
        if source is None:
            pop = [v for vals in self._latency.values() for v in vals]
        else:
            if source not in self._latency:
                raise ValueError(f"unknown source {source!r}")
            pop = self._latency[source]
        return np.asarray(pop, dtype=float)

    def percentile(self, q: float, source: str | None = None) -> float:
        """Latency percentile ``q`` (in [0, 100]) over served traffic.

        Returns NaN for an empty population (e.g. a source filter that
        matched nothing); rejects ``q`` outside [0, 100] rather than
        letting ``np.percentile`` raise from deep inside.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        pop = self.latencies(source)
        if pop.size == 0:
            return float("nan")
        return float(np.percentile(pop, q))

    @property
    def lookup_fraction(self) -> float:
        """``N_lookup / (N_lookup + N_train)`` as the §III-D model counts it.

        Counted from ledger events: every UQ gate evaluation is a
        ``lookup`` record and every fallback a ``simulate`` record — a
        gate check that fails and falls back contributes one of each,
        matching :class:`~repro.core.mlaround.MLAroundHPC` per-query
        semantics.  Cache hits are excluded: a hit re-serves an answer
        whose cost was already booked when it was first computed, so
        counting it again would double-credit the surrogate.
        """
        n_lookup = self.ledger.count("lookup")
        n_sim = self.ledger.count("simulate")
        total = n_lookup + n_sim
        return n_lookup / total if total else 0.0

    # ------------------------------------------------------------------
    def effective_model(self, *, t_seq: float | None = None) -> EffectiveSpeedupModel:
        """§III-D model built from this run's measured ledger."""
        return EffectiveSpeedupModel.from_ledger(self.ledger, t_seq=t_seq)

    def measured_effective_speedup(self, *, t_seq: float | None = None) -> float:
        """Effective speedup of this run at its realized mix.

        Evaluates the measured model at the run's own lookup/simulate
        counts — "how much faster than all-sequential-simulation was the
        traffic we actually served".
        """
        model = self.effective_model(t_seq=t_seq)
        return model.speedup(
            n_lookup=self.ledger.count("lookup"),
            n_train=self.ledger.count("simulate"),
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready snapshot of the run."""
        out: dict = {
            "n_requests": self.n_requests,
            "n_served": self.n_served,
            "duration": self.duration,
            "throughput": self.throughput(),
            "status_counts": dict(self.status_counts),
            "source_counts": dict(self.source_counts),
            "lookup_fraction": self.lookup_fraction,
            "latency": {},
            "ledger": {
                name: {
                    "count": self.ledger.count(name),
                    "total": self.ledger.total(name),
                    "mean": self.ledger.mean(name),
                }
                for name in ("lookup", "simulate", "train", "cache")
                if self.ledger.count(name)
            },
        }
        for source in (None, *_SOURCES):
            pop = self.latencies(source)
            if pop.size == 0:
                continue
            out["latency"][source or "all"] = {
                "n": int(pop.size),
                "mean": float(pop.mean()),
                "p50": float(np.percentile(pop, 50)),
                "p99": float(np.percentile(pop, 99)),
                "max": float(pop.max()),
            }
        return out
