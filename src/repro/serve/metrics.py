"""Per-stage serving metrics and the measured effective-speedup bridge.

:class:`ServeMetrics` is the single sink every stage of the serving loop
reports into: admission verdicts, per-source latencies, batch fill, cache
hits, and — most importantly — a virtual-time
:class:`~repro.util.timing.WallClockLedger` using the same
``simulate`` / ``train`` / ``lookup`` categories as
:class:`~repro.core.mlaround.MLaroundHPC`.  That shared vocabulary is the
point: :meth:`effective_model` hands the served ledger straight to
:meth:`~repro.core.effective.EffectiveSpeedupModel.from_ledger`, so the
*measured* effective speedup of a serving run is computed by the exact
§III-D machinery the analytic experiments use, and the two can be
compared number-for-number at the same lookup fraction.

Counters live in a :class:`~repro.obs.metrics.MetricRegistry` (the
status/source tallies are ``serve.status.*`` / ``serve.source.*``
counters, latencies feed ``serve.latency.*``
:class:`~repro.obs.sketch.QuantileSketch` entries, and the ledger is
constructed bound to the registry so the two can never drift); the
dict-shaped accessors are thin views over those metrics.

All latencies are virtual seconds.  Percentiles come from the per-source
quantile sketches: O(log range) memory independent of request count,
mergeable across replicas, and within the configured relative error
``latency_alpha`` of the exact population percentile — never sampling,
so a replayed run reports bitwise-identical metrics.  The opt-in
``exact_latency`` mode additionally retains the full per-source sample
lists and routes :meth:`percentile` through the shared exact helper
(:func:`repro.obs.sketch.exact_quantile`); it exists so tests and
certification passes can compare the sketch against ground truth, not
for production streams.
"""

from __future__ import annotations

from repro.core.effective import EffectiveSpeedupModel
from repro.obs.metrics import MetricRegistry, flat_metric_name
from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch, exact_quantile
from repro.obs.timeseries import (
    KIND_COUNTER,
    KIND_SKETCH,
    TimeSeries,
    WindowSpec,
)
from repro.serve.messages import (
    SOURCE_CACHE,
    SOURCE_SIMULATION,
    SOURCE_SURROGATE,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    Response,
)
from repro.util.timing import WallClockLedger

__all__ = ["ServeMetrics", "SCORECARD_QUANTILES"]

_STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_REJECTED, STATUS_SHED)
_SOURCES = (SOURCE_CACHE, SOURCE_SURROGATE, SOURCE_SIMULATION)

#: Tail scorecard columns: (label, quantile) pairs every serving run
#: reports per source, all straight off the mergeable sketches.
SCORECARD_QUANTILES = (
    ("p50_s", 0.50),
    ("p90_s", 0.90),
    ("p99_s", 0.99),
    ("p999_s", 0.999),
)


class ServeMetrics:
    """Accumulates per-stage counters, latency sketches and the ledger.

    Parameters
    ----------
    registry:
        Metrics sink shared with the rest of the run; a private
        :class:`~repro.obs.metrics.MetricRegistry` is created when not
        given.
    exact_latency:
        Certification mode: additionally retain every latency sample
        per source (O(requests) memory) and answer :meth:`percentile`
        from the exact population instead of the sketch.  Default off —
        production streams are unbounded and must stay O(log range).
    latency_alpha:
        Guaranteed relative error of the latency sketches.
    window_s:
        Tumbling-window width (virtual seconds) of the windowed series
        every response is additionally folded into: per-window response
        counters and latency sketches, plus labeled per-source and
        per-tenant children.  The windows are keyed by virtual-clock
        coordinates, so replays produce byte-identical series, and the
        full hierarchical merge of the latency windows is byte-identical
        to the whole-run sketch (asserted by the regression gate).
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        *,
        exact_latency: bool = False,
        latency_alpha: float = DEFAULT_ALPHA,
        window_s: float = 0.05,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.ledger = WallClockLedger(registry=self.registry, prefix="serve.ledger")
        self.exact_latency = bool(exact_latency)
        self.latency_alpha = float(latency_alpha)
        self._latency: dict[str, list[float]] | None = (
            {s: [] for s in _SOURCES} if self.exact_latency else None
        )
        self.t_first_arrival = float("inf")
        self.t_last_done = 0.0
        self.window = WindowSpec(float(window_s))
        self._series: dict[str, TimeSeries] = {}
        for name in ("serve.win.responses", "serve.win.served", "serve.win.dropped"):
            self._series[name] = TimeSeries(name, KIND_COUNTER, self.window)
        self._series["serve.win.latency"] = TimeSeries(
            "serve.win.latency", KIND_SKETCH, self.window, alpha=self.latency_alpha
        )
        for status in _STATUSES:
            self.registry.counter(f"serve.status.{status}")
        for source in _SOURCES:
            self.registry.counter(f"serve.source.{source}")
            self.registry.sketch(f"serve.latency.{source}", alpha=self.latency_alpha)

    # ------------------------------------------------------------------
    def _windowed(
        self, name: str, kind: str, labels: tuple[tuple[str, str], ...] = ()
    ) -> TimeSeries:
        """Get or create a windowed series (optionally a labeled child)."""
        flat = flat_metric_name(name, labels)
        series = self._series.get(flat)
        if series is None:
            series = TimeSeries(flat, kind, self.window, alpha=self.latency_alpha)
            self._series[flat] = series
        return series

    def observe(self, response: Response) -> None:
        """Fold one response into the counters and windowed series."""
        if response.status not in _STATUSES:
            raise ValueError(f"unknown status {response.status!r}")
        self.registry.counter("serve.requests").inc()
        self.registry.counter(f"serve.status.{response.status}").inc()
        self.t_first_arrival = min(self.t_first_arrival, response.t_arrival)
        self.t_last_done = max(self.t_last_done, response.t_done)
        t = response.t_done
        tenant = response.tenant
        self._series["serve.win.responses"].record(t)
        if tenant is not None:
            label = (("tenant", tenant),)
            self.registry.counter("serve.tenant.requests", labels={"tenant": tenant}).inc()
            self._windowed("serve.win.responses", KIND_COUNTER, label).record(t)
        if response.served:
            self.registry.counter(f"serve.source.{response.source}").inc()
            self.registry.sketch(
                f"serve.latency.{response.source}"
            ).observe(response.latency)
            self._series["serve.win.served"].record(t)
            self._series["serve.win.latency"].record(t, response.latency)
            self._windowed(
                "serve.win.latency", KIND_SKETCH, (("source", response.source),)
            ).record(t, response.latency)
            if tenant is not None:
                self.registry.counter(
                    "serve.tenant.served", labels={"tenant": tenant}
                ).inc()
                self.registry.sketch(
                    "serve.tenant.latency",
                    alpha=self.latency_alpha,
                    labels={"tenant": tenant},
                ).observe(response.latency)
                self._windowed("serve.win.latency", KIND_SKETCH, label).record(
                    t, response.latency
                )
            if self._latency is not None:
                self._latency[response.source].append(response.latency)
        else:
            self._series["serve.win.dropped"].record(t)

    # ------------------------------------------------------------------
    @property
    def status_counts(self) -> dict[str, int]:
        """Responses per admission status (view over the registry)."""
        return {
            s: int(self.registry.counter(f"serve.status.{s}").value)
            for s in _STATUSES
        }

    @property
    def source_counts(self) -> dict[str, int]:
        """Served responses per answer source (view over the registry)."""
        return {
            s: int(self.registry.counter(f"serve.source.{s}").value)
            for s in _SOURCES
        }

    @property
    def n_requests(self) -> int:
        """Total responses observed."""
        return int(self.registry.counter("serve.requests").value)

    @property
    def n_served(self) -> int:
        """Requests that received an answer (ok or degraded)."""
        counts = self.status_counts
        return counts[STATUS_OK] + counts[STATUS_DEGRADED]

    @property
    def duration(self) -> float:
        """Virtual span from first arrival to last completion."""
        if self.n_requests == 0:
            return 0.0
        return self.t_last_done - self.t_first_arrival

    def throughput(self) -> float:
        """Served responses per virtual second."""
        return self.n_served / self.duration if self.duration > 0 else 0.0

    def latency_sketch(self, source: str | None = None) -> QuantileSketch:
        """Latency sketch for one source, or all served traffic merged.

        ``source=None`` returns a *fresh* sketch that merges the three
        per-source sketches — the same associative fold a sharded
        deployment applies across replicas.
        """
        if source is not None:
            if source not in _SOURCES:
                raise ValueError(f"unknown source {source!r}")
            return self.registry.sketch(f"serve.latency.{source}")
        merged = QuantileSketch("serve.latency.all", alpha=self.latency_alpha)
        for s in _SOURCES:
            merged.merge(self.registry.sketch(f"serve.latency.{s}"))
        return merged

    def latencies(self, source: str | None = None) -> list[float]:
        """Exact latency population (requires ``exact_latency=True``).

        The default sketch mode deliberately does not retain samples;
        asking for them is a programming error, not an empty list.
        """
        if self._latency is None:
            raise RuntimeError(
                "latency samples are only retained in exact_latency mode; "
                "construct ServeMetrics(exact_latency=True) or use "
                "latency_sketch()/percentile()"
            )
        if source is None:
            return [v for s in _SOURCES for v in self._latency[s]]
        if source not in self._latency:
            raise ValueError(f"unknown source {source!r}")
        return list(self._latency[source])

    def percentile(self, q: float, source: str | None = None) -> float:
        """Latency percentile ``q`` (in [0, 100]) over served traffic.

        Sketch-backed by default (guaranteed relative error
        ``latency_alpha``, exact at the endpoints); exact via
        :func:`~repro.obs.sketch.exact_quantile` in ``exact_latency``
        mode.  Returns NaN for an empty population (e.g. a source filter
        that matched nothing); rejects ``q`` outside [0, 100].
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self._latency is not None:
            pop = sorted(self.latencies(source))
            if not pop:
                return float("nan")
            return exact_quantile(pop, q / 100.0)
        return self.latency_sketch(source).quantile(q / 100.0)

    def scorecard(self) -> dict:
        """Per-source tail-latency scorecard, straight off the sketches.

        One row per source (plus the merged ``all``): count, exact
        mean/min/max sidecars and the :data:`SCORECARD_QUANTILES`
        estimates.  Empty sources are omitted.
        """
        card: dict = {}
        for source in (*_SOURCES, None):
            sk = self.latency_sketch(source)
            if sk.count == 0:
                continue
            row = {
                "count": sk.count,
                "mean_s": sk.mean,
                "min_s": sk.vmin,
                "max_s": sk.vmax,
                "alpha": sk.alpha,
            }
            for label, q in SCORECARD_QUANTILES:
                row[label] = sk.quantile(q)
            card[source or "all"] = row
        return card

    def series(self, name: str) -> TimeSeries:
        """One windowed series by flat name (``serve.win.*``).

        Labeled children use the canonical flat form, e.g.
        ``"serve.win.latency{tenant=t0}"``.
        """
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(
                f"no windowed series {name!r}; have {sorted(self._series)}"
            ) from None

    def series_names(self) -> list[str]:
        """Sorted flat names of every windowed series."""
        return sorted(self._series)

    def merged_window_latency(self) -> QuantileSketch:
        """Hierarchical merge of every latency window into one sketch.

        Byte-identical (via ``to_json``) to :meth:`latency_sketch` with
        ``source=None`` — the windowed layer loses nothing relative to
        the whole-run aggregate, which the regression gate asserts.
        """
        return self._series["serve.win.latency"].merged_sketch("serve.latency.all")

    def timeline(self, *, quantiles=SCORECARD_QUANTILES) -> list[dict]:
        """Per-window dashboard rows over the occupied window range.

        Each row carries the window index and start coordinate, the
        response/served/dropped counter deltas, and the latency-window
        quantiles (NaN-free: absent windows report ``None``).
        """
        latency = self._series["serve.win.latency"]
        occupied: set[int] = set()
        for series in self._series.values():
            occupied.update(series.window_indices())
        if not occupied:
            return []
        rows = []
        for idx in range(min(occupied), max(occupied) + 1):
            row = {
                "window": idx,
                "t_start": self.window.start(idx),
                "responses": self._series["serve.win.responses"].value(idx),
                "served": self._series["serve.win.served"].value(idx),
                "dropped": self._series["serve.win.dropped"].value(idx),
                "latency_count": latency.value(idx),
            }
            for label, q in quantiles:
                v = latency.quantile(idx, q)
                row[label] = None if v != v else v
            rows.append(row)
        return rows

    def tenant_scorecard(self) -> dict:
        """Per-tenant rollup off the labeled registry children.

        One row per tenant (label-sorted): request/served counts and the
        :data:`SCORECARD_QUANTILES` estimates from the tenant's latency
        sketch.  Empty when traffic is untagged.
        """
        card: dict = {}
        requests = self.registry.children("serve.tenant.requests")
        served = self.registry.children("serve.tenant.served")
        sketches = self.registry.children("serve.tenant.latency")
        for labels, counter in requests.items():
            tenant = dict(labels)["tenant"]
            row: dict = {"requests": int(counter.value), "served": 0}
            served_counter = served.get(labels)
            if served_counter is not None:
                row["served"] = int(served_counter.value)
            sk = sketches.get(labels)
            if sk is not None and sk.count:
                row["mean_s"] = sk.mean
                for label, q in SCORECARD_QUANTILES:
                    row[label] = sk.quantile(q)
            card[tenant] = row
        return card

    @property
    def lookup_fraction(self) -> float:
        """``N_lookup / (N_lookup + N_train)`` as the §III-D model counts it.

        Counted from ledger events: every UQ gate evaluation is a
        ``lookup`` record and every fallback a ``simulate`` record — a
        gate check that fails and falls back contributes one of each,
        matching :class:`~repro.core.mlaround.MLAroundHPC` per-query
        semantics.  Cache hits are excluded: a hit re-serves an answer
        whose cost was already booked when it was first computed, so
        counting it again would double-credit the surrogate.
        """
        n_lookup = self.ledger.count("lookup")
        n_sim = self.ledger.count("simulate")
        total = n_lookup + n_sim
        return n_lookup / total if total else 0.0

    # ------------------------------------------------------------------
    def effective_model(self, *, t_seq: float | None = None) -> EffectiveSpeedupModel:
        """§III-D model built from this run's measured ledger."""
        return EffectiveSpeedupModel.from_ledger(self.ledger, t_seq=t_seq)

    def measured_effective_speedup(self, *, t_seq: float | None = None) -> float:
        """Effective speedup of this run at its realized mix.

        Evaluates the measured model at the run's own lookup/simulate
        counts — "how much faster than all-sequential-simulation was the
        traffic we actually served".
        """
        model = self.effective_model(t_seq=t_seq)
        return model.speedup(
            n_lookup=self.ledger.count("lookup"),
            n_train=self.ledger.count("simulate"),
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready snapshot of the run."""
        out: dict = {
            "n_requests": self.n_requests,
            "n_served": self.n_served,
            "duration": self.duration,
            "throughput": self.throughput(),
            "status_counts": dict(self.status_counts),
            "source_counts": dict(self.source_counts),
            "lookup_fraction": self.lookup_fraction,
            "latency": {},
            "ledger": {
                name: {
                    "count": self.ledger.count(name),
                    "total": self.ledger.total(name),
                    "mean": self.ledger.mean(name),
                }
                for name in ("lookup", "simulate", "train", "cache")
                if self.ledger.count(name)
            },
        }
        for source in (None, *_SOURCES):
            sk = self.latency_sketch(source)
            if sk.count == 0:
                continue
            out["latency"][source or "all"] = {
                "n": sk.count,
                "mean": sk.mean,
                "p50": sk.quantile(0.5),
                "p99": sk.quantile(0.99),
                "max": sk.vmax,
            }
        out["windows"] = {
            "window_s": self.window.width,
            "n_windows": len(self._series["serve.win.responses"]),
            "n_series": len(self._series),
        }
        tenants = self.tenant_scorecard()
        if tenants:
            out["tenants"] = tenants
        return out
