"""Request/response types shared across the serving pipeline.

A :class:`Request` is one query with a virtual arrival time and optional
deadline; a :class:`Response` is its fate.  Every request gets exactly
one response with an explicit ``status`` — the admission controller's
``rejected``, the batcher's ``shed``, the overload path's ``degraded``
or a normal ``ok`` — and a ``source`` naming which stage produced the
answer (cache, surrogate or fallback simulation).  Explicit outcomes
instead of silent drops are what make the measured ledger honest: a
query that was never served must not count toward the effective-speedup
denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_REJECTED",
    "STATUS_SHED",
    "SOURCE_CACHE",
    "SOURCE_SURROGATE",
    "SOURCE_SIMULATION",
    "SOURCE_NONE",
    "Request",
    "Response",
]

#: Served with full UQ gating.
STATUS_OK = "ok"
#: Served a point prediction without UQ under overload.
STATUS_DEGRADED = "degraded"
#: Refused at admission (token bucket empty or queue full).
STATUS_REJECTED = "rejected"
#: Dropped at flush time because its deadline had already passed.
STATUS_SHED = "shed"

#: Answered from the quantized LRU cache.
SOURCE_CACHE = "cache"
#: Answered by the surrogate (batched NN forward + UQ gate).
SOURCE_SURROGATE = "surrogate"
#: Answered by a fallback simulation on the worker pool.
SOURCE_SIMULATION = "simulation"
#: Not answered (rejected / shed).
SOURCE_NONE = "none"


@dataclass(frozen=True, eq=False)
class Request:
    """One query entering the serving loop.

    Attributes
    ----------
    query_id:
        Unique, monotonically assigned by the load generator / caller;
        also the deterministic tiebreak everywhere times collide.
    x:
        The query point, shape ``(D,)``.
    t_arrival:
        Virtual arrival time in seconds.
    deadline:
        Absolute virtual time after which the answer is worthless; ``None``
        disables shedding for this request.
    tenant:
        Optional tenant id (a label value such as ``"t0"``) for
        per-tenant dimensional metrics; ``None`` means untagged traffic.
    """

    query_id: int
    x: np.ndarray
    t_arrival: float
    deadline: float | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.t_arrival < 0:
            raise ValueError(f"t_arrival must be >= 0, got {self.t_arrival}")
        if self.deadline is not None and self.deadline < self.t_arrival:
            raise ValueError("deadline must not precede arrival")


@dataclass(eq=False)
class Response:
    """The outcome of one request.

    ``y``/``uncertainty`` are ``None``/NaN for unserved outcomes
    (``rejected``/``shed``) and for degraded answers, which carry a point
    prediction but no predictive std.  ``t_done`` is the virtual
    completion time; for unserved outcomes it is the moment the decision
    was made.
    """

    query_id: int
    status: str
    source: str
    t_arrival: float
    t_done: float
    y: np.ndarray | None = None
    uncertainty: float = float("nan")
    batch_size: int = 0
    worker_id: int | None = None
    x: np.ndarray = field(default=None, repr=False)
    tenant: str | None = None

    @property
    def latency(self) -> float:
        """Virtual seconds between arrival and completion."""
        return self.t_done - self.t_arrival

    @property
    def served(self) -> bool:
        """True when the request received an answer (ok or degraded)."""
        return self.status in (STATUS_OK, STATUS_DEGRADED)
