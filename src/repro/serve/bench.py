"""Serving benchmark CLI: ``python -m repro.serve.bench``.

Replays seeded open-loop request streams through :class:`SurrogateServer`
configurations and writes ``BENCH_serve.json``, the repo's tracked
serving baseline.  Five scenarios:

* **throughput sweep** — served throughput and p50/p99 latency versus
  offered load;
* **batched vs unbatched** — the same saturating stream served with
  batch 64 versus batch 1 (micro-batching disabled); the throughput
  ratio is the amortization win and must be ≥ 5×;
* **cache** — a duplicate-heavy stream; the per-source p50 ratio of
  surrogate-path to cache-hit latency must be ≥ 20×;
* **effective-speedup agreement** — a mixed confident/fallback run whose
  *measured* §III-D speedup (via
  :meth:`~repro.core.effective.EffectiveSpeedupModel.from_ledger` on the
  serve ledger) must agree with the analytic model evaluated at the same
  lookup fraction and realized mean batch size to within 10%; its
  per-source tail scorecard (p50/p90/p99/p99.9 off the mergeable
  :class:`~repro.obs.sketch.QuantileSketch` sidecars) is recorded as
  ``latency_scorecard``;
* **heavy tail** — the agreement stream re-generated with Pareto (Lomax)
  interarrivals at the same offered rate: the gap CV² must exceed the
  Poisson baseline, and — served into an ``exact_latency`` metrics sink —
  every sketch scorecard quantile must sit within the guaranteed α of
  exact ``np.percentile`` over the retained per-source populations.

A fifth, wall-clock section — **kernel** — A/Bs the fused float32
serving forward pass (:meth:`~repro.nn.model.MLP.set_serving_dtype`)
against the default float64 path on the serving surrogate's own
architecture, across a batch sweep; the largest batch gates the
``predict_f32_speedup_ge_1_5x`` criterion and every batch must agree
with float64 to a normalized 1e-4.

All scenario numbers are virtual-time and bitwise reproducible (the
``deterministic_replay`` flag re-runs one scenario and compares
summaries); the kernel section and the optional calibration block are
the only wall-clock sections — the latter exists to show the cost
constants are the right order of magnitude on this machine.

With ``--trace``, the agreement scenario is additionally re-run with a
:class:`~repro.obs.trace.Tracer` attached: the trace is written as
JSONL (gzipped when the output path ends in ``.gz``), a traced replay
must reproduce it byte for byte, the §III-D speedup reconstructed from
the trace alone must match the measured value within 2%, and the
wall-clock instrumentation overhead (best-of serve times, traced vs.
untraced) must stay under 5% — all recorded as criteria in the BENCH
JSON.  The two overhead criteria only gate at full-size streams
(``OVERHEAD_MIN_REQUESTS``); reduced smoke runs record the values but
skip the pass/fail, which is noise at sub-second serve times.

The traced run also feeds the tail-latency observability gates: the
per-request stage decomposition (:mod:`repro.obs.latency`) must
reproduce every recorded latency to ≤ 1e-9 over 100% of served
requests, the live sketches are re-certified against the decomposed
exact populations, and the ``faster_fallback`` counterfactual
projection (:mod:`repro.obs.whatif`) is validated against an *actual*
DES re-run with ``t_simulate`` halved on the identical request stream —
projected mean and p99 must land within 10% of ground truth.

``--trace`` also exercises the closed MLControl loop twice:

* **monitored agreement** — the healthy scenario re-served with the
  default :func:`~repro.obs.monitor.default_serve_monitors` suite
  attached; it must stay critical-alert silent and its marginal
  wall-clock overhead over plain tracing must stay under 5%;
* **drift injection** — mid-stream, a scheduled fault biases the
  surrogate's output scaler by ``_DRIFT_BIAS_SIGMA`` standard
  deviations, silently corrupting served answers without touching the
  UQ gate.  The calibration-coverage monitor must fire, the fired
  alert's ``retrain`` action must appear as a ``control_retrain`` train
  span in the trace, and replaying that trace offline through an
  identical suite must reproduce the live alert log byte for byte.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.effective import EffectiveSpeedupModel
from repro.core.mlaround import MLAroundHPC, RetrainPolicy
from repro.core.simulation import CallableSimulation
from repro.core.surrogate import Surrogate
from repro.nn.model import MLP
from repro.obs.export import dumps_trace, write_trace
from repro.obs.latency import decompose
from repro.obs.monitor import default_serve_monitors, dumps_alerts, watch_trace
from repro.obs.slo import default_slo_specs, dumps_slo, slo_report
from repro.obs.summary import summarize
from repro.obs.timeseries import dumps_timeline, timeline_report
from repro.obs.trace import Tracer
from repro.obs.whatif import project
from repro.parallel.cluster import Worker
from repro.serve.batching import MicroBatcher
from repro.serve.cost import ServeCostModel
from repro.serve.dispatch import FallbackPool
from repro.serve.loadgen import OpenLoopLoadGenerator
from repro.serve.messages import (
    SOURCE_CACHE,
    SOURCE_SIMULATION,
    SOURCE_SURROGATE,
)
from repro.serve.metrics import SCORECARD_QUANTILES, ServeMetrics
from repro.serve.server import SurrogateServer
from repro.util.rng import ensure_rng
from repro.util.timing import Timer

__all__ = ["build_engine", "run_serve_bench", "main"]

DEFAULT_OUTPUT = "BENCH_serve.json"
#: Bootstrap sampling box; serve streams draw from a slightly wider box so
#: edge queries carry genuinely higher predictive uncertainty.
TRAIN_BOUNDS = np.array([[-2.0, 2.0], [-2.0, 2.0]])
SERVE_BOUNDS = np.array([[-2.6, 2.6], [-2.6, 2.6]])


#: Output-scaler bias (in per-dimension standard deviations) injected by
#: the drift scenario.  Large enough that fallback-row calibration
#: coverage collapses within one monitor window.
_DRIFT_BIAS_SIGMA = 4.0

#: Batch sweep for the serving-kernel micro-bench.  The largest batch
#: gates the float32 criterion: small batches are Python-dispatch bound
#: and the dtype barely matters there.
KERNEL_BATCHES = (256, 1024, 4096)

#: Smallest request stream the wall-clock overhead criteria
#: (``trace_overhead_lt_5pct``, ``monitor_overhead_lt_5pct``) are gated
#: at.  Below this a serve run lasts a few hundred milliseconds and the
#: best-of overhead ratios are timer noise (reduced runs have measured
#: anywhere from -14% to +45%); CI smoke runs therefore omit the
#: criteria and the regress gate reports them as ``skipped`` rather
#: than flapping.  The overhead *values* are always recorded.
OVERHEAD_MIN_REQUESTS = 1000


def _best_of(fn, rounds: int) -> float:
    """Minimum wall time of ``rounds`` calls, after one warmup call."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        with Timer() as t:
            fn()
        best = min(best, t.elapsed)
    return best


def _bench_predict_kernel(
    *, seed: int, batches: Sequence[int] = KERNEL_BATCHES, rounds: int = 7
) -> dict:
    """A/B the fused float32 serving forward pass against float64.

    Builds the serving surrogate's own architecture (2-24-24-2 relu
    MC-dropout regressor) and times :meth:`~repro.nn.model.MLP.predict`
    in the default float64 serving mode versus the opt-in float32 mode
    (:meth:`~repro.nn.model.MLP.set_serving_dtype`) over a batch sweep.
    Training and ``predict_stable`` never take the float32 path, so the
    only accuracy statement this section owes is the recorded normalized
    deviation — gated at 1e-4, comfortably above float32 round-off for a
    two-hidden-layer net, far below any serving tolerance.
    """
    model = MLP.regressor(2, [24, 24], 2, dropout=0.1, rng=seed)
    gen = ensure_rng(seed + 17)
    rows = []
    for batch in batches:
        X = gen.standard_normal((int(batch), 2))
        # "Before": the layer-by-layer generic forward — the serving
        # path predict() used before the fused plan existed, still live
        # as its fallback.
        t_generic = _best_of(
            lambda: model.forward(X, training=False), rounds
        )
        model.set_serving_dtype(np.float64)
        y64 = model.predict(X)
        t64 = _best_of(lambda: model.predict(X), rounds)
        model.set_serving_dtype(np.float32)
        y32 = model.predict(X)
        t32 = _best_of(lambda: model.predict(X), rounds)
        model.set_serving_dtype(np.float64)
        # Normalize by the output's overall magnitude, not per-element
        # values: elements near a zero crossing would otherwise report
        # meaningless relative errors.
        denom = max(float(np.max(np.abs(y64))), 1e-12)
        max_rel = float(np.max(np.abs(y32 - y64))) / denom
        rows.append(
            {
                "batch": int(batch),
                "t_predict_generic_s": t_generic,
                "t_predict_f64_s": t64,
                "t_predict_f32_s": t32,
                "speedup_f64_fused": t_generic / t64,
                "speedup": t_generic / t32,
                "max_rel_diff_vs_f64": max_rel,
            }
        )
    largest = max(rows, key=lambda r: r["batch"])
    return {
        "optimization": "fused float32 serving forward pass "
        "(preallocated activation buffers + cached float32 weights)",
        "architecture": "2-24-24-2 relu MC-dropout regressor",
        "rounds": rounds,
        "batches": rows,
        "batch": largest["batch"],
        "before_t_generic_s": largest["t_predict_generic_s"],
        "after_t_f32_s": largest["t_predict_f32_s"],
        "predict_f32_speedup": largest["speedup"],
        "criteria": {
            "predict_f32_speedup_ge_1_5x": bool(largest["speedup"] >= 1.5),
            "predict_f32_matches_f64_1e_4": bool(
                all(r["max_rel_diff_vs_f64"] <= 1e-4 for r in rows)
            ),
        },
    }


def _sketch_certification(
    populations: dict[str, list[float]], sketches: dict, *, alpha: float
) -> dict:
    """Certify sketch scorecard quantiles against exact ``np.percentile``.

    For every non-empty population and every scorecard quantile, the
    sketch estimate must sit within the guaranteed relative error
    ``alpha`` of the exact value.  Returns the per-population worst
    relative error and the overall verdict.
    """
    rows: dict[str, dict] = {}
    worst = 0.0
    for key in sorted(populations):
        pop = populations[key]
        if not pop:
            continue
        arr = np.sort(np.asarray(pop, dtype=float))
        sk = sketches[key]
        pop_worst = 0.0
        for _, q in SCORECARD_QUANTILES:
            exact = float(np.percentile(arr, 100.0 * q))
            est = sk.quantile(q)
            rel = abs(est - exact) / abs(exact) if exact != 0.0 else abs(est)
            pop_worst = max(pop_worst, rel)
        rows[key] = {"n": len(pop), "worst_rel_err": pop_worst}
        worst = max(worst, pop_worst)
    return {
        "alpha": alpha,
        "worst_rel_err": worst,
        "populations": rows,
        "ok": bool(worst <= alpha),
    }


def _drift_trace_path(trace_output: str | Path) -> Path:
    """Sibling path for the drift-scenario trace (``X.jsonl.gz`` ->
    ``X_drift.jsonl.gz``)."""
    p = Path(trace_output)
    name = p.name
    for ext in (".jsonl.gz", ".jsonl", ".gz", ".json"):
        if name.endswith(ext):
            return p.with_name(name[: -len(ext)] + "_drift" + ext)
    return p.with_name(name + "_drift")


def _toy_response(x: np.ndarray) -> np.ndarray:
    """Smooth 2-in/2-out ground truth for the bench engine."""
    return np.array([np.sin(x[0]) * np.cos(x[1]), 0.25 * x[0] * x[1]])


def _inject_scaler_bias(server: SurrogateServer, t: float) -> None:
    """Scheduled fault: silently corrupt the surrogate's served answers.

    Shifts the output scaler's mean by ``_DRIFT_BIAS_SIGMA`` standard
    deviations, so every subsequent prediction is biased while the
    MC-dropout spread (and hence the UQ gate) is untouched — the exact
    failure mode only calibration monitoring can catch.  A genuine
    retrain refits the scaler from banked truth data and recovers.
    """
    scaler = server.engine.surrogate.y_scaler
    scaler.mean_ = scaler.mean_ + _DRIFT_BIAS_SIGMA * scaler.scale_


def build_engine(
    *,
    tolerance: float | None,
    seed: int = 0,
    n_bootstrap: int = 48,
    epochs: int = 200,
    retrain_every: int = 24,
) -> MLAroundHPC:
    """Fresh bootstrapped MLaroundHPC engine for one bench scenario.

    Every scenario gets its own engine because serving mutates it (banked
    fallback runs, retrains); sharing one would couple the scenarios.
    ``retrain_every`` is the cadence-retrain interval; the drift scenario
    passes an effectively infinite value so the monitor-triggered control
    retrain is the only recovery path.
    """
    sim = CallableSimulation(_toy_response, ["a", "b"], ["u", "v"])
    surrogate = Surrogate(
        2, 2, hidden=(24, 24), dropout=0.1, epochs=epochs, rng=seed
    )
    engine = MLAroundHPC(
        sim,
        surrogate,
        tolerance=tolerance,
        policy=RetrainPolicy(
            min_initial_runs=16, retrain_every=retrain_every
        ),
        rng=seed,
    )
    gen = ensure_rng(seed)
    lo, hi = TRAIN_BOUNDS[:, 0], TRAIN_BOUNDS[:, 1]
    X = lo + gen.random((n_bootstrap, 2)) * (hi - lo)
    engine.bootstrap(X)
    return engine


def _run(
    requests,
    *,
    tolerance: float | None,
    seed: int,
    cost: ServeCostModel,
    max_batch_size: int = 64,
    max_wait: float = 1e-3,
    n_workers: int = 4,
    epochs: int = 200,
    retrain_every: int = 24,
    tracer: Tracer | None = None,
    monitor=None,
    prepare=None,
    metrics: ServeMetrics | None = None,
) -> tuple[SurrogateServer, float]:
    """Serve ``requests`` on a fresh engine; returns (server, serve wall s).

    ``monitor`` is forwarded to the server (requires ``tracer``);
    ``prepare`` is called with the built server before serving — the
    hook the drift scenario uses to schedule its mid-stream fault.
    ``metrics`` lets a scenario inject a pre-built sink (the heavy-tail
    scenario passes an ``exact_latency`` one to certify the sketches).
    """
    engine = build_engine(
        tolerance=tolerance, seed=seed, epochs=epochs,
        retrain_every=retrain_every,
    )
    server = SurrogateServer(
        engine,
        cost=cost,
        batcher=MicroBatcher(max_batch_size=max_batch_size, max_wait=max_wait),
        pool=FallbackPool([Worker(i) for i in range(n_workers)]),
        rng=seed + 1,
        tracer=tracer,
        monitor=monitor,
        metrics=metrics,
    )
    if prepare is not None:
        prepare(server)
    with Timer() as t:
        server.serve(requests)
    return server, t.elapsed


def run_serve_bench(
    *,
    n_requests: int = 2000,
    seed: int = 0,
    epochs: int = 200,
    calibrate: bool = True,
    trace: bool = False,
    trace_output: str | Path | None = None,
) -> dict:
    """Run all scenarios and return the JSON-serializable payload."""
    if n_requests < 50:
        raise ValueError(f"n_requests must be >= 50, got {n_requests}")
    cost = ServeCostModel()

    # ---- scenario 1: throughput / latency vs offered load -------------
    sweep = []
    for rate in (500.0, 2000.0, 8000.0, 32000.0):
        gen = OpenLoopLoadGenerator(rate, SERVE_BOUNDS)
        server, _ = _run(
            gen.generate(n_requests, rng=seed),
            tolerance=None,
            seed=seed,
            cost=cost,
            epochs=epochs,
        )
        m = server.metrics
        sweep.append(
            {
                "offered_rate": rate,
                "throughput": m.throughput(),
                "p50_s": m.percentile(50),
                "p99_s": m.percentile(99),
                "n_served": m.n_served,
                "n_rejected": m.status_counts["rejected"],
                "mean_batch_size": server.batcher.mean_batch_size,
            }
        )

    # ---- scenario 2: batched vs unbatched saturation throughput -------
    sat_gen = OpenLoopLoadGenerator(50000.0, SERVE_BOUNDS)
    sat_requests = sat_gen.generate(n_requests, rng=seed)
    batched, _ = _run(
        sat_requests, tolerance=None, seed=seed, cost=cost,
        max_batch_size=64, epochs=epochs,
    )
    unbatched, _ = _run(
        sat_requests, tolerance=None, seed=seed, cost=cost,
        max_batch_size=1, max_wait=0.0, epochs=epochs,
    )
    t_batched = batched.metrics.throughput()
    t_unbatched = unbatched.metrics.throughput()
    batch_ratio = t_batched / t_unbatched
    batched_vs_unbatched = {
        "batched_throughput": t_batched,
        "unbatched_throughput": t_unbatched,
        "speedup": batch_ratio,
        "batched_mean_batch_size": batched.batcher.mean_batch_size,
    }

    # ---- scenario 3: cache hits vs the cold surrogate path ------------
    dup_gen = OpenLoopLoadGenerator(
        4000.0, SERVE_BOUNDS, duplicate_fraction=0.6
    )
    cache_server, _ = _run(
        dup_gen.generate(n_requests, rng=seed), tolerance=None, seed=seed,
        cost=cost, epochs=epochs,
    )
    p50_cache = cache_server.metrics.percentile(50, SOURCE_CACHE)
    p50_cold = cache_server.metrics.percentile(50, SOURCE_SURROGATE)
    cache_ratio = p50_cold / p50_cache
    cache_block = {
        "p50_cache_hit_s": p50_cache,
        "p50_surrogate_s": p50_cold,
        "speedup": cache_ratio,
        "hit_rate": cache_server.cache.hit_rate,
        "n_hits": cache_server.cache.n_hits,
    }

    # ---- scenario 4: measured vs analytic effective speedup -----------
    def agreement_run(
        tracer: Tracer | None = None, monitor=None
    ) -> tuple[SurrogateServer, float]:
        # Three round-robin tenants tag every request; tenant assignment
        # consumes no randomness, so the stream (gaps, points, duplicates)
        # is bit-identical to untagged traffic and the labeled per-tenant
        # metrics ride the same DES run for free.
        agen = OpenLoopLoadGenerator(2000.0, SERVE_BOUNDS, tenants=3)
        return _run(
            agen.generate(n_requests, rng=seed), tolerance=0.6, seed=seed,
            cost=cost, epochs=epochs, tracer=tracer, monitor=monitor,
        )

    ag, t_untraced = agreement_run()
    ledger = ag.metrics.ledger
    n_lookup = ledger.count("lookup")
    n_sim = ledger.count("simulate")
    n_flushes = ag.batcher.n_flushes
    mean_bs = n_lookup / n_flushes
    measured_model = ag.metrics.effective_model(t_seq=cost.t_simulate)
    measured = measured_model.speedup(n_lookup, n_sim)
    analytic_model = EffectiveSpeedupModel(
        t_seq=cost.t_simulate,
        t_train=cost.t_simulate,
        t_learn=cost.t_retrain * ledger.count("train") / max(n_sim, 1),
        t_lookup=cost.amortized_lookup(mean_bs),
    )
    analytic = analytic_model.speedup(n_lookup, n_sim)
    rel_diff = abs(measured - analytic) / analytic
    agreement = {
        "measured_speedup": measured,
        "analytic_speedup": analytic,
        "rel_diff": rel_diff,
        "lookup_fraction": ag.metrics.lookup_fraction,
        "n_lookup": n_lookup,
        "n_simulate": n_sim,
        "n_retrains": ledger.count("train"),
        "mean_batch_size": mean_bs,
        "measured_t_lookup_s": ledger.mean("lookup"),
        "analytic_t_lookup_s": cost.amortized_lookup(mean_bs),
    }

    # ---- determinism: an identical replay must match bitwise ----------
    replay, _ = agreement_run()
    deterministic = json.dumps(ag.metrics.summary(), sort_keys=True) == json.dumps(
        replay.metrics.summary(), sort_keys=True
    )

    # ---- scenario 5: heavy-tailed arrivals + sketch certification -----
    # Pareto (Lomax) interarrivals at the agreement rate: same mean load,
    # infinite gap variance — the burst regime tail latency lives in.
    # The run doubles as the sketch-certification site: an exact_latency
    # metrics sink retains every sample, so the mergeable sketches can be
    # checked against np.percentile on an adversarially bursty stream.
    ht_gen = OpenLoopLoadGenerator(
        2000.0, SERVE_BOUNDS, interarrival="pareto", pareto_shape=1.5
    )
    ht_requests = ht_gen.generate(n_requests, rng=seed)
    ht_gaps = np.diff(np.array([r.t_arrival for r in ht_requests]), prepend=0.0)
    gap_cv2 = float(np.var(ht_gaps) / np.mean(ht_gaps) ** 2)
    ht_metrics = ServeMetrics(exact_latency=True)
    _run(
        ht_requests, tolerance=0.6, seed=seed, cost=cost, epochs=epochs,
        metrics=ht_metrics,
    )
    ht_pops = {"all": ht_metrics.latencies()}
    for source in (SOURCE_CACHE, SOURCE_SURROGATE, SOURCE_SIMULATION):
        ht_pops[source] = ht_metrics.latencies(source)
    ht_sketches = {
        key: ht_metrics.latency_sketch(None if key == "all" else key)
        for key in ht_pops
    }
    ht_cert = _sketch_certification(
        ht_pops, ht_sketches, alpha=ht_metrics.latency_alpha
    )
    heavy_tail = {
        "interarrival": "pareto",
        "pareto_shape": 1.5,
        "offered_rate": 2000.0,
        "gap_cv2": gap_cv2,
        "n_served": ht_metrics.n_served,
        "status_counts": dict(ht_metrics.status_counts),
        "scorecard": ht_metrics.scorecard(),
        "sketch_certification": ht_cert,
    }

    criteria = {
        "batched_speedup_ge_5x": bool(batch_ratio >= 5.0),
        "cache_hit_ge_20x": bool(cache_ratio >= 20.0),
        "effective_agreement_le_10pct": bool(rel_diff <= 0.10),
        "deterministic_replay": bool(deterministic),
        "heavy_tail_burstier_than_poisson": bool(gap_cv2 >= 2.0),
        "sketch_quantiles_within_alpha": bool(ht_cert["ok"]),
    }

    # ---- optional: traced agreement run + overhead guard --------------
    trace_block = None
    if trace:
        trace_meta = {
            "benchmark": "serve",
            "scenario": "effective_speedup_agreement",
            "seed": seed,
            "n_requests": n_requests,
            "t_seq": cost.t_simulate,
            "t_cache_hit": cost.t_cache_hit,
            "n_workers": 4,
        }
        traced, t_traced = agreement_run(Tracer(meta=trace_meta))
        traced_replay, t_traced2 = agreement_run(Tracer(meta=trace_meta))
        # Tracing must not perturb the run: the traced metrics must match
        # the untraced scenario bitwise, and two traced runs must emit
        # byte-identical JSONL.
        trace_text = dumps_trace(traced.tracer)
        trace_is_deterministic = trace_text == dumps_trace(traced_replay.tracer)
        trace_preserves_run = json.dumps(
            traced.metrics.summary(), sort_keys=True
        ) == json.dumps(ag.metrics.summary(), sort_keys=True)
        # Monitored run: the same healthy scenario with the default
        # alert suite riding the span feed.  It must stay quiet (no
        # critical alerts — a false alarm here would trigger spurious
        # control actions on every production-shaped run).
        healthy_suite = default_serve_monitors()
        monitored, t_monitored = agreement_run(
            Tracer(meta=trace_meta), monitor=healthy_suite
        )
        # Overhead: best-of serve wall times.  Extra rounds are
        # interleaved so machine-load drift lands on all sides; the min
        # converges to each variant's floor and their ratio isolates the
        # instrumentation cost from retrain-time jitter.
        wall_untraced = [t_untraced]
        wall_traced = [t_traced, t_traced2]
        wall_monitored = [t_monitored]
        for _ in range(3):
            wall_untraced.append(agreement_run()[1])
            wall_traced.append(agreement_run(Tracer(meta=trace_meta))[1])
            wall_monitored.append(
                agreement_run(
                    Tracer(meta=trace_meta), monitor=default_serve_monitors()
                )[1]
            )
        best_untraced = min(wall_untraced)
        best_traced = min(wall_traced)
        best_monitored = min(wall_monitored)
        overhead = best_traced / best_untraced - 1.0
        monitor_overhead = best_monitored / best_traced - 1.0
        trace_summary = summarize(traced.tracer.spans, meta=traced.tracer.meta)
        speedup_from_trace = trace_summary["effective"]["speedup"]
        trace_rel_diff = abs(speedup_from_trace - measured) / measured
        trace_block = {
            "n_spans": trace_summary["n_spans"],
            "per_kind": trace_summary["kinds"],
            "speedup_from_trace": speedup_from_trace,
            "rel_diff_vs_measured": trace_rel_diff,
            "t_serve_untraced_s": best_untraced,
            "t_serve_traced_s": best_traced,
            "overhead": overhead,
        }
        criteria["deterministic_traced_replay"] = bool(
            trace_is_deterministic and trace_preserves_run
        )
        criteria["trace_speedup_within_2pct"] = bool(trace_rel_diff <= 0.02)
        gate_overheads = n_requests >= OVERHEAD_MIN_REQUESTS
        if gate_overheads:
            criteria["trace_overhead_lt_5pct"] = bool(overhead < 0.05)
        if trace_output is not None:
            write_trace(trace_output, traced.tracer)
            trace_block["output"] = str(trace_output)

        # ---- tail observability over the traced run -------------------
        # Per-request stage decomposition must reproduce every recorded
        # latency (criterion: max residual <= 1e-9 over 100% of served
        # requests), and the live latency sketches must agree with exact
        # np.percentile over the decomposed per-source populations.
        dec = decompose(traced.tracer.spans, meta=trace_meta)
        dec_records = dec["records"]
        stage_totals = {stage: 0.0 for stage in dec_records[0].stages}
        for rec in dec_records:
            for stage, value in rec.stages.items():
                stage_totals[stage] += value
        trace_block["decomposition"] = {
            "n_records": len(dec_records),
            "n_served": traced.metrics.n_served,
            "max_residual_s": dec["max_residual_s"],
            "unattributed": dec["unattributed"],
            "stage_totals_s": stage_totals,
        }
        criteria["decomposition_exact_1e_9"] = bool(
            dec["max_residual_s"] <= 1e-9
            and len(dec_records) == traced.metrics.n_served
        )
        ag_pops: dict[str, list[float]] = {
            "all": [r.latency for r in dec_records]
        }
        for rec in dec_records:
            ag_pops.setdefault(rec.source, []).append(rec.latency)
        ag_sketches = {
            key: traced.metrics.latency_sketch(None if key == "all" else key)
            for key in ag_pops
        }
        ag_cert = _sketch_certification(
            ag_pops, ag_sketches, alpha=traced.metrics.latency_alpha
        )
        trace_block["sketch_certification"] = ag_cert
        criteria["sketch_quantiles_within_alpha"] = bool(
            criteria["sketch_quantiles_within_alpha"] and ag_cert["ok"]
        )

        # ---- counterfactual validation: projection vs a real re-run ---
        # Project the faster-fallback hypothesis from the trace alone,
        # then actually re-run the DES with t_simulate halved on the
        # identical request stream and compare: the projection must land
        # within 10% of ground truth on both mean and p99.
        proj = project(
            traced.tracer.spans, meta=trace_meta,
            hypothesis="faster_fallback", factor=0.5,
        )
        fast_cost = dataclasses.replace(
            cost, t_simulate=0.5 * cost.t_simulate
        )
        fgen = OpenLoopLoadGenerator(2000.0, SERVE_BOUNDS)
        fast, _ = _run(
            fgen.generate(n_requests, rng=seed), tolerance=0.6, seed=seed,
            cost=fast_cost, epochs=epochs,
        )
        fast_sk = fast.metrics.latency_sketch()
        rel_err_mean = (
            abs(proj["projected"]["mean_s"] - fast_sk.mean) / fast_sk.mean
        )
        actual_p99 = fast_sk.quantile(0.99)
        rel_err_p99 = abs(proj["projected"]["p99_s"] - actual_p99) / actual_p99
        trace_block["whatif"] = {
            "hypothesis": "faster_fallback",
            "factor": 0.5,
            "projected_mean_s": proj["projected"]["mean_s"],
            "actual_mean_s": fast_sk.mean,
            "rel_err_mean": rel_err_mean,
            "projected_p99_s": proj["projected"]["p99_s"],
            "actual_p99_s": actual_p99,
            "rel_err_p99": rel_err_p99,
            "projected_effective_speedup": proj["effective"]["projected"][
                "speedup"
            ],
            "actual_effective_speedup": fast.metrics.measured_effective_speedup(
                t_seq=cost.t_simulate
            ),
        }
        criteria["whatif_fallback_within_10pct"] = bool(
            rel_err_mean <= 0.10 and rel_err_p99 <= 0.10
        )

        healthy_criticals = sum(
            1 for a in healthy_suite.alerts if a.severity == "critical"
        )
        monitor_block = {
            "t_serve_monitored_s": best_monitored,
            "overhead_vs_traced": monitor_overhead,
            "healthy_alerts": healthy_suite.manager.summary(),
            "healthy_critical_alerts": healthy_criticals,
        }
        if gate_overheads:
            criteria["monitor_overhead_lt_5pct"] = bool(monitor_overhead < 0.05)
        criteria["monitor_quiet_on_healthy"] = bool(healthy_criticals == 0)

        # ---- drift injection: the closed MLControl loop end to end ----
        drift_meta = {
            "benchmark": "serve",
            "scenario": "drift_injection",
            "seed": seed,
            "n_requests": n_requests,
            "t_seq": cost.t_simulate,
            "t_cache_hit": cost.t_cache_hit,
            "n_workers": 4,
            "bias_sigma": _DRIFT_BIAS_SIGMA,
        }
        # Inject a quarter of the way through the stream; a tighter
        # tolerance than the agreement run keeps enough fallback traffic
        # flowing that the calibration monitor sees its minimum window of
        # fresh probes after the fault even at smoke-test sizes.  Cadence
        # retraining is disabled (effectively infinite interval) so the
        # injected bias persists until the monitor catches it: the
        # control retrain it triggers is the *only* recovery path, which
        # is exactly the closed loop this scenario certifies.
        t_inject = 0.25 * n_requests / 2000.0

        def drift_run() -> tuple[SurrogateServer, object, Tracer]:
            suite = default_serve_monitors()
            tracer = Tracer(meta=drift_meta)
            dgen = OpenLoopLoadGenerator(2000.0, SERVE_BOUNDS, tenants=3)
            server, _ = _run(
                dgen.generate(n_requests, rng=seed), tolerance=0.4, seed=seed,
                cost=cost, epochs=epochs, retrain_every=10**6,
                tracer=tracer, monitor=suite,
                prepare=lambda srv: srv.schedule(t_inject, _inject_scaler_bias),
            )
            return server, suite, tracer

        drift_server, drift_suite, drift_tracer = drift_run()
        live_log = dumps_alerts(drift_suite.alerts)
        drift_text = dumps_trace(drift_tracer)
        # Replaying the drift trace offline through a fresh identical
        # suite must reproduce the live alert log byte for byte — the
        # monitor is a pure function of the span stream.
        replay_suite = default_serve_monitors()
        watch_trace(drift_tracer.spans, replay_suite)
        replay_log = dumps_alerts(replay_suite.alerts)
        # And the whole closed loop must itself be deterministic.
        _, drift_suite2, drift_tracer2 = drift_run()
        drift_deterministic = (
            drift_text == dumps_trace(drift_tracer2)
            and live_log == dumps_alerts(drift_suite2.alerts)
        )
        n_control_retrains = sum(
            1 for s in drift_tracer.spans if s.name == "control_retrain"
        )
        drift_fired = any(
            a.kind == "calibration_coverage" and a.t >= t_inject
            for a in drift_suite.alerts
        )
        drift_block = {
            "t_inject_s": t_inject,
            "bias_sigma": _DRIFT_BIAS_SIGMA,
            "tolerance": 0.4,
            "n_spans": len(drift_tracer.spans),
            "n_alerts": len(drift_suite.alerts),
            "alerts": drift_suite.manager.summary(),
            "n_control_retrains": n_control_retrains,
            "n_train_spans": sum(
                1 for s in drift_tracer.spans if s.kind == "train"
            ),
            "n_ledger_retrains": drift_server.metrics.ledger.count("train"),
        }
        criteria["drift_alert_fired"] = bool(drift_fired)
        criteria["drift_triggers_retrain"] = bool(n_control_retrains >= 1)
        criteria["monitor_replay_matches_live"] = bool(live_log == replay_log)
        criteria["deterministic_drift_replay"] = bool(drift_deterministic)
        if trace_output is not None:
            drift_output = _drift_trace_path(trace_output)
            write_trace(drift_output, drift_tracer)
            drift_block["output"] = str(drift_output)
        trace_block["monitor"] = monitor_block
        trace_block["drift"] = drift_block

        # ---- windowed timeline + SLO burn over the traced runs --------
        # Both views are pure functions of the span stream; rendering
        # them from two independently executed runs must be
        # byte-identical, same discipline as the trace/monitor replay
        # gates above.
        tl_report = timeline_report(traced.tracer.spans)
        tl_stable = dumps_timeline(tl_report) == dumps_timeline(
            timeline_report(traced_replay.tracer.spans)
        )
        # Hierarchical-merge equivalence: folding every per-window
        # latency sketch back together must reproduce the whole-run
        # sketch with byte-identical serialized state — the windowed
        # layer loses nothing relative to the run aggregate.
        merged_window = traced.metrics.merged_window_latency().to_json()
        whole_run = traced.metrics.latency_sketch(None).to_json()
        tenant_card = traced.metrics.tenant_scorecard()
        trace_block["timeline"] = {
            "window_s": tl_report["meta"]["window_s"],
            "n_windows": tl_report["meta"]["n_windows"],
            "n_series": tl_report["meta"]["n_series"],
            "merged_latency_count": tl_report["merged_latency"]["count"],
            "tenants": tenant_card,
        }
        criteria["timeline_byte_stable"] = bool(tl_stable)
        criteria["windowed_sketch_merge_exact"] = bool(
            merged_window == whole_run
        )
        criteria["tenant_coverage_complete"] = bool(
            sorted(tenant_card) == ["t0", "t1", "t2"]
            and all(row["requests"] > 0 for row in tenant_card.values())
        )

        # SLO burn-rate: the healthy traced run must stay inside budget
        # and fire nothing; the drift run must burn, and the replay of
        # its independent re-run must produce a byte-identical report.
        slo_specs = default_slo_specs()
        healthy_slo = slo_report(traced.tracer.spans, slo_specs)
        drift_slo = slo_report(drift_tracer.spans, slo_specs)
        slo_stable = dumps_slo(drift_slo) == dumps_slo(
            slo_report(drift_tracer2.spans, slo_specs)
        )
        avail_first = drift_slo["first_alert_t"]["serve_availability"]
        detection_s = None if avail_first is None else avail_first - t_inject
        trace_block["slo"] = {
            "healthy": healthy_slo["slos"],
            "healthy_n_alerts": healthy_slo["meta"]["n_alerts"],
            "drift": drift_slo["slos"],
            "drift_n_alerts": drift_slo["meta"]["n_alerts"],
            "drift_first_alert_t": drift_slo["first_alert_t"],
            "t_inject_s": t_inject,
            "detection_latency_s": detection_s,
        }
        criteria["slo_quiet_on_healthy"] = bool(
            healthy_slo["meta"]["n_alerts"] == 0
        )
        criteria["slo_fires_on_drift"] = bool(
            drift_slo["meta"]["n_alerts"] >= 1
        )
        criteria["deterministic_slo_replay"] = bool(slo_stable)
        if gate_overheads:
            # The availability burn (mass rejects behind the stalled
            # retrain) only gates at full stream sizes: a smoke stream
            # ends a few windows after injection, before the slow-window
            # evidence the burn policy deliberately waits for exists.
            criteria["slo_detection_within_0_5s"] = bool(
                detection_s is not None and 0.0 <= detection_s <= 0.5
            )

    # ---- kernel: fused float32 serving forward pass -------------------
    kernel_block = _bench_predict_kernel(seed=seed)

    payload = {
        "benchmark": "serve",
        "n_requests": n_requests,
        "seed": seed,
        "epochs": epochs,
        "kernel": kernel_block,
        "cost_model": {
            "t_cache_hit": cost.t_cache_hit,
            "t_batch_overhead": cost.t_batch_overhead,
            "t_per_row_uq": cost.t_per_row_uq,
            "t_point_row": cost.t_point_row,
            "t_simulate": cost.t_simulate,
            "sim_cv": cost.sim_cv,
            "t_retrain": cost.t_retrain,
        },
        "throughput_sweep": sweep,
        "batched_vs_unbatched": batched_vs_unbatched,
        "cache": cache_block,
        "effective_speedup_agreement": agreement,
        "latency_scorecard": ag.metrics.scorecard(),
        "heavy_tail": heavy_tail,
        "criteria": criteria,
        "all_criteria_pass": bool(all(criteria.values())),
    }
    if trace_block is not None:
        payload["trace"] = trace_block
    if calibrate:
        calibrated = ServeCostModel.calibrate(
            build_engine(tolerance=None, seed=seed, epochs=epochs).surrogate,
            rng=seed,
        )
        payload["wall_clock_calibration"] = {
            "t_cache_hit": calibrated.t_cache_hit,
            "t_batch_overhead": calibrated.t_batch_overhead,
            "t_per_row_uq": calibrated.t_per_row_uq,
            "t_point_row": calibrated.t_point_row,
        }
    return payload


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; writes the serving bench payload as JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Benchmark the UQ-gated serving layer and record the "
        "repo's tracked serving baseline.",
    )
    parser.add_argument(
        "--n-requests", type=int, default=2000,
        help="requests per scenario stream (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for load and engines (default: %(default)s)",
    )
    parser.add_argument(
        "--epochs", type=int, default=200,
        help="surrogate training epochs per engine (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-calibration", action="store_true",
        help="omit the wall-clock calibration block (CI smoke runs)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="re-run the agreement scenario with a Tracer attached, write "
        "the trace as JSONL, gate on replay determinism, trace-derived "
        "speedup agreement, and instrumentation overhead, and run the "
        "monitored + drift-injection control-loop scenarios",
    )
    parser.add_argument(
        "--trace-output", default="TRACE_serve.jsonl.gz",
        help="trace JSONL path when --trace is set; a .gz suffix writes "
        "gzip (default: %(default)s); the drift-scenario trace lands at "
        "the _drift sibling path",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    payload = run_serve_bench(
        n_requests=args.n_requests,
        seed=args.seed,
        epochs=args.epochs,
        calibrate=not args.skip_calibration,
        trace=args.trace,
        trace_output=args.trace_output if args.trace else None,
    )
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    b = payload["batched_vs_unbatched"]
    c = payload["cache"]
    a = payload["effective_speedup_agreement"]
    print(
        f"batched {b['batched_throughput']:.0f}/s vs unbatched "
        f"{b['unbatched_throughput']:.0f}/s  ({b['speedup']:.1f}x)"
    )
    print(
        f"cache p50 {c['p50_cache_hit_s'] * 1e6:.1f} us vs surrogate "
        f"{c['p50_surrogate_s'] * 1e6:.1f} us  ({c['speedup']:.1f}x)"
    )
    print(
        f"effective speedup measured {a['measured_speedup']:.1f} vs analytic "
        f"{a['analytic_speedup']:.1f}  (rel diff {a['rel_diff'] * 100:.2f}%)"
    )
    ht = payload["heavy_tail"]
    sc = payload["latency_scorecard"]["all"]
    print(
        f"scorecard (agreement): p50 {sc['p50_s'] * 1e3:.2f} ms  "
        f"p99 {sc['p99_s'] * 1e3:.2f} ms  p99.9 {sc['p999_s'] * 1e3:.2f} ms"
    )
    print(
        f"heavy tail (pareto {ht['pareto_shape']}): gap CV^2 "
        f"{ht['gap_cv2']:.1f}, sketch worst rel err "
        f"{ht['sketch_certification']['worst_rel_err']:.2e} "
        f"(alpha {ht['sketch_certification']['alpha']})"
    )
    k = payload["kernel"]
    kb = max(k["batches"], key=lambda r: r["batch"])
    print(
        f"kernel f32 predict at batch {kb['batch']}: "
        f"{kb['t_predict_f64_s'] * 1e6:.1f} us -> "
        f"{kb['t_predict_f32_s'] * 1e6:.1f} us "
        f"({kb['speedup']:.2f}x, criteria: {k['criteria']})"
    )
    if "trace" in payload:
        t = payload["trace"]
        print(
            f"trace: {t['n_spans']} spans, speedup {t['speedup_from_trace']:.1f} "
            f"({t['rel_diff_vs_measured'] * 100:.2f}% vs measured), "
            f"overhead {t['overhead'] * 100:.2f}%"
        )
        w = t["whatif"]
        print(
            f"whatif faster_fallback: projected mean "
            f"{w['projected_mean_s'] * 1e3:.3f} ms vs actual "
            f"{w['actual_mean_s'] * 1e3:.3f} ms "
            f"(rel err {w['rel_err_mean'] * 100:.2f}%, "
            f"p99 rel err {w['rel_err_p99'] * 100:.2f}%)"
        )
        mon = t["monitor"]
        dr = t["drift"]
        print(
            f"monitor: overhead {mon['overhead_vs_traced'] * 100:.2f}% vs "
            f"traced, {mon['healthy_critical_alerts']} critical alerts on "
            f"healthy run"
        )
        print(
            f"drift: {dr['n_alerts']} alerts, "
            f"{dr['n_control_retrains']} control retrains "
            f"(inject at t={dr['t_inject_s']:.2f}s)"
        )
        slo = t["slo"]
        det = slo["detection_latency_s"]
        det_s = "n/a" if det is None else f"{det:.3f}s"
        print(
            f"slo: healthy {slo['healthy_n_alerts']} alerts, drift "
            f"{slo['drift_n_alerts']} alerts, availability burn detected "
            f"{det_s} after injection"
        )
    print(f"criteria: {payload['criteria']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
