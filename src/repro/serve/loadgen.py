"""Seeded open-loop load generation for the serving bench.

Open-loop means arrivals are scheduled by a stochastic process at a
fixed offered rate regardless of how the server is coping — the honest
way to probe saturation, because a closed-loop client slows down with
the server and hides overload.  Everything is drawn from one seeded
generator, so a given (seed, rate, n) triple always produces the exact
same request stream and any two serving configurations can be compared
on *identical* traffic.

Interarrival processes
----------------------
The default is Poisson (exponential gaps, CV² = 1), the classic
open-loop model.  Real query streams are burstier: the tail-latency
work needs arrival processes whose gap distribution has heavier tails
than exponential, because tail latency is dominated by bursts, not by
the mean rate.  Two seeded heavy-tailed options share the same mean gap
``1/rate``:

* ``"pareto"`` — Lomax (shifted Pareto) gaps with shape ``a > 1``:
  ``gap = (1/rate) * (a - 1) * X`` where ``X ~ numpy Pareto(a)``
  (``E[X] = 1/(a-1)``, so ``E[gap] = 1/rate``).  For ``a ≤ 2`` the gap
  variance is infinite — maximal burstiness at the same offered rate.
* ``"lognormal"`` — gaps with coefficient of variation ``cv``:
  ``sigma² = log(1 + cv²)``, ``mu = log(1/rate) - sigma²/2`` gives mean
  exactly ``1/rate``; ``cv = 1`` roughly matches Poisson variability
  while keeping a log-symmetric (heavier) upper tail.
"""

from __future__ import annotations

import numpy as np

from repro.serve.messages import Request
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

__all__ = ["OpenLoopLoadGenerator", "INTERARRIVALS"]

#: Supported interarrival-gap distributions.
INTERARRIVALS = ("exponential", "pareto", "lognormal")


class OpenLoopLoadGenerator:
    """Open-loop arrivals over a box-uniform query distribution.

    Parameters
    ----------
    rate:
        Offered load in queries per virtual second; every interarrival
        distribution is parameterized to a mean gap of ``1/rate``.
    bounds:
        ``(D, 2)`` array of per-dimension ``[low, high]`` bounds from
        which query points are drawn uniformly.
    duplicate_fraction:
        Probability that a request re-issues a previously generated point
        instead of drawing a fresh one — the knob that exercises the
        quantized LRU cache.
    relative_deadline:
        If set, every request carries ``deadline = t_arrival + this``;
        ``None`` disables deadline shedding.
    interarrival:
        Gap distribution: ``"exponential"`` (Poisson arrivals, the
        default), ``"pareto"`` (Lomax, heavy-tailed bursts) or
        ``"lognormal"``.
    pareto_shape:
        Lomax tail index ``a`` for ``interarrival="pareto"``; must be
        > 1 so the mean gap exists.  Smaller = burstier; the default
        1.5 has infinite gap variance.
    lognormal_cv:
        Coefficient of variation of the gaps for
        ``interarrival="lognormal"``.
    tenants:
        Optional tenant population: an int ``k`` names tenants
        ``"t0" .. "t{k-1}"``, or pass explicit label-value ids.  When
        set, every request is tagged with a deterministic tenant id so
        per-tenant labeled metrics see real traffic.  ``None`` (the
        default) leaves requests untagged.  Tenant assignment never
        draws from the main request generator, so enabling it leaves
        arrival times, query points and duplicates bit-identical.
    tenant_weights:
        Optional per-tenant traffic weights.  ``None`` assigns tenants
        round-robin by ``query_id`` (consumes no randomness at all);
        weights switch to i.i.d. sampling from a *separate* generator
        seeded with ``tenant_seed``.
    tenant_seed:
        Seed of the dedicated tenant-assignment stream used with
        ``tenant_weights``.
    """

    def __init__(
        self,
        rate: float,
        bounds: np.ndarray,
        *,
        duplicate_fraction: float = 0.0,
        relative_deadline: float | None = None,
        interarrival: str = "exponential",
        pareto_shape: float = 1.5,
        lognormal_cv: float = 1.0,
        tenants: int | list[str] | tuple[str, ...] | None = None,
        tenant_weights: list[float] | tuple[float, ...] | None = None,
        tenant_seed: int = 0,
    ):
        check_positive("rate", rate)
        self.bounds = np.atleast_2d(np.asarray(bounds, dtype=float))
        if self.bounds.ndim != 2 or self.bounds.shape[1] != 2:
            raise ValueError(f"bounds must have shape (D, 2), got {self.bounds.shape}")
        if np.any(self.bounds[:, 0] >= self.bounds[:, 1]):
            raise ValueError("each bounds row must satisfy low < high")
        if not 0.0 <= duplicate_fraction < 1.0:
            raise ValueError(
                f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
            )
        if relative_deadline is not None:
            check_positive("relative_deadline", relative_deadline)
        if interarrival not in INTERARRIVALS:
            raise ValueError(
                f"unknown interarrival {interarrival!r}; "
                f"expected one of {INTERARRIVALS}"
            )
        if interarrival == "pareto" and not pareto_shape > 1.0:
            raise ValueError(
                f"pareto_shape must be > 1 for a finite mean gap, "
                f"got {pareto_shape}"
            )
        if interarrival == "lognormal":
            check_positive("lognormal_cv", lognormal_cv)
        if tenants is None:
            tenant_names: tuple[str, ...] = ()
        elif isinstance(tenants, int):
            if tenants < 1:
                raise ValueError(f"tenants must be >= 1, got {tenants}")
            tenant_names = tuple(f"t{i}" for i in range(tenants))
        else:
            tenant_names = tuple(str(t) for t in tenants)
            if not tenant_names:
                raise ValueError("tenants must not be an empty sequence")
            if len(set(tenant_names)) != len(tenant_names):
                raise ValueError(f"duplicate tenant ids: {tenant_names}")
        if tenant_weights is not None:
            if not tenant_names:
                raise ValueError("tenant_weights requires tenants")
            if len(tenant_weights) != len(tenant_names):
                raise ValueError(
                    f"tenant_weights length {len(tenant_weights)} != "
                    f"{len(tenant_names)} tenants"
                )
            if any(w < 0 for w in tenant_weights) or sum(tenant_weights) <= 0:
                raise ValueError("tenant_weights must be >= 0 with a positive sum")
        self.rate = float(rate)
        self.duplicate_fraction = float(duplicate_fraction)
        self.relative_deadline = relative_deadline
        self.interarrival = interarrival
        self.pareto_shape = float(pareto_shape)
        self.lognormal_cv = float(lognormal_cv)
        self.tenants = tenant_names
        self.tenant_weights = (
            None if tenant_weights is None else tuple(float(w) for w in tenant_weights)
        )
        self.tenant_seed = int(tenant_seed)

    @property
    def dim(self) -> int:
        """Query-point dimensionality."""
        return self.bounds.shape[0]

    def _gaps(self, n: int, gen: np.random.Generator) -> np.ndarray:
        """Draw ``n`` interarrival gaps with mean ``1/rate``."""
        mean_gap = 1.0 / self.rate
        if self.interarrival == "pareto":
            # numpy's pareto() samples X with E[X] = 1/(a-1); scaling by
            # mean_gap * (a-1) pins the mean gap while keeping the tail
            # index a.
            return gen.pareto(self.pareto_shape, size=n) * mean_gap * (
                self.pareto_shape - 1.0
            )
        if self.interarrival == "lognormal":
            sigma2 = np.log1p(self.lognormal_cv**2)
            mu = np.log(mean_gap) - 0.5 * sigma2
            return gen.lognormal(mu, np.sqrt(sigma2), size=n)
        return gen.exponential(mean_gap, size=n)

    def _tenant_stream(self, n: int) -> list[str | None]:
        """Deterministic per-request tenant ids, independent of the main RNG.

        Round-robin assignment (the unweighted default) is a pure
        function of the request index; weighted assignment draws from a
        dedicated generator seeded with ``tenant_seed``.  Either way the
        main request stream (gaps, duplicates, points) is untouched, so
        tagging traffic cannot perturb an existing benchmark.
        """
        if not self.tenants:
            return [None] * n
        if self.tenant_weights is None:
            k = len(self.tenants)
            return [self.tenants[i % k] for i in range(n)]
        tgen = np.random.default_rng(self.tenant_seed)
        total = sum(self.tenant_weights)
        p = [w / total for w in self.tenant_weights]
        picks = tgen.choice(len(self.tenants), size=n, p=p)
        return [self.tenants[int(i)] for i in picks]

    def generate(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> list[Request]:
        """Produce ``n`` requests with monotone ids and arrival times."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        gen = ensure_rng(rng)
        gaps = self._gaps(n, gen)
        arrivals = np.cumsum(gaps)
        tenants = self._tenant_stream(n)
        lo, hi = self.bounds[:, 0], self.bounds[:, 1]
        requests: list[Request] = []
        for i in range(n):
            # The duplicate draw is consumed every iteration (not only when
            # history exists) so the stream tail is invariant to whether
            # request 0 could have been a duplicate.
            u = gen.random()
            if requests and u < self.duplicate_fraction:
                j = int(gen.integers(len(requests)))
                x = requests[j].x
            else:
                x = lo + gen.random(self.dim) * (hi - lo)
            t = float(arrivals[i])
            deadline = (
                None if self.relative_deadline is None else t + self.relative_deadline
            )
            requests.append(
                Request(
                    query_id=i,
                    x=x,
                    t_arrival=t,
                    deadline=deadline,
                    tenant=tenants[i],
                )
            )
        return requests
