"""Seeded open-loop load generation for the serving bench.

Open-loop means arrivals are scheduled by a Poisson process at a fixed
offered rate regardless of how the server is coping — the honest way to
probe saturation, because a closed-loop client slows down with the
server and hides overload.  Everything is drawn from one seeded
generator, so a given (seed, rate, n) triple always produces the exact
same request stream and any two serving configurations can be compared
on *identical* traffic.
"""

from __future__ import annotations

import numpy as np

from repro.serve.messages import Request
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

__all__ = ["OpenLoopLoadGenerator"]


class OpenLoopLoadGenerator:
    """Poisson arrivals over a box-uniform query distribution.

    Parameters
    ----------
    rate:
        Offered load in queries per virtual second (exponential
        inter-arrival times with this rate).
    bounds:
        ``(D, 2)`` array of per-dimension ``[low, high]`` bounds from
        which query points are drawn uniformly.
    duplicate_fraction:
        Probability that a request re-issues a previously generated point
        instead of drawing a fresh one — the knob that exercises the
        quantized LRU cache.
    relative_deadline:
        If set, every request carries ``deadline = t_arrival + this``;
        ``None`` disables deadline shedding.
    """

    def __init__(
        self,
        rate: float,
        bounds: np.ndarray,
        *,
        duplicate_fraction: float = 0.0,
        relative_deadline: float | None = None,
    ):
        check_positive("rate", rate)
        self.bounds = np.atleast_2d(np.asarray(bounds, dtype=float))
        if self.bounds.ndim != 2 or self.bounds.shape[1] != 2:
            raise ValueError(f"bounds must have shape (D, 2), got {self.bounds.shape}")
        if np.any(self.bounds[:, 0] >= self.bounds[:, 1]):
            raise ValueError("each bounds row must satisfy low < high")
        if not 0.0 <= duplicate_fraction < 1.0:
            raise ValueError(
                f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
            )
        if relative_deadline is not None:
            check_positive("relative_deadline", relative_deadline)
        self.rate = float(rate)
        self.duplicate_fraction = float(duplicate_fraction)
        self.relative_deadline = relative_deadline

    @property
    def dim(self) -> int:
        """Query-point dimensionality."""
        return self.bounds.shape[0]

    def generate(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> list[Request]:
        """Produce ``n`` requests with monotone ids and arrival times."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        gen = ensure_rng(rng)
        gaps = gen.exponential(1.0 / self.rate, size=n)
        arrivals = np.cumsum(gaps)
        lo, hi = self.bounds[:, 0], self.bounds[:, 1]
        requests: list[Request] = []
        for i in range(n):
            # The duplicate draw is consumed every iteration (not only when
            # history exists) so the stream tail is invariant to whether
            # request 0 could have been a duplicate.
            u = gen.random()
            if requests and u < self.duplicate_fraction:
                j = int(gen.integers(len(requests)))
                x = requests[j].x
            else:
                x = lo + gen.random(self.dim) * (hi - lo)
            t = float(arrivals[i])
            deadline = (
                None if self.relative_deadline is None else t + self.relative_deadline
            )
            requests.append(Request(query_id=i, x=x, t_arrival=t, deadline=deadline))
        return requests
