"""MLControl policy: how the serving loop reacts to monitor alerts.

The monitor suite (:mod:`repro.obs.monitor`) only *detects* — drift in
the surrogate's UQ calibration, SLO burn, shed storms.  This module
holds the server-side half of the closed loop: a :class:`ControlPolicy`
bounding which corrective actions the
:class:`~repro.serve.server.SurrogateServer` may take when an alert
carries one, and how hard:

* ``retrain`` — force an off-cadence
  :meth:`~repro.core.mlaround.MLAroundHPC.retrain_now`, capped at
  ``max_retrains`` per run so a mis-tuned monitor cannot thrash the
  trainer;
* ``tighten_gate`` — multiply the UQ admission tolerance by
  ``tighten_factor`` (floored at ``min_tolerance``), trading lookup
  fraction for trustworthiness while the surrogate recovers;
* ``force_fallback`` — disable surrogate lookups entirely for
  ``fallback_hold_s`` of virtual time, the circuit-breaker of last
  resort.

Every action the server executes is recorded as a span (kind ``"train"``
for retrains, ``"control"`` otherwise), so the §III-D ledger keeps
explaining the run's effective speedup *including* the cost of keeping
the surrogate honest.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ACTION_RETRAIN",
    "ACTION_TIGHTEN_GATE",
    "ACTION_FORCE_FALLBACK",
    "ControlPolicy",
]

# Mirrors repro.obs.monitor's action vocabulary; duplicated as literals
# so serve does not import obs (the dependency runs monitor -> nothing,
# server <- duck-typed suite, same as the tracer hooks).
ACTION_RETRAIN = "retrain"
ACTION_TIGHTEN_GATE = "tighten_gate"
ACTION_FORCE_FALLBACK = "force_fallback"


@dataclass(frozen=True)
class ControlPolicy:
    """Bounds on the serving loop's alert-driven corrective actions.

    Attributes
    ----------
    max_retrains:
        Alert-triggered retrains allowed per served stream (0 disables
        the retrain action entirely).
    tighten_factor:
        Multiplier applied to the engine's UQ tolerance on a
        ``tighten_gate`` action, in (0, 1].
    min_tolerance:
        Tightening never pushes the tolerance below this floor.
    fallback_hold_s:
        Virtual seconds the surrogate stays bypassed after a
        ``force_fallback`` action.
    """

    max_retrains: int = 4
    tighten_factor: float = 0.5
    min_tolerance: float = 1e-3
    fallback_hold_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retrains < 0:
            raise ValueError(f"max_retrains must be >= 0, got {self.max_retrains}")
        if not 0.0 < self.tighten_factor <= 1.0:
            raise ValueError(
                f"tighten_factor must be in (0, 1], got {self.tighten_factor}"
            )
        if self.min_tolerance <= 0:
            raise ValueError(f"min_tolerance must be > 0, got {self.min_tolerance}")
        if self.fallback_hold_s < 0:
            raise ValueError(
                f"fallback_hold_s must be >= 0, got {self.fallback_hold_s}"
            )

    def tightened(self, tolerance: float) -> float:
        """The tolerance after one tighten step (floored)."""
        return max(tolerance * self.tighten_factor, self.min_tolerance)
