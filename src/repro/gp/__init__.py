"""Gaussian-process surrogates with adaptive design-of-experiments.

The second surrogate backend of the tree (alongside the :mod:`repro.nn`
MLP): a numpy-only exact GP with ARD kernels (:mod:`repro.gp.kernels`),
Cholesky-factored inference with grow-only refit updates
(:mod:`repro.gp.gp`), marginal-likelihood hyperparameter fitting via a
from-scratch L-BFGS (:mod:`repro.gp.fit`), and the quoFEM-style
adaptive-DoE loop that grows the training set where the posterior is
most uncertain (:mod:`repro.gp.doe`).  :class:`GPSurrogate` satisfies
the same duck type as :class:`repro.core.surrogate.Surrogate`, so it
drops into the MLAroundHPC UQ gate and the serving stack unchanged.
``python -m repro.gp.bench`` runs the tracked GP-vs-ANN
sims-to-tolerance benchmark behind ``BENCH_gp_doe.json``.
"""

from repro.gp.doe import ACQUISITIONS, AdaptiveDoE, DoEResult
from repro.gp.fit import (
    CholeskyResult,
    LBFGS,
    OptimizeResult,
    jittered_cholesky,
    log_marginal_likelihood,
    optimize_hyperparams,
)
from repro.gp.gp import GPAnalyticUQ, GPSurrogate
from repro.gp.kernels import (
    KERNELS,
    Kernel,
    Matern32,
    Matern52,
    RBF,
    kernel_from_config,
    make_kernel,
)

__all__ = [
    "ACQUISITIONS",
    "AdaptiveDoE",
    "CholeskyResult",
    "DoEResult",
    "GPAnalyticUQ",
    "GPSurrogate",
    "KERNELS",
    "Kernel",
    "LBFGS",
    "Matern32",
    "Matern52",
    "OptimizeResult",
    "RBF",
    "jittered_cholesky",
    "kernel_from_config",
    "log_marginal_likelihood",
    "make_kernel",
    "optimize_hyperparams",
]
