"""Stationary covariance kernels with ARD lengthscales.

The Gaussian-process backend (:mod:`repro.gp.gp`) is generic over a
:class:`Kernel`: anything that can evaluate the cross-covariance matrix
``k(X1, X2)``, its diagonal, and the gradient of the training covariance
with respect to the *log* hyperparameters (the parameterization the
marginal-likelihood optimizer of :mod:`repro.gp.fit` works in, which
keeps lengthscales and variances positive by construction).

Three classic kernels are provided — the squared-exponential
:class:`RBF` and the :class:`Matern32` / :class:`Matern52` family — all
with automatic-relevance-determination (ARD) lengthscales: one positive
lengthscale per input dimension, so the fitted model reveals which of
the paper's D control parameters (§III-C) actually matter.

Every evaluation is built from elementwise numpy operations plus
fixed-order reductions over the feature axis, so row ``i`` of
``k(X1, X2)`` depends only on ``X1[i]`` — the property that makes the
GP posterior bitwise row-stable, mirroring the serving guarantee of
:meth:`repro.nn.model.MLP.predict_stable`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Kernel",
    "RBF",
    "Matern32",
    "Matern52",
    "KERNELS",
    "make_kernel",
    "kernel_from_config",
]


def _as_2d(x: np.ndarray, d: int, who: str) -> np.ndarray:
    x = np.atleast_2d(np.asarray(x, dtype=float))
    if x.shape[1] != d:
        raise ValueError(f"{who} expects {d} features, got shape {x.shape}")
    return x


class Kernel:
    """Base class: ARD stationary covariance with log-parameter access.

    Parameters
    ----------
    in_dim:
        Number of input features D.
    lengthscales:
        Scalar or length-D array of positive ARD lengthscales
        (scalar broadcasts to every dimension).
    variance:
        Positive signal variance :math:`\\sigma_f^2` (the kernel value at
        zero distance).
    """

    #: Registry name, set by subclasses.
    name = ""

    def __init__(
        self,
        in_dim: int,
        lengthscales: float | np.ndarray = 1.0,
        variance: float = 1.0,
    ):
        if in_dim < 1:
            raise ValueError(f"in_dim must be >= 1, got {in_dim}")
        self.in_dim = int(in_dim)
        ell = np.asarray(lengthscales, dtype=float)
        if ell.ndim == 0:
            ell = np.full(self.in_dim, float(ell))
        if ell.shape != (self.in_dim,):
            raise ValueError(
                f"lengthscales must be scalar or shape ({self.in_dim},), "
                f"got {ell.shape}"
            )
        if not np.all(np.isfinite(ell)) or np.any(ell <= 0):
            raise ValueError("lengthscales must be finite and > 0")
        if not np.isfinite(variance) or variance <= 0:
            raise ValueError(f"variance must be finite and > 0, got {variance}")
        self.lengthscales = ell
        self.variance = float(variance)

    # ------------------------------------------------------------------
    # log-parameter vector: [log ell_1..D, log variance]
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Number of kernel hyperparameters (D lengthscales + variance)."""
        return self.in_dim + 1

    def get_log_params(self) -> np.ndarray:
        """Current hyperparameters as ``[log ell_1..D, log variance]``."""
        return np.concatenate([np.log(self.lengthscales), [np.log(self.variance)]])

    def set_log_params(self, theta: np.ndarray) -> None:
        """Replace hyperparameters from a log-parameter vector."""
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.n_params:
            raise ValueError(f"expected {self.n_params} log-params, got {theta.size}")
        self.lengthscales = np.exp(theta[: self.in_dim])
        self.variance = float(np.exp(theta[self.in_dim]))

    def param_names(self) -> list[str]:
        """Human-readable names matching :meth:`get_log_params` order."""
        return [f"log_lengthscale[{d}]" for d in range(self.in_dim)] + [
            "log_variance"
        ]

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _scaled_sq_dists(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Pairwise ARD-scaled squared distances, shape (n1, n2).

        Computed from explicit differences (not the expanded
        ``|a|^2 + |b|^2 - 2ab`` form) so the result is exactly symmetric,
        exactly zero on coincident points, and each entry is a fixed-order
        reduction over the D feature axis — independent of the batch
        rows around it.
        """
        diff = (X1[:, None, :] - X2[None, :, :]) / self.lengthscales
        return np.einsum("nmd,nmd->nm", diff, diff, optimize=False)

    def _per_dim_sq(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Per-dimension scaled squared differences, shape (n1, n2, D)."""
        diff = (X1[:, None, :] - X2[None, :, :]) / self.lengthscales
        return diff * diff

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    def __call__(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Cross-covariance matrix ``k(X1, X2)``, shape (n1, n2)."""
        X1 = _as_2d(X1, self.in_dim, type(self).__name__)
        X2 = _as_2d(X2, self.in_dim, type(self).__name__)
        return self._value(X1, X2)

    def diag(self, n: int) -> np.ndarray:
        """``k(x, x)`` for ``n`` points — ``variance`` for stationary kernels."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return np.full(int(n), self.variance)

    def _value(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def grad_log_params(self, X: np.ndarray) -> list[np.ndarray]:
        """Gradients of ``k(X, X)`` w.r.t. each log hyperparameter.

        Returns one (n, n) matrix per entry of :meth:`get_log_params`, in
        the same order — the ``dK/dtheta_j`` terms of the marginal-
        likelihood gradient (:func:`repro.gp.fit.log_marginal_likelihood`).
        """
        X = _as_2d(X, self.in_dim, type(self).__name__)
        return self._grads(X)

    def _grads(self, X: np.ndarray) -> list[np.ndarray]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def config(self) -> dict:
        """JSON-ready description (kind + hyperparameters)."""
        return {
            "kind": self.name,
            "in_dim": self.in_dim,
            "lengthscales": self.lengthscales.tolist(),
            "variance": self.variance,
        }

    def __repr__(self) -> str:
        ell = np.array2string(self.lengthscales, precision=3, separator=", ")
        return f"{type(self).__name__}(ell={ell}, var={self.variance:.3g})"


class RBF(Kernel):
    """Squared-exponential kernel ``sigma_f^2 exp(-r^2 / 2)`` (ARD)."""

    name = "rbf"

    def _value(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * self._scaled_sq_dists(X1, X2))

    def _grads(self, X: np.ndarray) -> list[np.ndarray]:
        Q = self._per_dim_sq(X, X)  # (n, n, D)
        K = self.variance * np.exp(-0.5 * np.einsum("nmd->nm", Q, optimize=False))
        grads = [K * Q[:, :, d] for d in range(self.in_dim)]
        grads.append(K.copy())  # dK/d log variance = K
        return grads


class Matern32(Kernel):
    """Matérn-3/2 kernel ``sigma_f^2 (1 + sqrt(3) r) exp(-sqrt(3) r)`` (ARD).

    Once-differentiable sample paths — the standard choice when the
    simulated response is rougher than the infinitely smooth RBF prior
    assumes.
    """

    name = "matern32"
    _a = np.sqrt(3.0)

    def _value(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        r = np.sqrt(self._scaled_sq_dists(X1, X2))
        ar = self._a * r
        return self.variance * (1.0 + ar) * np.exp(-ar)

    def _grads(self, X: np.ndarray) -> list[np.ndarray]:
        Q = self._per_dim_sq(X, X)
        r = np.sqrt(np.einsum("nmd->nm", Q, optimize=False))
        ear = np.exp(-self._a * r)
        # dK/d log ell_d = sigma^2 a^2 q_d exp(-a r): the 1/r singularity
        # of dr/d log ell cancels against dK/dr ~ r, so the diagonal is
        # exactly zero without special-casing.
        base = self.variance * (self._a**2) * ear
        grads = [base * Q[:, :, d] for d in range(self.in_dim)]
        grads.append(self.variance * (1.0 + self._a * r) * ear)
        return grads


class Matern52(Kernel):
    """Matérn-5/2 kernel ``sigma_f^2 (1 + a r + a^2 r^2 / 3) exp(-a r)``.

    ``a = sqrt(5)``; twice-differentiable sample paths, the usual default
    for surrogate modeling of smooth-but-not-analytic simulator responses
    (quoFEM's default GP prior family).
    """

    name = "matern52"
    _a = np.sqrt(5.0)

    def _value(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        r = np.sqrt(self._scaled_sq_dists(X1, X2))
        ar = self._a * r
        return self.variance * (1.0 + ar + ar * ar / 3.0) * np.exp(-ar)

    def _grads(self, X: np.ndarray) -> list[np.ndarray]:
        Q = self._per_dim_sq(X, X)
        r = np.sqrt(np.einsum("nmd->nm", Q, optimize=False))
        ar = self._a * r
        ear = np.exp(-ar)
        # dK/d log ell_d = (sigma^2 a^2 / 3)(1 + a r) q_d exp(-a r);
        # the r -> 0 limit is again handled implicitly.
        base = self.variance * (self._a**2 / 3.0) * (1.0 + ar) * ear
        grads = [base * Q[:, :, d] for d in range(self.in_dim)]
        grads.append(self.variance * (1.0 + ar + ar * ar / 3.0) * ear)
        return grads


#: Registry of kernel constructors by name.
KERNELS: dict[str, type[Kernel]] = {
    RBF.name: RBF,
    Matern32.name: Matern32,
    Matern52.name: Matern52,
}


def make_kernel(
    name: str,
    in_dim: int,
    *,
    lengthscales: float | np.ndarray = 1.0,
    variance: float = 1.0,
) -> Kernel:
    """Construct a registered kernel by name (``rbf``/``matern32``/``matern52``)."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {sorted(KERNELS)}")
    return KERNELS[name](in_dim, lengthscales=lengthscales, variance=variance)


def kernel_from_config(config: dict) -> Kernel:
    """Rebuild a kernel saved by :meth:`Kernel.config`."""
    kind = config.get("kind")
    if kind not in KERNELS:
        raise ValueError(f"unknown kernel kind {kind!r} in config")
    return KERNELS[kind](
        int(config["in_dim"]),
        lengthscales=np.asarray(config["lengthscales"], dtype=float),
        variance=float(config["variance"]),
    )
