"""Adaptive design-of-experiments driven by the GP posterior.

The quoFEM/SimCenter surrogate workflow (SNIPPETS.md) grows a Gaussian-
process training set *adaptively*: fit on a small seed design, then
repeatedly run the expensive simulator exactly where the surrogate is
most uncertain, until a tolerance is met.  §III-D of the paper makes
this the biggest lever on effective speedup — every simulator call the
DoE loop avoids is wall-clock the surrogate saved.

:class:`AdaptiveDoE` implements quoFEM's three input regimes:

* **Case 1** (:meth:`AdaptiveDoE.from_bounds`) — parameter bounds plus a
  simulator; candidate designs are drawn fresh from the box each round.
* **Case 2** (:meth:`AdaptiveDoE.from_pool`) — a fixed dataset of
  candidate inputs plus a simulator; acquisition consumes the pool.
* **Case 3** (:meth:`AdaptiveDoE.from_dataset`) — a pure input/output
  dataset and no simulator; acquisition selects which existing rows the
  GP actually needs (data-efficiency without any new runs).

Two acquisition rules are provided: ``"variance"`` picks the candidates
with the largest *epistemic* posterior std (quoFEM's default), and
``"imse"`` scores each candidate by how much observing it would shrink
the integrated posterior variance over a monitor set — the classic
IMSE-reduction criterion :math:`\\sum_m k_n(c, m)^2 / (\\sigma_n^2(c) +
\\sigma_{noise}^2)`.

Results are :class:`DoEResult`, a :class:`~repro.core.active.
ActiveLearningResult` subclass, so the GP DoE loop, the ANN+uncertainty
loop and the random baseline all score under the same
:func:`~repro.core.active.compare_campaigns` harness in the same
currency: simulator calls to target accuracy.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.active import ActiveLearningResult
from repro.core.simulation import RunDatabase, Simulation, SimulationError
from repro.gp.gp import GPSurrogate
from repro.nn import metrics
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["ACQUISITIONS", "AdaptiveDoE", "DoEResult"]

#: Supported acquisition rules.
ACQUISITIONS = ("variance", "imse")


@dataclass
class DoEResult(ActiveLearningResult):
    """Trace of one adaptive-DoE campaign.

    Extends the shared campaign record with the DoE-specific signals:
    which quoFEM input regime ran, and the per-round maximum epistemic
    posterior std over the candidate set (scaled units) — the quantity
    ``target_std`` stopping watches.
    """

    case: str = ""
    max_std: list[float] = field(default_factory=list)

    @property
    def final_max_std(self) -> float:
        """Last recorded candidate-set posterior std (nan before any round)."""
        return self.max_std[-1] if self.max_std else float("nan")


class AdaptiveDoE:
    """GP-driven sequential design loop over one of quoFEM's three cases.

    Construct via :meth:`from_bounds` / :meth:`from_pool` /
    :meth:`from_dataset` rather than directly.  The loop owns a single
    persistent :class:`~repro.gp.gp.GPSurrogate` and refits it on the
    grown data each round, so between hyperparameter re-optimizations
    the refit takes the GP's cheap grow-only factor-update path.

    Parameters
    ----------
    gp:
        The (unfitted) surrogate to grow.
    x_test, y_test:
        Optional fixed evaluation set for the accuracy trace (required
        when stopping on ``target_mae``).
    batch_size:
        Designs acquired per round (greedy top-k under the acquisition).
    seed_size:
        Random designs evaluated before the first fit.
    n_candidates:
        Candidate designs scored per round (Case 1 only; pool cases
        score every remaining row).
    n_monitor:
        Monitor-set size for the ``"imse"`` acquisition integral.
    acquisition:
        ``"variance"`` or ``"imse"``.
    rng:
        Seed/generator for the seed design, candidate draws and
        simulator noise.
    """

    def __init__(
        self,
        gp: GPSurrogate,
        *,
        case: str,
        simulation: Simulation | None = None,
        bounds: np.ndarray | None = None,
        pool: np.ndarray | None = None,
        pool_y: np.ndarray | None = None,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        batch_size: int = 1,
        seed_size: int = 8,
        n_candidates: int = 128,
        n_monitor: int = 64,
        acquisition: str = "variance",
        rng: int | np.random.Generator | None = None,
    ):
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; choose from {ACQUISITIONS}"
            )
        if batch_size < 1 or seed_size < 2:
            raise ValueError("batch_size >= 1 and seed_size >= 2 required")
        if n_candidates < 1 or n_monitor < 1:
            raise ValueError("n_candidates and n_monitor must be >= 1")
        self.gp = gp
        self.case = case
        self.simulation = simulation
        self.bounds = bounds
        self.pool = pool
        self.pool_y = pool_y
        self.x_test = None if x_test is None else np.atleast_2d(
            np.asarray(x_test, dtype=float)
        )
        self.y_test = None if y_test is None else np.atleast_2d(
            np.asarray(y_test, dtype=float)
        )
        self.batch_size = int(batch_size)
        self.seed_size = int(seed_size)
        self.n_candidates = int(n_candidates)
        self.n_monitor = int(n_monitor)
        self.acquisition = acquisition
        self.rng = ensure_rng(rng)
        self._sim_rng, self._design_rng = spawn_rngs(self.rng, 2)
        self.db = RunDatabase()
        #: Optional duck-typed tracer; defaults to the surrogate's.
        self.tracer = gp.tracer
        self._unpicked: np.ndarray | None = (
            None if pool is None else np.ones(len(pool), dtype=bool)
        )
        # Dataset case: labels come from the stored outputs, not a solver.
        self._X_rows: list[np.ndarray] = []
        self._Y_rows: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # constructors for the three quoFEM cases
    # ------------------------------------------------------------------
    @classmethod
    def from_bounds(
        cls,
        gp: GPSurrogate,
        simulation: Simulation,
        bounds: np.ndarray,
        **kwargs,
    ) -> "AdaptiveDoE":
        """Case 1 — parameter box + simulator; candidates drawn fresh."""
        bounds = np.asarray(bounds, dtype=float)
        if bounds.ndim != 2 or bounds.shape != (gp.in_dim, 2):
            raise ValueError(
                f"bounds must have shape ({gp.in_dim}, 2), got {bounds.shape}"
            )
        if not np.all(bounds[:, 0] < bounds[:, 1]):
            raise ValueError("each bounds row must satisfy low < high")
        return cls(gp, case="bounds", simulation=simulation, bounds=bounds, **kwargs)

    @classmethod
    def from_pool(
        cls,
        gp: GPSurrogate,
        simulation: Simulation,
        pool: np.ndarray,
        **kwargs,
    ) -> "AdaptiveDoE":
        """Case 2 — fixed candidate inputs + simulator; pool is consumed."""
        pool = np.atleast_2d(np.asarray(pool, dtype=float))
        if pool.shape[1] != gp.in_dim:
            raise ValueError(f"pool expects {gp.in_dim} features, got {pool.shape}")
        return cls(gp, case="pool", simulation=simulation, pool=pool, **kwargs)

    @classmethod
    def from_dataset(
        cls,
        gp: GPSurrogate,
        X: np.ndarray,
        Y: np.ndarray,
        **kwargs,
    ) -> "AdaptiveDoE":
        """Case 3 — pure dataset, no simulator; rows are selected, not run."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.asarray(Y, dtype=float)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError("X and Y row counts differ")
        if X.shape[1] != gp.in_dim or Y.shape[1] != gp.out_dim:
            raise ValueError(
                f"dataset shapes {X.shape}/{Y.shape} do not match GP "
                f"({gp.in_dim} -> {gp.out_dim})"
            )
        return cls(gp, case="dataset", pool=X, pool_y=Y, **kwargs)

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        target_mae: float | None = None,
        target_std: float | None = None,
        max_rounds: int = 20,
    ) -> DoEResult:
        """Execute the adaptive loop.

        Stops when the test-set MAE reaches ``target_mae`` (requires
        ``x_test``/``y_test``), when the maximum epistemic posterior std
        over the candidate set falls to ``target_std`` (scaled units),
        or after ``max_rounds`` acquisition rounds — whichever first.
        """
        if target_mae is not None and self.x_test is None:
            raise ValueError("target_mae stopping requires x_test/y_test")
        result = DoEResult(case=self.case)

        seed = self._seed_design()
        n_calls = self._observe(seed)
        with self._span("gp.doe.seed", len(seed)):
            if self._finish_round(result, n_calls, target_mae, target_std):
                return result

        for _ in range(max_rounds):
            candidates = self._candidates()
            if len(candidates) == 0:
                break
            with self._span("gp.doe.round", len(candidates)):
                picked = self._acquire(candidates)
                n_calls = self._observe(picked)
                if self._finish_round(result, n_calls, target_mae, target_std):
                    return result
        return result

    # ------------------------------------------------------------------
    def _span(self, name: str, n_rows: int):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, "gp.doe", attrs={"n_rows": int(n_rows)})

    def _seed_design(self) -> np.ndarray:
        """Initial random design (points for Case 1, row indices otherwise)."""
        if self.case == "bounds":
            return self._sample_box(self.seed_size)
        n = len(self.pool)
        size = min(self.seed_size, n)
        idx = self._design_rng.choice(n, size=size, replace=False)
        self._unpicked[idx] = False
        return idx

    def _sample_box(self, n: int) -> np.ndarray:
        lo, hi = self.bounds[:, 0], self.bounds[:, 1]
        return lo + (hi - lo) * self._design_rng.random((n, self.gp.in_dim))

    def _candidates(self) -> np.ndarray:
        """This round's candidate designs (points, or row indices for pools)."""
        if self.case == "bounds":
            return self._sample_box(self.n_candidates)
        return np.flatnonzero(self._unpicked)

    def _candidate_points(self, candidates: np.ndarray) -> np.ndarray:
        return candidates if self.case == "bounds" else self.pool[candidates]

    def _acquire(self, candidates: np.ndarray) -> np.ndarray:
        """Greedy top-k under the acquisition rule."""
        points = self._candidate_points(candidates)
        k = min(self.batch_size, len(points))
        scores = self._scores(points)
        order = np.argsort(scores)[-k:]
        picked = candidates[order]
        if self.case != "bounds":
            self._unpicked[picked] = False
        return picked

    def _scores(self, points: np.ndarray) -> np.ndarray:
        uq = self.gp._posterior_scaled(
            self.gp.x_scaler.transform(points), include_noise=False
        )
        var = uq.std[:, 0] ** 2
        if self.acquisition == "variance":
            return var
        # IMSE reduction: how much observing c shrinks integrated variance
        # over the monitor set — sum_m k_n(c, m)^2 / (var(c) + noise).
        monitor = self._monitor_points()
        cross = self.gp.posterior_cov(points, monitor)
        denom = var + self.gp.noise
        return np.einsum("cm,cm->c", cross, cross, optimize=False) / denom

    def _monitor_points(self) -> np.ndarray:
        if self.case == "bounds":
            return self._sample_box(self.n_monitor)
        n = len(self.pool)
        size = min(self.n_monitor, n)
        idx = self._design_rng.choice(n, size=size, replace=False)
        return self.pool[idx]

    def _observe(self, picked: np.ndarray) -> int:
        """Label the picked designs; returns the simulator calls spent.

        Cases 1/2 run the simulator (failures still cost a call); Case 3
        copies the stored rows — zero simulator cost by construction.
        """
        if self.case == "dataset":
            for i in picked:
                self._X_rows.append(self.pool[i])
                self._Y_rows.append(self.pool_y[i])
            return 0
        points = picked if self.case == "bounds" else self.pool[picked]
        for x in points:
            try:
                self.simulation.run_recorded(x, self.db, self._sim_rng)
            except SimulationError:
                pass  # failed run: recorded, costed, yields no training row
        return len(points)

    def _training_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self.case == "dataset":
            return np.asarray(self._X_rows), np.asarray(self._Y_rows)
        return self.db.training_arrays()

    def _finish_round(
        self,
        result: DoEResult,
        n_calls: int,
        target_mae: float | None,
        target_std: float | None,
    ) -> bool:
        """Refit on the grown data, record the round, check both targets."""
        X, Y = self._training_arrays()
        self.gp.fit(X, Y)
        result.n_labeled.append(len(X))
        result.sim_calls.append(int(n_calls))
        if self.x_test is not None:
            pred = self.gp.predict(self.x_test)
            result.test_mae.append(metrics.mae(pred, self.y_test))
        else:
            result.test_mae.append(float("nan"))
        probe = self._candidates()
        if len(probe):
            uq = self.gp._posterior_scaled(
                self.gp.x_scaler.transform(self._candidate_points(probe)),
                include_noise=False,
            )
            result.max_std.append(float(np.max(uq.std)))
        else:
            result.max_std.append(0.0)
        hit_mae = target_mae is not None and result.final_test_mae <= target_mae
        hit_std = target_std is not None and result.final_max_std <= target_std
        if hit_mae or hit_std:
            result.reached_target = True
            return True
        return False
