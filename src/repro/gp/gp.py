"""Exact Gaussian-process surrogates with grow-only refits.

:class:`GPSurrogate` is the second :class:`~repro.core.surrogate.Surrogate`
backend of the tree (the quoFEM/SimCenter pattern from SNIPPETS.md): a
numpy-only exact GP with Cholesky-factored inference, analytic predictive
mean *and* variance, and marginal-likelihood hyperparameter fitting
(:mod:`repro.gp.fit`).  It satisfies the ANN surrogate's duck type —
``fit`` / ``predict`` / ``predict_stable`` / ``predict_with_uncertainty``
returning a :class:`~repro.core.uq.UQResult`, plus the ``x_scaler`` /
``y_scaler`` / ``uq_backend`` attributes the UQ gate reads — so it drops
into :class:`~repro.core.mlaround.MLAroundHPC` and the serving stack
unchanged, replacing MC-dropout's S stochastic forward passes with one
closed-form posterior evaluation.

Two properties matter operationally:

* **Grow-only refits.**  ``MLAroundHPC`` retrains by handing the
  surrogate the *full* run database, which only ever grows at the tail.
  When the previous training rows are a prefix of the new ones and
  hyperparameters are not due for re-optimization, the Cholesky factor
  is extended by a block update (solve + small factorization of the new
  rows' Schur complement) instead of refactored from scratch —
  O(n^2 m + m^3) instead of O((n+m)^3).
* **Bitwise row-stability.**  ``predict_stable`` and
  ``predict_with_uncertainty`` evaluate every contraction in a fixed
  summation order (einsum / sequential substitution), so row ``i`` of a
  batched posterior is bitwise identical to the same query posed alone —
  the invariant :mod:`repro.serve` micro-batching relies on.
"""

from __future__ import annotations

import json
from contextlib import nullcontext

import numpy as np

from repro.core.surrogate import SurrogateReport
from repro.core.uq import UQBackend, UQResult
from repro.gp.fit import (
    DEFAULT_JITTER,
    jittered_cholesky,
    log_marginal_likelihood,
    optimize_hyperparams,
)
from repro.gp.kernels import Kernel, kernel_from_config, make_kernel
from repro.nn import metrics
from repro.nn.scalers import StandardScaler
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["GPAnalyticUQ", "GPSurrogate", "solve_lower_stable"]


def solve_lower_stable(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Forward-substitute ``L Z = B`` with batch-independent summation order.

    Each output column (one query) is computed by sequential fixed-order
    contractions (``einsum`` with ``optimize=False``), so column ``j``
    of the result is bitwise identical no matter how many other columns
    share the call — the triangular-solve analogue of
    :meth:`repro.nn.model.MLP.predict_stable`.  O(n^2 m) for an (n, n)
    factor and (n, m) right-hand side.
    """
    L = np.asarray(L, dtype=float)
    B = np.asarray(B, dtype=float)
    squeeze = B.ndim == 1
    if squeeze:
        B = B[:, None]
    n = L.shape[0]
    if L.shape != (n, n) or B.shape[0] != n:
        raise ValueError(f"shape mismatch: L {L.shape}, B {B.shape}")
    # Work in (m, n) layout so every substitution step reduces over the
    # *contiguous* trailing axis of each column's own row — the same
    # fixed-order contraction shape as ``predict_stable``'s
    # ``"nd,nd->n"``, whose per-row result does not depend on how many
    # other rows share the call.  (Reducing over the strided outer axis
    # of an (i, m) block is NOT batch-independent: the inner kernel
    # changes with m.)
    Zt = np.empty((B.shape[1], n))
    Bt = np.ascontiguousarray(B.T)
    for i in range(n):
        if i:
            acc = np.einsum("i,mi->m", L[i, :i], Zt[:, :i], optimize=False)
            Zt[:, i] = (Bt[:, i] - acc) / L[i, i]
        else:
            Zt[:, 0] = Bt[:, 0] / L[0, 0]
    return Zt[0] if squeeze else np.ascontiguousarray(Zt.T)


class GPAnalyticUQ(UQBackend):
    """Analytic GP posterior as a :class:`~repro.core.uq.UQBackend`.

    Where :class:`~repro.core.uq.MCDropoutUQ` runs S stochastic forward
    passes, the GP's predictive distribution is available in closed form
    — one kernel evaluation and one triangular solve.  The backend
    operates in the surrogate's *scaled* spaces (exactly like the
    MC-dropout backend operates on the scaled MLP), and the owning
    :class:`GPSurrogate` wraps it with the usual scale/descale plumbing.
    """

    def __init__(self, gp: "GPSurrogate", *, include_noise: bool = True):
        self._gp = gp
        self.include_noise = bool(include_noise)

    def predict(self, x: np.ndarray) -> UQResult:
        """Posterior mean/std for already-scaled inputs (scaled units)."""
        return self._gp._posterior_scaled(
            np.atleast_2d(np.asarray(x, dtype=float)),
            include_noise=self.include_noise,
        )


class GPSurrogate:
    """A trained Gaussian-process stand-in for an expensive simulation.

    Parameters
    ----------
    in_dim, out_dim:
        Feature signature (the paper's D and the output count).  Outputs
        share one kernel (independent-outputs convention): a single
        Cholesky factor serves all K columns.
    kernel:
        Kernel name (``"rbf"`` / ``"matern32"`` / ``"matern52"``) or a
        ready :class:`~repro.gp.kernels.Kernel` instance.
    noise:
        Initial observation-noise variance (optimized unless
        ``optimize=False``).
    optimize:
        Fit hyperparameters by marginal likelihood on (re)fit.  With
        ``False`` the kernel is used as constructed — and every refit on
        grown data takes the fast grow-only path.
    n_restarts, max_opt_iter:
        Multi-start count and per-start iteration cap forwarded to
        :func:`repro.gp.fit.optimize_hyperparams`.
    reopt_growth:
        Re-optimize hyperparameters only when the training count has
        grown by at least this factor since the last optimization;
        refits in between reuse the hyperparameters and extend the
        factor in place (grow-only update).
    test_fraction:
        Held-out fraction for the accuracy report.  Defaults to 0.0 —
        unlike the ANN surrogate, the GP does not need held-out data for
        model selection, and adaptive DoE cannot afford to discard 30%
        of its expensive simulator runs.  Any positive value disables
        the grow-only path (the random split breaks prefix structure).
    rng:
        Seed/generator controlling the multi-start perturbations and the
        test split.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        kernel: str | Kernel = "rbf",
        noise: float = 1e-2,
        optimize: bool = True,
        n_restarts: int = 2,
        max_opt_iter: int = 60,
        reopt_growth: float = 1.5,
        test_fraction: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ):
        if not 0.0 <= test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in [0, 1), got {test_fraction}")
        if noise <= 0 or not np.isfinite(noise):
            raise ValueError(f"noise must be finite and > 0, got {noise}")
        if reopt_growth < 1.0:
            raise ValueError(f"reopt_growth must be >= 1, got {reopt_growth}")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.kernel: Kernel = (
            make_kernel(kernel, self.in_dim) if isinstance(kernel, str) else kernel
        )
        if self.kernel.in_dim != self.in_dim:
            raise ValueError(
                f"kernel expects {self.kernel.in_dim} features, surrogate {self.in_dim}"
            )
        self.log_noise = float(np.log(noise))
        self.optimize = bool(optimize)
        self.n_restarts = int(n_restarts)
        self.max_opt_iter = int(max_opt_iter)
        self.reopt_growth = float(reopt_growth)
        self.test_fraction = float(test_fraction)
        gen = ensure_rng(rng)
        self._opt_rng, self._split_rng = spawn_rngs(gen, 2)
        self.x_scaler = StandardScaler()
        self.y_scaler = StandardScaler()
        self._fitted = False
        self.report: SurrogateReport | None = None
        self.uq_backend: UQBackend | None = None
        #: Optional duck-typed repro.obs.trace.Tracer — fit/predict/DoE
        #: work is wrapped in spans of kind "gp.fit" / "gp.predict".
        self.tracer = None
        #: Optional duck-typed repro.obs.metrics.MetricRegistry.
        self.registry = None
        # Training state (scaled spaces) + raw copies for prefix detection.
        self._X_raw: np.ndarray | None = None
        self._Y_raw: np.ndarray | None = None
        self._Xs: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._jitter = 0.0
        self._n_at_last_opt = 0
        self.last_lml = float("nan")
        self.n_full_factorizations = 0
        self.n_grow_updates = 0

    # ------------------------------------------------------------------
    def _span(self, name: str, kind: str, n_rows: int):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, kind, attrs={"n_rows": int(n_rows)})

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc()

    @property
    def n_train(self) -> int:
        """Number of training rows currently in the factorized model."""
        return 0 if self._Xs is None else len(self._Xs)

    @property
    def noise(self) -> float:
        """Observation-noise variance (original for unfitted, fitted after)."""
        return float(np.exp(self.log_noise))

    @property
    def jitter_used(self) -> float:
        """Diagonal jitter the current factorization needed (0 when none)."""
        return self._jitter

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, Y: np.ndarray) -> SurrogateReport:
        """(Re)train on (X, Y); returns the accuracy report.

        Rows with non-finite inputs or outputs (failed simulation runs)
        are dropped, matching the ANN surrogate.  When the previously
        fitted rows form a prefix of the new data and hyperparameters
        are not due for re-optimization, the Cholesky factor is extended
        in place (grow-only update) instead of rebuilt.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.asarray(Y, dtype=float)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.shape[1] != self.in_dim or Y.shape[1] != self.out_dim:
            raise ValueError(
                f"expected shapes (n, {self.in_dim}) and (n, {self.out_dim}); "
                f"got {X.shape} and {Y.shape}"
            )
        if len(X) != len(Y):
            raise ValueError("X and Y row counts differ")
        finite = np.all(np.isfinite(Y), axis=1) & np.all(np.isfinite(X), axis=1)
        X, Y = X[finite], Y[finite]
        if len(X) < 2:
            raise ValueError(f"need at least 2 finite samples, got {len(X)}")

        with self._span("gp.fit", "gp.fit", len(X)):
            if self._can_grow(X, Y):
                self._grow(X, Y)
            else:
                self._full_fit(X, Y)
        self.uq_backend = GPAnalyticUQ(self)
        return self.report

    def _can_grow(self, X: np.ndarray, Y: np.ndarray) -> bool:
        if not self._fitted or self.test_fraction > 0.0:
            return False
        n_old = len(self._X_raw)
        if len(X) <= n_old:
            return False
        if self.optimize and len(X) >= self.reopt_growth * self._n_at_last_opt:
            return False  # enough new data: re-optimize from scratch
        return bool(
            np.array_equal(X[:n_old], self._X_raw)
            and np.array_equal(Y[:n_old], self._Y_raw)
        )

    def _full_fit(self, X: np.ndarray, Y: np.ndarray) -> None:
        n_test = int(round(self.test_fraction * len(X)))
        if n_test:
            order = self._split_rng.permutation(len(X))
            test_idx, train_idx = order[:n_test], order[n_test:]
        else:
            test_idx = np.empty(0, dtype=int)
            train_idx = np.arange(len(X))
        X_train, Y_train = X[train_idx], Y[train_idx]
        if len(X_train) < 2:
            raise ValueError("test split left fewer than 2 training rows")

        Xs = self.x_scaler.fit(X_train).transform(X_train)
        Ys = self.y_scaler.fit(Y_train).transform(Y_train)
        if self.optimize:
            result = optimize_hyperparams(
                self.kernel,
                self.log_noise,
                Xs,
                Ys,
                n_restarts=self.n_restarts,
                max_iter=self.max_opt_iter,
                rng=self._opt_rng,
            )
            self.log_noise = float(result.theta[-1])
            self.last_lml = result.lml
        else:
            self.last_lml, _ = log_marginal_likelihood(
                self.kernel, self.log_noise, Xs, Ys, with_grad=False
            )
        self._n_at_last_opt = len(X)

        K = self.kernel(Xs, Xs)
        K[np.diag_indices_from(K)] += self.noise
        chol = jittered_cholesky(K)
        self._L = chol.L
        self._jitter = chol.jitter
        self._Xs = Xs
        self._alpha = np.linalg.solve(
            self._L.T, np.linalg.solve(self._L, Ys)
        )
        self._X_raw = X.copy()
        self._Y_raw = Y.copy()
        self._fitted = True
        self.n_full_factorizations += 1
        self._count("gp.full_factorizations")
        self._build_report(X, Y, train_idx, test_idx)

    def _grow(self, X: np.ndarray, Y: np.ndarray) -> None:
        """Extend the factorization by the new tail rows (frozen scalers).

        Block Cholesky: with ``K_new = [[K11, K12], [K21, K22]]`` and the
        existing factor ``L11`` of ``K11``, the extended factor is
        ``[[L11, 0], [C^T, chol(K22 - C^T C)]]`` where ``C`` solves
        ``L11 C = K12``.  Only the weights ``alpha`` are recomputed
        against the grown factor.
        """
        n_old = len(self._X_raw)
        X_new, Y_new = X[n_old:], Y[n_old:]
        Xs_new = self.x_scaler.transform(X_new)
        m = len(Xs_new)

        K12 = self.kernel(self._Xs, Xs_new)  # (n_old, m)
        K22 = self.kernel(Xs_new, Xs_new)
        K22[np.diag_indices_from(K22)] += self.noise + self._jitter
        C = np.linalg.solve(self._L, K12)  # (n_old, m)
        schur = K22 - C.T @ C
        chol = jittered_cholesky(schur)
        n_total = n_old + m
        L = np.zeros((n_total, n_total))
        L[:n_old, :n_old] = self._L
        L[n_old:, :n_old] = C.T
        L[n_old:, n_old:] = chol.L
        self._L = L
        self._jitter = max(self._jitter, chol.jitter)
        self._Xs = np.vstack([self._Xs, Xs_new])
        Ys = self.y_scaler.transform(Y)
        self._alpha = np.linalg.solve(self._L.T, np.linalg.solve(self._L, Ys))
        self._X_raw = X.copy()
        self._Y_raw = Y.copy()
        self.n_grow_updates += 1
        self._count("gp.grow_updates")
        self._build_report(X, Y, np.arange(len(X)), np.empty(0, dtype=int))

    def _build_report(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        train_idx: np.ndarray,
        test_idx: np.ndarray,
    ) -> None:
        if len(test_idx):
            pred = self.predict(X[test_idx])
            truth = Y[test_idx]
            per_out = np.sqrt(np.mean((pred - truth) ** 2, axis=0))
            self.report = SurrogateReport(
                n_train=len(train_idx),
                n_test=len(test_idx),
                test_rmse=metrics.rmse(pred, truth),
                test_mae=metrics.mae(pred, truth),
                test_r2=metrics.r2_score(pred, truth),
                per_output_rmse=per_out,
            )
        else:
            self.report = SurrogateReport(
                n_train=len(train_idx),
                n_test=0,
                test_rmse=float("nan"),
                test_mae=float("nan"),
                test_r2=float("nan"),
            )

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("GPSurrogate used before fit()")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Posterior-mean predictions in original units, shape (n, K)."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        with self._span("gp.predict", "gp.predict", len(X)):
            Ks = self.kernel(self.x_scaler.transform(X), self._Xs)
            return self.y_scaler.inverse_transform(Ks @ self._alpha)

    def predict_stable(self, X: np.ndarray) -> np.ndarray:
        """Row-stable posterior mean, shape (n, K).

        Like :meth:`predict` but every contraction runs in a fixed
        summation order, so row ``i`` is bitwise identical no matter
        which other rows share the batch — the serving layer's
        degraded-answer invariant.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        with self._span("gp.predict_stable", "gp.predict", len(X)):
            Ks = self.kernel(self.x_scaler.transform(X), self._Xs)
            mean = np.einsum("nm,mk->nk", Ks, self._alpha, optimize=False)
            return self.y_scaler.inverse_transform(mean)

    def _posterior_scaled(
        self, Xs: np.ndarray, *, include_noise: bool = True
    ) -> UQResult:
        """Posterior mean/std at already-scaled inputs, in scaled units.

        Row-stable by construction: the kernel rows, the einsum mean, the
        sequential triangular solve and the per-column variance reduction
        are each independent of the batch around them.  With
        ``include_noise`` the std is the *observation* predictive std
        (latent + noise) — what interval-coverage calibration against
        noisy simulator outputs expects; without it, the purely epistemic
        latent std that adaptive DoE acquires against.
        """
        self._require_fitted()
        Ks = self.kernel(Xs, self._Xs)  # (n, m)
        mean = np.einsum("nm,mk->nk", Ks, self._alpha, optimize=False)
        V = solve_lower_stable(self._L, Ks.T)  # (m, n)
        # Reduce over each query's own contiguous row: summing the
        # strided training axis of V directly would vectorize across
        # the batch and break bitwise row-stability.
        Vt = np.ascontiguousarray(V.T)  # (n, m)
        var = self.kernel.diag(len(Xs)) - np.einsum(
            "nm,nm->n", Vt, Vt, optimize=False
        )
        var = np.maximum(var, 0.0)
        if include_noise:
            var = var + self.noise
        std = np.sqrt(var)[:, None] * np.ones((1, self.out_dim))
        return UQResult(mean=mean, std=std)

    def predict_with_uncertainty(self, X: np.ndarray) -> UQResult:
        """Analytic predictive mean and std in original units.

        One kernel evaluation + one triangular solve, versus MC-dropout's
        S stochastic forward passes — this is why the GP gate is far
        cheaper per query at small training sizes.  Bitwise row-stable:
        batching queries never changes any answer or gate decision.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        with self._span("gp.predict_uq", "gp.predict", len(X)):
            raw = self.uq_backend.predict(self.x_scaler.transform(X))
            mean = self.y_scaler.inverse_transform(raw.mean)
            std = raw.std * self.y_scaler.scale_std()
            return UQResult(mean=mean, std=std)

    def posterior_cov(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Latent posterior cross-covariance ``cov(f(X1), f(X2))``.

        In scaled-output units (outputs share one kernel, so a single
        (n1, n2) matrix covers every output).  This is the quantity
        IMSE-style acquisition integrates: how much observing a candidate
        would shrink the variance elsewhere.  Fast BLAS path — acquisition
        scoring ranks candidates, so row-stability is not required here.
        """
        self._require_fitted()
        A = self.x_scaler.transform(np.atleast_2d(np.asarray(X1, dtype=float)))
        B = self.x_scaler.transform(np.atleast_2d(np.asarray(X2, dtype=float)))
        Kab = self.kernel(A, B)
        Va = np.linalg.solve(self._L, self.kernel(self._Xs, A))
        Vb = np.linalg.solve(self._L, self.kernel(self._Xs, B))
        return Kab - Va.T @ Vb

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize a *fitted* GP (hyperparams + training set + scalers)."""
        self._require_fitted()
        payload = {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "kernel": self.kernel.config(),
            "log_noise": self.log_noise,
            "jitter": self._jitter,
            "test_fraction": self.test_fraction,
            "n_at_last_opt": self._n_at_last_opt,
            "x_scaler": {
                "mean": self.x_scaler.mean_.tolist(),
                "scale": self.x_scaler.scale_.tolist(),
            },
            "y_scaler": {
                "mean": self.y_scaler.mean_.tolist(),
                "scale": self.y_scaler.scale_.tolist(),
            },
            "X": self._X_raw.tolist(),
            "Y": self._Y_raw.tolist(),
            "report": None
            if self.report is None
            else {
                "n_train": self.report.n_train,
                "n_test": self.report.n_test,
                "test_rmse": self.report.test_rmse,
                "test_mae": self.report.test_mae,
                "test_r2": self.report.test_r2,
            },
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "GPSurrogate":
        """Restore a fitted GP saved by :meth:`to_json`.

        The kernel matrix is re-factored from the stored training set at
        the stored jitter, so a model that never took the grow-only path
        reproduces its factor (and hence its predictions) exactly; a
        grown model reproduces them to numerical precision.
        """
        payload = json.loads(text)
        gp = cls.__new__(cls)
        gp.in_dim = int(payload["in_dim"])
        gp.out_dim = int(payload["out_dim"])
        gp.kernel = kernel_from_config(payload["kernel"])
        gp.log_noise = float(payload["log_noise"])
        gp.optimize = False  # a restored model is not meant to be refit
        gp.n_restarts = 0
        gp.max_opt_iter = 0
        gp.reopt_growth = float("inf")
        gp.test_fraction = float(payload["test_fraction"])
        gp._opt_rng = None
        gp._split_rng = None
        gp.x_scaler = StandardScaler()
        gp.x_scaler.mean_ = np.asarray(payload["x_scaler"]["mean"])
        gp.x_scaler.scale_ = np.asarray(payload["x_scaler"]["scale"])
        gp.x_scaler._fitted = True
        gp.y_scaler = StandardScaler()
        gp.y_scaler.mean_ = np.asarray(payload["y_scaler"]["mean"])
        gp.y_scaler.scale_ = np.asarray(payload["y_scaler"]["scale"])
        gp.y_scaler._fitted = True
        gp.tracer = None
        gp.registry = None
        gp._X_raw = np.asarray(payload["X"], dtype=float)
        gp._Y_raw = np.asarray(payload["Y"], dtype=float)
        gp._n_at_last_opt = int(payload["n_at_last_opt"])
        gp.last_lml = float("nan")
        gp.n_full_factorizations = 0
        gp.n_grow_updates = 0
        # Re-factor at the stored jitter (escalating only if this machine
        # still cannot factor it — then predictions differ in low bits).
        gp._Xs = gp.x_scaler.transform(gp._X_raw)
        Ys = gp.y_scaler.transform(gp._Y_raw)
        K = gp.kernel(gp._Xs, gp._Xs)
        K[np.diag_indices_from(K)] += gp.noise + float(payload["jitter"])
        try:
            gp._L = np.linalg.cholesky(K)
            gp._jitter = float(payload["jitter"])
        except np.linalg.LinAlgError:
            chol = jittered_cholesky(K)
            gp._L = chol.L
            gp._jitter = float(payload["jitter"]) + chol.jitter
        gp._alpha = np.linalg.solve(gp._L.T, np.linalg.solve(gp._L, Ys))
        gp._fitted = True
        rep = payload.get("report")
        gp.report = (
            None
            if rep is None
            else SurrogateReport(
                n_train=rep["n_train"],
                n_test=rep["n_test"],
                test_rmse=rep["test_rmse"],
                test_mae=rep["test_mae"],
                test_r2=rep["test_r2"],
            )
        )
        gp.uq_backend = GPAnalyticUQ(gp)
        return gp

    def __repr__(self) -> str:
        state = f"fitted, n={self.n_train}" if self._fitted else "unfitted"
        return (
            f"GPSurrogate(D={self.in_dim}, K={self.out_dim}, "
            f"kernel={self.kernel.name}, {state})"
        )
