"""GP-vs-ANN data-efficiency benchmark CLI: ``python -m repro.gp.bench``.

Runs the head-to-head the ISSUE and §III-D of the paper care about: how
many *simulator calls* each surrogate strategy spends to reach a target
accuracy on the same problem.  Four campaigns share one candidate pool,
one test set and one stopping rule under
:func:`repro.core.active.compare_campaigns`:

* GP adaptive DoE with variance-max acquisition (quoFEM's default),
* GP adaptive DoE with IMSE-reduction acquisition,
* the ANN + MC-dropout uncertainty-sampling loop (PR-4's learner),
* the ANN random-acquisition baseline.

Two further sections quantify the serving-side trade: per-query
predictive-UQ cost at small training counts (analytic GP posterior vs S
MC-dropout forward passes), and the §III-D effective speedup each
campaign achieves for an assumed real-simulator cost — the committed
``BENCH_gp_doe.json`` is the repo's tracked baseline for both, gated by
``repro.obs.regress`` in CI.

Wall-clock enters only through the predict-cost stopwatches; every
sims-to-target number is fully deterministic at fixed parameters.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.active import ActiveLearner, compare_campaigns, random_sampling_baseline
from repro.core.simulation import CallableSimulation
from repro.core.surrogate import Surrogate
from repro.gp.doe import AdaptiveDoE
from repro.gp.gp import GPSurrogate
from repro.util.rng import ensure_rng

__all__ = ["bench_gp_doe", "main", "make_problem"]

DEFAULT_OUTPUT = "BENCH_gp_doe.json"

#: Input box of the benchmark problem (both dimensions).
_DOMAIN = (-2.0, 2.0)


def _response(x: np.ndarray) -> np.ndarray:
    """Benchmark response surface: smooth, anisotropic, 2 in -> 2 out."""
    return np.array(
        [
            np.sin(3.0 * x[0]) * np.cos(x[1]),
            np.exp(-x[0] * x[0]) + 0.5 * x[1],
        ]
    )


def make_problem(
    pool_size: int,
    n_test: int,
    *,
    rng: int | np.random.Generator | None = None,
) -> tuple[CallableSimulation, np.ndarray, np.ndarray, np.ndarray]:
    """Build the shared benchmark problem.

    Returns ``(simulation, pool, x_test, y_test)``: a deterministic toy
    simulator standing in for the expensive code, a candidate pool every
    campaign draws designs from, and a fixed evaluation set.
    """
    if pool_size < 16 or n_test < 8:
        raise ValueError("pool_size >= 16 and n_test >= 8 required")
    gen = ensure_rng(rng)
    lo, hi = _DOMAIN
    pool = gen.uniform(lo, hi, size=(int(pool_size), 2))
    x_test = gen.uniform(lo, hi, size=(int(n_test), 2))
    y_test = np.array([_response(x) for x in x_test])
    sim = CallableSimulation(_response, ["x0", "x1"], ["u", "v"])
    return sim, pool, x_test, y_test


def _best_of(fn, rounds: int) -> float:
    """Minimum wall time of ``rounds`` calls, after one warmup call."""
    fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return float(best)


def bench_gp_doe(
    *,
    pool_size: int = 256,
    n_test: int = 128,
    target_mae: float = 0.05,
    relaxed_target_mae: float = 0.25,
    seed_size: int = 10,
    batch_size: int = 5,
    max_rounds: int = 30,
    epochs: int = 400,
    n_small: int = 64,
    n_query: int = 128,
    rounds: int = 5,
    assumed_sim_cost_s: float = 0.1,
    seed: int = 0,
) -> dict:
    """Run all sections and return the JSON-serializable result payload.

    ``target_mae`` is the primary stopping accuracy; on this problem at
    these budgets only the GP reaches it, which is itself the headline
    result.  ``relaxed_target_mae`` is a looser accuracy both surrogate
    families do reach, so the tracked baseline also carries a finite
    ANN/GP sims ratio for the numeric regression gate.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if assumed_sim_cost_s <= 0:
        raise ValueError(f"assumed_sim_cost_s must be > 0, got {assumed_sim_cost_s}")
    if relaxed_target_mae < target_mae:
        raise ValueError("relaxed_target_mae must be >= target_mae")
    sim, pool, x_test, y_test = make_problem(pool_size, n_test, rng=seed)

    # ------------------------------------------------------------------
    # head-to-head: sims-to-target under one harness
    # ------------------------------------------------------------------
    gp_runs: dict[str, GPSurrogate] = {}
    traces: dict[str, object] = {}

    def keep(name: str, run):
        """Wrap a campaign thunk so its raw trace stays accessible."""

        def wrapped():
            result = run()
            traces[name] = result
            return result

        return wrapped

    def gp_campaign(acquisition: str):
        def run():
            gp = GPSurrogate(2, 2, kernel="rbf", rng=seed + 1, reopt_growth=1.5)
            doe = AdaptiveDoE.from_pool(
                gp,
                sim,
                pool,
                x_test=x_test,
                y_test=y_test,
                seed_size=seed_size,
                batch_size=batch_size,
                acquisition=acquisition,
                rng=seed + 2,
            )
            gp_runs[acquisition] = gp
            return doe.run(target_mae=target_mae, max_rounds=max_rounds)

        return run

    def ann_factory() -> Surrogate:
        return Surrogate(
            2,
            2,
            hidden=(30, 48),
            dropout=0.1,
            epochs=epochs,
            patience=40,
            learning_rate=3e-3,
            rng=seed + 3,
        )

    def ann_campaign():
        learner = ActiveLearner(
            sim,
            ann_factory,
            pool,
            x_test,
            y_test,
            seed_size=seed_size,
            batch_size=batch_size,
            rng=seed + 4,
        )
        return learner.run(target_mae=target_mae, max_rounds=max_rounds)

    def random_campaign():
        return random_sampling_baseline(
            sim,
            ann_factory,
            pool,
            x_test,
            y_test,
            seed_size=seed_size,
            batch_size=batch_size,
            target_mae=target_mae,
            max_rounds=max_rounds,
            rng=seed + 5,
        )

    campaigns = {
        "gp_doe_variance": gp_campaign("variance"),
        "gp_doe_imse": gp_campaign("imse"),
        "ann_uncertainty": ann_campaign,
        "ann_random": random_campaign,
    }
    head_to_head = compare_campaigns(
        {name: keep(name, run) for name, run in campaigns.items()},
        target_mae=target_mae,
    )
    for name, result in traces.items():
        head_to_head[name]["sims_to_relaxed_target"] = result.sims_to_reach(
            relaxed_target_mae
        )
    for acq, gp in gp_runs.items():
        head_to_head[f"gp_doe_{acq}"]["n_grow_updates"] = gp.n_grow_updates
        head_to_head[f"gp_doe_{acq}"]["n_full_factorizations"] = (
            gp.n_full_factorizations
        )

    gp_row = head_to_head["gp_doe_variance"]
    ann_row = head_to_head["ann_uncertainty"]
    gp_sims = gp_row["sims_to_target"]
    ann_sims = ann_row["sims_to_target"]
    # "Measurably fewer": the GP must reach the target, and beat the ANN
    # outright — an ANN that never got there counts as beaten.
    gp_fewer = bool(
        gp_row["reached_target"] and (ann_sims is None or gp_sims < ann_sims)
    )
    gp_relaxed = gp_row["sims_to_relaxed_target"]
    ann_relaxed = ann_row["sims_to_relaxed_target"]
    head_to_head["sims_ratio_ann_over_gp"] = (
        float(ann_relaxed) / float(gp_relaxed)
        if (gp_relaxed and ann_relaxed is not None)
        else None
    )

    # ------------------------------------------------------------------
    # per-query predictive-UQ cost at small n
    # ------------------------------------------------------------------
    gen = ensure_rng(seed + 6)
    lo, hi = _DOMAIN
    x_small = gen.uniform(lo, hi, size=(int(n_small), 2))
    y_small = np.array([_response(x) for x in x_small])
    queries = gen.uniform(lo, hi, size=(int(n_query), 2))

    gp_small = GPSurrogate(2, 2, kernel="rbf", rng=seed + 7)
    gp_small.fit(x_small, y_small)
    ann_small = ann_factory()
    ann_small.fit(x_small, y_small)

    t_gp = _best_of(lambda: gp_small.predict_with_uncertainty(queries), rounds)
    t_ann = _best_of(lambda: ann_small.predict_with_uncertainty(queries), rounds)
    gp_us = t_gp / n_query * 1e6
    ann_us = t_ann / n_query * 1e6
    predict_cost = {
        "n_train": int(n_small),
        "n_query": int(n_query),
        "gp_us_per_query": gp_us,
        "ann_us_per_query": ann_us,
        "ann_over_gp": ann_us / gp_us,
        "ann_mc_samples": ann_small._uq_samples,
    }

    # ------------------------------------------------------------------
    # §III-D effective speedup at an assumed real-simulator cost
    # ------------------------------------------------------------------
    n_downstream = 10_000
    t_sim = assumed_sim_cost_s

    def speedup(train_sims: int | None, t_pred_s: float) -> float | None:
        if train_sims is None:
            return None
        total = train_sims * t_sim + n_downstream * t_pred_s
        return n_downstream * t_sim / total

    gp_speedup = speedup(gp_sims, t_gp / n_query)
    ann_speedup = speedup(ann_sims, t_ann / n_query)
    effective_speedup = {
        "assumed_sim_cost_s": t_sim,
        "n_downstream_queries": n_downstream,
        "gp_speedup": gp_speedup,
        "ann_speedup": ann_speedup,
    }

    criteria = {
        "gp_reached_target": bool(gp_row["reached_target"]),
        "gp_fewer_sims_than_ann": gp_fewer,
        "gp_grow_refit_used": bool(gp_row["n_grow_updates"] > 0),
        "gp_effective_speedup_gt_10x": bool(
            gp_speedup is not None and gp_speedup > 10.0
        ),
    }

    return {
        "benchmark": "gp_doe",
        "seed": int(seed),
        "pool_size": int(pool_size),
        "n_test": int(n_test),
        "target_mae": float(target_mae),
        "relaxed_target_mae": float(relaxed_target_mae),
        "seed_size": int(seed_size),
        "batch_size": int(batch_size),
        "max_rounds": int(max_rounds),
        "epochs": int(epochs),
        "n_small": int(n_small),
        "n_query": int(n_query),
        "rounds": int(rounds),
        "assumed_sim_cost_s": float(assumed_sim_cost_s),
        "head_to_head": head_to_head,
        "predict_cost": predict_cost,
        "effective_speedup": effective_speedup,
        "criteria": criteria,
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; writes the benchmark payload as JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.gp.bench",
        description="Benchmark GP adaptive DoE against the ANN active "
        "learner and record the repo's tracked data-efficiency baseline.",
    )
    parser.add_argument("--pool-size", type=int, default=256,
                        help="candidate-pool size (default: %(default)s)")
    parser.add_argument("--n-test", type=int, default=128,
                        help="test-set size (default: %(default)s)")
    parser.add_argument("--target-mae", type=float, default=0.05,
                        help="stopping accuracy (default: %(default)s)")
    parser.add_argument("--relaxed-target-mae", type=float, default=0.25,
                        help="looser accuracy both families reach, for the "
                        "ANN/GP sims ratio (default: %(default)s)")
    parser.add_argument("--seed-size", type=int, default=10,
                        help="seed design size (default: %(default)s)")
    parser.add_argument("--batch-size", type=int, default=5,
                        help="acquisitions per round (default: %(default)s)")
    parser.add_argument("--max-rounds", type=int, default=30,
                        help="acquisition-round cap (default: %(default)s)")
    parser.add_argument("--epochs", type=int, default=400,
                        help="ANN training epochs per refit (default: %(default)s)")
    parser.add_argument("--n-small", type=int, default=64,
                        help="training size for the predict-cost section "
                        "(default: %(default)s)")
    parser.add_argument("--n-query", type=int, default=128,
                        help="query batch for the predict-cost section "
                        "(default: %(default)s)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="stopwatch repetitions, best-of (default: %(default)s)")
    parser.add_argument("--sim-cost", type=float, default=0.1,
                        help="assumed seconds per real simulator call for the "
                        "effective-speedup section (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default: %(default)s)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    payload = bench_gp_doe(
        pool_size=args.pool_size,
        n_test=args.n_test,
        target_mae=args.target_mae,
        relaxed_target_mae=args.relaxed_target_mae,
        seed_size=args.seed_size,
        batch_size=args.batch_size,
        max_rounds=args.max_rounds,
        epochs=args.epochs,
        n_small=args.n_small,
        n_query=args.n_query,
        rounds=args.rounds,
        assumed_sim_cost_s=args.sim_cost,
        seed=args.seed,
    )
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for name, row in payload["head_to_head"].items():
        if not isinstance(row, dict):
            continue
        sims = row["sims_to_target"]
        print(
            f"{name:>18}: sims-to-target "
            f"{'—' if sims is None else sims:>4}  "
            f"final MAE {row['final_test_mae']:.4f}  "
            f"reached={row['reached_target']}"
        )
    pc = payload["predict_cost"]
    print(
        f"predict cost @ n={pc['n_train']}: "
        f"GP {pc['gp_us_per_query']:.1f} us/query, "
        f"ANN {pc['ann_us_per_query']:.1f} us/query "
        f"(ANN/GP {pc['ann_over_gp']:.2f}x)"
    )
    es = payload["effective_speedup"]
    ann_speedup = es["ann_speedup"]
    ann_text = "—" if ann_speedup is None else f"{ann_speedup:.1f}x"
    print(
        f"effective speedup @ {es['assumed_sim_cost_s']:g}s/sim: "
        f"GP {es['gp_speedup']:.1f}x, ANN {ann_text}"
    )
    print(f"criteria: {payload['criteria']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
