"""Marginal-likelihood hyperparameter fitting for the GP backend.

Exact-GP hyperparameters (ARD lengthscales, signal variance, noise
variance) are chosen by maximizing the log marginal likelihood

.. math::

    \\log p(Y \\mid X, \\theta) = -\\tfrac12 \\sum_k y_k^T K^{-1} y_k
        - K_{out} \\log|L| - \\tfrac{n K_{out}}{2} \\log 2\\pi

with one shared covariance ``K`` across the ``K_out`` output columns
(the multi-output convention GPy calls *independent outputs, shared
kernel*).  Everything here is from scratch on numpy + stdlib:

* :func:`jittered_cholesky` — Cholesky factorization with escalating
  diagonal jitter, the standard numerical safety net for near-singular
  kernels (coincident training points, tiny noise);
* :func:`log_marginal_likelihood` — value and analytic gradient with
  respect to the *log* hyperparameters, validated against finite
  differences in the test suite (the ``nn/gradcheck`` discipline);
* :class:`LBFGS` — a from-scratch limited-memory BFGS maximizer
  (two-loop recursion, Armijo backtracking, box projection);
* :func:`optimize_hyperparams` — deterministic multi-start optimization
  under :func:`~repro.util.rng.ensure_rng`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gp.kernels import Kernel
from repro.util.rng import ensure_rng

__all__ = [
    "CholeskyResult",
    "jittered_cholesky",
    "log_marginal_likelihood",
    "LBFGS",
    "OptimizeResult",
    "optimize_hyperparams",
]

#: First jitter magnitude tried when a bare factorization fails.
DEFAULT_JITTER = 1e-10
#: Escalation factor between successive jitter attempts.
JITTER_GROWTH = 10.0
#: Attempts before giving up (1e-10 * 10^7 = 1e-3 — far beyond any
#: kernel matrix a sane model should produce).
MAX_JITTER_TRIES = 8

#: Box bounds (in log space) that keep hyperparameters sane during
#: optimization: e^-8 ~ 3e-4 to e^8 ~ 3e3 relative to unit-scaled data.
LOG_PARAM_BOUNDS = (-8.0, 8.0)


@dataclass(frozen=True)
class CholeskyResult:
    """A successful (possibly jittered) Cholesky factorization."""

    L: np.ndarray
    jitter: float
    n_tries: int


def jittered_cholesky(
    K: np.ndarray,
    *,
    initial_jitter: float = DEFAULT_JITTER,
    max_tries: int = MAX_JITTER_TRIES,
) -> CholeskyResult:
    """Factor ``K (+ jitter I)`` with escalating diagonal jitter.

    The first attempt uses the matrix as given (``jitter == 0``); each
    failed attempt multiplies the jitter by :data:`JITTER_GROWTH`,
    scaled relative to the mean diagonal so the escalation is invariant
    to the kernel's overall magnitude.  Raises
    :class:`numpy.linalg.LinAlgError` after ``max_tries`` failures.
    """
    K = np.asarray(K, dtype=float)
    if K.ndim != 2 or K.shape[0] != K.shape[1]:
        raise ValueError(f"K must be square, got shape {K.shape}")
    if max_tries < 1:
        raise ValueError(f"max_tries must be >= 1, got {max_tries}")
    scale = max(float(np.mean(np.diag(K))), 1e-300)
    jitter = 0.0
    for attempt in range(max_tries):
        try:
            L = np.linalg.cholesky(
                K if jitter == 0.0 else K + jitter * np.eye(K.shape[0])
            )
            return CholeskyResult(L=L, jitter=jitter, n_tries=attempt + 1)
        except np.linalg.LinAlgError:
            jitter = (
                initial_jitter * scale
                if jitter == 0.0
                else jitter * JITTER_GROWTH
            )
    raise np.linalg.LinAlgError(
        f"Cholesky failed after {max_tries} jitter escalations "
        f"(last jitter {jitter:.2e}); kernel matrix is numerically singular"
    )


def _cho_solve(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = B`` from a lower Cholesky factor."""
    return np.linalg.solve(L.T, np.linalg.solve(L, B))


def log_marginal_likelihood(
    kernel: Kernel,
    log_noise: float,
    X: np.ndarray,
    Y: np.ndarray,
    *,
    with_grad: bool = True,
) -> tuple[float, np.ndarray | None]:
    """Log marginal likelihood (and its log-parameter gradient).

    Parameters
    ----------
    kernel:
        The covariance function; evaluated at its *current*
        hyperparameters.
    log_noise:
        Log of the observation-noise variance :math:`\\sigma_n^2`.
    X, Y:
        Training inputs (n, D) and targets (n, K_out) — already scaled
        by the caller.
    with_grad:
        When True the second return value is the gradient with respect
        to ``[kernel.get_log_params()..., log_noise]``; when False it is
        ``None`` (saves the O(n^3) inverse).

    The gradient uses the classic identity
    ``dLML/dtheta = 0.5 tr((G - K_out K^{-1}) dK/dtheta)`` with
    ``G = alpha alpha^T`` summed over output columns.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    Y = np.asarray(Y, dtype=float)
    if Y.ndim == 1:
        Y = Y[:, None]
    n, k_out = Y.shape
    noise = float(np.exp(log_noise))
    K = kernel(X, X)
    K[np.diag_indices_from(K)] += noise
    chol = jittered_cholesky(K)
    L = chol.L
    alpha = _cho_solve(L, Y)  # (n, K_out)
    log_det = float(np.sum(np.log(np.diag(L))))
    lml = (
        -0.5 * float(np.sum(Y * alpha))
        - k_out * log_det
        - 0.5 * n * k_out * np.log(2.0 * np.pi)
    )
    if not with_grad:
        return lml, None
    K_inv = _cho_solve(L, np.eye(n))
    # G - K_out * K^{-1}: the matrix every dK/dtheta is contracted with.
    M = alpha @ alpha.T - k_out * K_inv
    grads = np.empty(kernel.n_params + 1)
    for j, dK in enumerate(kernel.grad_log_params(X)):
        grads[j] = 0.5 * float(np.sum(M * dK))
    # dK/d log noise = noise * I.
    grads[kernel.n_params] = 0.5 * noise * float(np.trace(M))
    return lml, grads


@dataclass
class OptimizeResult:
    """Outcome of one (multi-start) hyperparameter optimization."""

    theta: np.ndarray
    lml: float
    n_iterations: int
    n_starts: int
    converged: bool


class LBFGS:
    """From-scratch limited-memory BFGS maximizer with box projection.

    Maximizes ``f(theta)`` given a callable returning ``(value, grad)``.
    The search direction comes from the standard two-loop recursion over
    the last ``memory`` curvature pairs; step lengths from Armijo
    backtracking on the *negated* objective; iterates are projected into
    ``bounds`` after every step (hyperparameters in log space must not
    run away to 0 or infinity, where the kernel matrix degenerates).

    Deterministic: no randomness, no wall-clock — identical inputs give
    identical iterates.
    """

    def __init__(
        self,
        *,
        memory: int = 8,
        max_iter: int = 60,
        grad_tol: float = 1e-5,
        bounds: tuple[float, float] = LOG_PARAM_BOUNDS,
        armijo_c: float = 1e-4,
        backtrack: float = 0.5,
        max_backtracks: int = 25,
    ):
        if memory < 1 or max_iter < 1:
            raise ValueError("memory and max_iter must be >= 1")
        if not bounds[0] < bounds[1]:
            raise ValueError(f"bounds must satisfy lo < hi, got {bounds}")
        self.memory = int(memory)
        self.max_iter = int(max_iter)
        self.grad_tol = float(grad_tol)
        self.bounds = (float(bounds[0]), float(bounds[1]))
        self.armijo_c = float(armijo_c)
        self.backtrack = float(backtrack)
        self.max_backtracks = int(max_backtracks)

    def _project(self, theta: np.ndarray) -> np.ndarray:
        return np.clip(theta, self.bounds[0], self.bounds[1])

    def maximize(self, f_grad, theta0: np.ndarray) -> OptimizeResult:
        """Run the ascent from ``theta0``; returns the best iterate seen.

        Internally this is textbook L-BFGS *minimization* of ``-f``
        (curvature pairs satisfy the standard ``s . y > 0`` condition),
        so only this wrapper speaks in maximization terms.
        """
        theta = self._project(np.asarray(theta0, dtype=float).copy())
        f_value, f_gradient = f_grad(theta)
        value, grad = -f_value, -np.asarray(f_gradient, dtype=float)
        best_theta, best_value = theta.copy(), value
        s_hist: list[np.ndarray] = []
        y_hist: list[np.ndarray] = []
        converged = False
        # max_iter >= 1, so the loop always binds `it`.
        for it in range(1, self.max_iter + 1):
            if float(np.max(np.abs(grad))) < self.grad_tol:
                converged = True
                break
            direction = self._two_loop(grad, s_hist, y_hist)
            slope = float(direction @ grad)
            if slope >= 0.0:
                direction = -grad  # fall back to steepest descent
                slope = -float(grad @ grad)
            step = 1.0
            new_theta = None
            new_value = value
            new_grad = grad
            for _ in range(self.max_backtracks):
                cand = self._project(theta + step * direction)
                cand_f, cand_g = f_grad(cand)
                cand_value = -cand_f
                if np.isfinite(cand_value) and (
                    cand_value <= value + self.armijo_c * step * slope
                ):
                    new_theta = cand
                    new_value = cand_value
                    new_grad = -np.asarray(cand_g, dtype=float)
                    break
                step *= self.backtrack
            if new_theta is None:
                converged = True  # no descent step found: a (boxed) optimum
                break
            s = new_theta - theta
            y = new_grad - grad
            if float(s @ y) > 1e-12:  # standard curvature condition
                s_hist.append(s)
                y_hist.append(y)
                if len(s_hist) > self.memory:
                    s_hist.pop(0)
                    y_hist.pop(0)
            theta, value, grad = new_theta, new_value, new_grad
            if value < best_value:
                best_theta, best_value = theta.copy(), value
        return OptimizeResult(
            theta=best_theta,
            lml=-best_value,
            n_iterations=it,
            n_starts=1,
            converged=converged,
        )

    def _two_loop(
        self, grad: np.ndarray, s_hist: list[np.ndarray], y_hist: list[np.ndarray]
    ) -> np.ndarray:
        """Two-loop recursion: quasi-Newton descent direction ``-H grad``."""
        q = grad.copy()
        if not s_hist:
            return -q
        alphas = []
        rhos = []
        for s, y in zip(reversed(s_hist), reversed(y_hist)):
            rho = 1.0 / float(s @ y)
            a = rho * float(s @ q)
            q -= a * y
            alphas.append(a)
            rhos.append(rho)
        s_last, y_last = s_hist[-1], y_hist[-1]
        gamma = float(s_last @ y_last) / max(float(y_last @ y_last), 1e-300)
        q *= gamma
        for (s, y), a, rho in zip(
            zip(s_hist, y_hist), reversed(alphas), reversed(rhos)
        ):
            b = rho * float(y @ q)
            q += (a - b) * s
        return -q


def optimize_hyperparams(
    kernel: Kernel,
    log_noise: float,
    X: np.ndarray,
    Y: np.ndarray,
    *,
    n_restarts: int = 2,
    max_iter: int = 60,
    perturb_scale: float = 0.7,
    rng: int | np.random.Generator | None = None,
) -> OptimizeResult:
    """Multi-start LML maximization; mutates ``kernel`` to the winner.

    Start 0 is the caller's current hyperparameters (the heuristic
    initialization, or — on a refit — the previous optimum, which is why
    warm restarts converge in a handful of iterations).  Each additional
    start perturbs the log-parameters with seeded Gaussian noise so the
    optimizer can escape bad local optima of the (multi-modal) marginal
    likelihood.  Deterministic under an int seed or supplied generator.

    Returns the best :class:`OptimizeResult`; on return ``kernel`` holds
    the winning parameters and ``result.theta[-1]`` is the winning log
    noise variance.
    """
    if n_restarts < 0:
        raise ValueError(f"n_restarts must be >= 0, got {n_restarts}")
    gen = ensure_rng(rng)
    theta0 = np.concatenate([kernel.get_log_params(), [float(log_noise)]])

    def f_grad(theta: np.ndarray) -> tuple[float, np.ndarray]:
        kernel.set_log_params(theta[:-1])
        try:
            return log_marginal_likelihood(kernel, float(theta[-1]), X, Y)
        except np.linalg.LinAlgError:
            # A numerically singular configuration: worst possible value,
            # zero gradient — the line search backtracks away from it.
            return -np.inf, np.zeros_like(theta)

    optimizer = LBFGS(max_iter=max_iter)
    best = optimizer.maximize(f_grad, theta0)
    total_iters = best.n_iterations
    for _ in range(n_restarts):
        start = theta0 + gen.normal(0.0, perturb_scale, size=theta0.size)
        result = optimizer.maximize(f_grad, start)
        total_iters += result.n_iterations
        if result.lml > best.lml:
            best = result
    kernel.set_log_params(best.theta[:-1])
    return OptimizeResult(
        theta=best.theta,
        lml=best.lml,
        n_iterations=total_iters,
        n_starts=1 + n_restarts,
        converged=best.converged,
    )
