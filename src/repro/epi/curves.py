"""Epi-curve summary features.

Scalar descriptions of a weekly incidence curve — the quantities
forecasting papers (and experiment E4's tables) report: peak week, peak
intensity, onset week, attack rate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["curve_features"]


def curve_features(
    weekly: np.ndarray,
    population: int | None = None,
    onset_threshold: float = 0.05,
) -> dict[str, float]:
    """Summarize one weekly incidence series.

    Parameters
    ----------
    weekly:
        1-D weekly incidence counts.
    population:
        If given, attack rate = total / population is included.
    onset_threshold:
        Onset week = first week whose incidence exceeds this fraction of
        the peak value (NaN if the curve is flat zero).
    """
    w = np.asarray(weekly, dtype=float).ravel()
    if w.size == 0:
        raise ValueError("empty weekly series")
    if np.any(w < 0):
        raise ValueError("incidence cannot be negative")
    total = float(w.sum())
    peak_week = int(np.argmax(w))
    peak_value = float(w[peak_week])
    if peak_value > 0:
        above = np.flatnonzero(w >= onset_threshold * peak_value)
        onset_week = float(above[0])
    else:
        onset_week = float("nan")
    feats = {
        "peak_week": float(peak_week),
        "peak_value": peak_value,
        "onset_week": onset_week,
        "total": total,
    }
    if population is not None:
        if population <= 0:
            raise ValueError(f"population must be > 0, got {population}")
        feats["attack_rate"] = total / population
    return feats
