"""Networked-epidemic substrate: the DEFSI exemplar (§II-A).

A from-scratch stand-in for the EpiFast/DEFSI stack of [19]:

* :mod:`repro.epi.population` — synthetic hierarchical population
  (counties -> households / schools / workplaces + commuting),
* :mod:`repro.epi.seir` — vectorized discrete-time stochastic SEIR on the
  contact network,
* :mod:`repro.epi.surveillance` — the observation operator: weekly
  aggregation, under-reporting, noise (the "low resolution, not real
  time, incomplete, noisy" data of §II-A),
* :mod:`repro.epi.curves` — epi-curve summary features,
* :mod:`repro.epi.defsi` — the DEFSI pipeline: parameter estimation from
  coarse surveillance, simulation-generated synthetic training data, and
  the two-branch deep network producing high-resolution forecasts,
* :mod:`repro.epi.baselines` — EpiFast-style simulation-optimization
  forecasting plus pure-data ARX and persistence baselines,
* :mod:`repro.epi.simulation` — a 4-feature
  :class:`~repro.core.simulation.Simulation` adapter for MLaroundHPC use.
"""

from repro.epi.population import SyntheticPopulation, ContactNetwork
from repro.epi.seir import SEIRParams, NetworkSEIR, SeasonResult
from repro.epi.surveillance import SurveillanceModel, SurveillanceData
from repro.epi.curves import curve_features
from repro.epi.defsi import DEFSIForecaster, estimate_parameter_distribution
from repro.epi.baselines import (
    EpiFastForecaster,
    ARXForecaster,
    PersistenceForecaster,
)
from repro.epi.simulation import EpidemicSimulation, EPI_INPUTS, EPI_OUTPUTS

__all__ = [
    "SyntheticPopulation",
    "ContactNetwork",
    "SEIRParams",
    "NetworkSEIR",
    "SeasonResult",
    "SurveillanceModel",
    "SurveillanceData",
    "curve_features",
    "DEFSIForecaster",
    "estimate_parameter_distribution",
    "EpiFastForecaster",
    "ARXForecaster",
    "PersistenceForecaster",
    "EpidemicSimulation",
    "EPI_INPUTS",
    "EPI_OUTPUTS",
]
