"""Epidemic simulation as a :class:`~repro.core.simulation.Simulation`.

Wraps a season of network SEIR into the 4-feature signature MLaroundHPC
needs, so the same surrogate/UQ/effective-speedup machinery used for
nanoconfinement applies to the socio-technical domain (§II-A): learn the
map from disease parameters to epi-curve features without paying for a
full agent-based season per query.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulation import Simulation
from repro.epi.curves import curve_features
from repro.epi.population import ContactNetwork
from repro.epi.seir import NetworkSEIR, SEIRParams
from repro.util.rng import ensure_rng

__all__ = ["EpidemicSimulation", "EPI_INPUTS", "EPI_OUTPUTS"]

EPI_INPUTS = ("tau", "sigma", "gamma_r", "seed_fraction")
EPI_OUTPUTS = ("peak_week", "peak_value", "attack_rate")

#: Input bounds for experiment designs.
EPI_BOUNDS = {
    "tau": (0.02, 0.15),
    "sigma": (0.1, 0.5),
    "gamma_r": (0.1, 0.5),
    "seed_fraction": (0.001, 0.02),
}


class EpidemicSimulation(Simulation):
    """One SEIR season -> epi-curve features.

    Parameters
    ----------
    network:
        The contact network (fixed across runs; the features vary).
    n_days:
        Season length.
    n_replicates:
        Stochastic replicates averaged per run ("predictivity requires
        many replicas", §II-B).
    """

    input_names = EPI_INPUTS
    output_names = EPI_OUTPUTS

    def __init__(
        self,
        network: ContactNetwork,
        *,
        n_days: int = 140,
        n_replicates: int = 2,
    ):
        if n_days < 14:
            raise ValueError("n_days must be >= 14")
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        self.network = network
        self.seir = NetworkSEIR(network)
        self.n_days = int(n_days)
        self.n_replicates = int(n_replicates)

    def _run(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        tau, sigma, gamma_r, seed_fraction = (float(v) for v in x)
        params = SEIRParams(
            tau=tau, sigma=sigma, gamma_r=gamma_r, seed_fraction=seed_fraction
        )
        feats = np.zeros(3)
        for _ in range(self.n_replicates):
            season = self.seir.run(params, n_days=self.n_days, rng=rng)
            weekly = season.weekly_incidence().sum(axis=1)
            f = curve_features(weekly, population=self.network.n_nodes)
            feats += np.array([f["peak_week"], f["peak_value"], f["attack_rate"]])
        return feats / self.n_replicates

    @staticmethod
    def sample_inputs(
        n: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Random design matrix over the documented input bounds."""
        gen = ensure_rng(rng)
        cols = [gen.uniform(*EPI_BOUNDS[name], n) for name in EPI_INPUTS]
        return np.stack(cols, axis=1)
