"""Forecasting baselines for the DEFSI comparison (experiment E4).

* :class:`EpiFastForecaster` — simulation-optimization in the EpiFast
  style: calibrate the ABM to the observed prefix (the same ABC module
  DEFSI uses), then forecast with the ensemble of best-fitting simulated
  futures.  County detail comes *only* from the simulations.
* :class:`ARXForecaster` — pure data: linear autoregression on the
  state-level series, downscaled to counties by fixed historical shares —
  the paper's point that "completely data driven models cannot discover
  higher resolution details from lower resolution ground truth data".
* :class:`PersistenceForecaster` — next week equals this week.
"""

from __future__ import annotations

import numpy as np

from repro.epi.defsi import estimate_parameter_distribution
from repro.epi.seir import NetworkSEIR, SEIRParams
from repro.epi.surveillance import SurveillanceModel
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["EpiFastForecaster", "ARXForecaster", "PersistenceForecaster"]


class EpiFastForecaster:
    """Simulation-optimization forecasting.

    ``fit`` calibrates (tau, seed_fraction) against the observed state
    prefix, then simulates an ensemble of full seasons from the accepted
    parameters; ``forecast`` returns the ensemble-mean county incidence at
    the requested target week, conditioning on nothing but season time —
    the pure-mechanistic-model strategy.
    """

    def __init__(
        self,
        seir: NetworkSEIR,
        surveillance: SurveillanceModel,
        *,
        base_params: SEIRParams,
        n_ensemble: int = 20,
        n_days: int = 182,
        rng: int | np.random.Generator | None = None,
    ):
        if n_ensemble < 2:
            raise ValueError("n_ensemble must be >= 2")
        self.seir = seir
        self.surveillance = surveillance
        self.base_params = base_params
        self.n_ensemble = int(n_ensemble)
        self.n_days = int(n_days)
        self.rng = ensure_rng(rng)
        self._county_curves: np.ndarray | None = None  # (M, weeks, counties)

    def fit(self, observed_state_weekly: np.ndarray) -> None:
        calib_rng, sim_rng = spawn_rngs(self.rng, 2)
        posterior = estimate_parameter_distribution(
            observed_state_weekly,
            self.seir,
            self.surveillance,
            base_params=self.base_params,
            n_days=self.n_days,
            rng=calib_rng,
        )
        curves = []
        for _ in range(self.n_ensemble):
            tau, seed = posterior.sample(sim_rng)
            params = SEIRParams(
                tau=tau,
                sigma=self.base_params.sigma,
                gamma_r=self.base_params.gamma_r,
                seed_fraction=seed,
                seed_county=self.base_params.seed_county,
                seasonality=self.base_params.seasonality,
                peak_day=self.base_params.peak_day,
            )
            season = self.seir.run(params, n_days=self.n_days, rng=sim_rng)
            curves.append(season.weekly_incidence())
        min_weeks = min(len(c) for c in curves)
        self._county_curves = np.stack([c[:min_weeks] for c in curves])

    def forecast(self, observed_state_weekly: np.ndarray, week: int) -> np.ndarray:
        """Ensemble-mean county incidence at target week ``week + 1``."""
        if self._county_curves is None:
            raise RuntimeError("EpiFastForecaster.forecast called before fit()")
        target = week + 1
        curves = self._county_curves
        if target >= curves.shape[1]:
            target = curves.shape[1] - 1
        return curves[:, target, :].mean(axis=0)


class ARXForecaster:
    """Linear autoregression on the state series + share-based downscaling.

    County shares come from a fixed prior (uniform by default, or e.g.
    population shares) — a pure-data method has no county-resolved signal
    to learn them from state-level reports.
    """

    def __init__(self, order: int = 3, county_shares: np.ndarray | None = None):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = int(order)
        self.county_shares = county_shares
        self._coef: np.ndarray | None = None

    def fit(self, observed_state_weekly: np.ndarray) -> None:
        obs = np.asarray(observed_state_weekly, dtype=float).ravel()
        p = self.order
        if obs.size <= p + 1:
            # Degenerate prefix: fall back to persistence coefficients.
            self._coef = np.zeros(p + 1)
            self._coef[0] = 1.0
            return
        rows = np.stack([obs[t - p : t][::-1] for t in range(p, obs.size)])
        rows = np.hstack([rows, np.ones((len(rows), 1))])
        targets = obs[p:]
        self._coef, *_ = np.linalg.lstsq(rows, targets, rcond=None)

    def forecast_state(self, observed_state_weekly: np.ndarray, week: int) -> float:
        if self._coef is None:
            raise RuntimeError("ARXForecaster.forecast called before fit()")
        obs = np.asarray(observed_state_weekly, dtype=float).ravel()[: week + 1]
        p = self.order
        lags = np.zeros(p)
        avail = min(p, obs.size)
        if avail:
            lags[:avail] = obs[-avail:][::-1]
        features = np.concatenate([lags, [1.0]])
        return float(max(features @ self._coef, 0.0))

    def forecast(
        self, observed_state_weekly: np.ndarray, week: int, n_counties: int
    ) -> np.ndarray:
        state = self.forecast_state(observed_state_weekly, week)
        shares = (
            np.full(n_counties, 1.0 / n_counties)
            if self.county_shares is None
            else np.asarray(self.county_shares, dtype=float)
        )
        if shares.size != n_counties or not np.isclose(shares.sum(), 1.0):
            raise ValueError("county_shares must have n_counties entries summing to 1")
        return state * shares


class PersistenceForecaster:
    """Next week equals this week (state level), share-downscaled."""

    def __init__(self, county_shares: np.ndarray | None = None):
        self.county_shares = county_shares

    def forecast(
        self, observed_state_weekly: np.ndarray, week: int, n_counties: int
    ) -> np.ndarray:
        obs = np.asarray(observed_state_weekly, dtype=float).ravel()
        state = float(obs[min(week, obs.size - 1)]) if obs.size else 0.0
        shares = (
            np.full(n_counties, 1.0 / n_counties)
            if self.county_shares is None
            else np.asarray(self.county_shares, dtype=float)
        )
        if shares.size != n_counties or not np.isclose(shares.sum(), 1.0):
            raise ValueError("county_shares must have n_counties entries summing to 1")
        return state * shares
