"""Synthetic hierarchical population and contact network.

The DEFSI substrate needs an individual-level network whose dynamics
produce *county-resolved* incidence while surveillance only reports
*state-level* aggregates.  The generator mirrors the standard synthetic-
population construction (households as cliques, schools/workplaces as
mixing groups, sparse long-range and commuting contacts), scaled to run
on a laptop (see the substitution table in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_in_range, check_positive

__all__ = ["ContactNetwork", "SyntheticPopulation"]


@dataclass
class ContactNetwork:
    """Edge-array view of the contact graph, ready for vectorized SEIR.

    Attributes
    ----------
    n_nodes:
        Total individuals.
    src, dst:
        Directed edge endpoints (both directions of each contact present),
        so transmission pressure on a node is a pure gather over ``dst``.
    weight:
        Per-directed-edge contact weight in [0, 1] (scales transmissibility).
    county:
        Node -> county index.
    n_counties:
        Number of counties.
    """

    n_nodes: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    county: np.ndarray
    n_counties: int

    @property
    def n_contacts(self) -> int:
        """Undirected contact count."""
        return len(self.src) // 2

    def county_sizes(self) -> np.ndarray:
        return np.bincount(self.county, minlength=self.n_counties)

    def degree(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.n_nodes)


class SyntheticPopulation:
    """Generator of hierarchical county/household/group contact networks.

    Parameters
    ----------
    county_sizes:
        Individuals per county.
    household_size:
        Mean household size (Poisson around it, min 1); households are
        cliques with weight ``w_household``.
    group_size:
        Mean mixing-group (school/workplace) size; groups are cliques with
        weight ``w_group``; every individual joins exactly one group in
        its own county.
    random_contacts:
        Mean per-person long-range contacts within the county
        (Erdős–Rényi-style, weight ``w_random``).
    commuting_fraction:
        Fraction of individuals with one cross-county contact
        (weight ``w_random``) — the coupling that lets an epidemic seeded
        in one county reach the others.
    """

    def __init__(
        self,
        county_sizes: list[int] | np.ndarray,
        *,
        household_size: float = 3.5,
        group_size: float = 12.0,
        random_contacts: float = 2.0,
        commuting_fraction: float = 0.05,
        w_household: float = 1.0,
        w_group: float = 0.4,
        w_random: float = 0.2,
    ):
        sizes = np.asarray(county_sizes, dtype=int)
        if sizes.ndim != 1 or len(sizes) == 0 or np.any(sizes < 10):
            raise ValueError("county_sizes must be a 1-D list of sizes >= 10")
        check_positive("household_size", household_size)
        check_positive("group_size", group_size)
        check_positive("random_contacts", random_contacts, strict=False)
        check_in_range("commuting_fraction", commuting_fraction, 0.0, 1.0)
        for name, w in (
            ("w_household", w_household),
            ("w_group", w_group),
            ("w_random", w_random),
        ):
            check_in_range(name, w, 0.0, 1.0)
        self.county_sizes = sizes
        self.household_size = float(household_size)
        self.group_size = float(group_size)
        self.random_contacts = float(random_contacts)
        self.commuting_fraction = float(commuting_fraction)
        self.w_household = float(w_household)
        self.w_group = float(w_group)
        self.w_random = float(w_random)

    # ------------------------------------------------------------------
    def build(self, rng: int | np.random.Generator | None = None) -> ContactNetwork:
        """Generate one network realization."""
        gen = ensure_rng(rng)
        n_total = int(self.county_sizes.sum())
        county = np.repeat(np.arange(len(self.county_sizes)), self.county_sizes)

        edges: dict[tuple[int, int], float] = {}

        def add(u: int, v: int, w: float) -> None:
            if u == v:
                return
            key = (u, v) if u < v else (v, u)
            # Strongest context wins when contacts overlap.
            if w > edges.get(key, 0.0):
                edges[key] = w

        offset = 0
        for size in self.county_sizes:
            nodes = np.arange(offset, offset + size)
            self._add_cliques(nodes, self.household_size, self.w_household, edges, add, gen)
            self._add_cliques(nodes, self.group_size, self.w_group, edges, add, gen)
            # long-range contacts within the county
            n_rand = gen.poisson(self.random_contacts * size / 2.0)
            if n_rand and size >= 2:
                us = gen.integers(0, size, n_rand) + offset
                vs = gen.integers(0, size, n_rand) + offset
                for u, v in zip(us, vs):
                    add(int(u), int(v), self.w_random)
            offset += size

        # cross-county commuting
        if len(self.county_sizes) >= 2 and self.commuting_fraction > 0:
            n_commuters = int(round(self.commuting_fraction * n_total))
            commuters = gen.choice(n_total, size=n_commuters, replace=False)
            for u in commuters:
                home = county[u]
                other = gen.integers(0, len(self.county_sizes) - 1)
                if other >= home:
                    other += 1
                lo = int(self.county_sizes[:other].sum())
                v = int(gen.integers(lo, lo + self.county_sizes[other]))
                add(int(u), v, self.w_random)

        if not edges:
            raise RuntimeError("generated network has no edges")
        und = np.array(list(edges.keys()), dtype=int)
        w = np.array(list(edges.values()))
        src = np.concatenate([und[:, 0], und[:, 1]])
        dst = np.concatenate([und[:, 1], und[:, 0]])
        weight = np.concatenate([w, w])
        return ContactNetwork(
            n_nodes=n_total,
            src=src,
            dst=dst,
            weight=weight,
            county=county,
            n_counties=len(self.county_sizes),
        )

    @staticmethod
    def _add_cliques(nodes, mean_size, weight, edges, add, gen) -> None:
        """Partition ``nodes`` into cliques of Poisson(mean) sizes."""
        order = gen.permutation(nodes)
        i = 0
        while i < len(order):
            size = max(1, int(gen.poisson(mean_size)))
            members = order[i : i + size]
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    add(int(members[a]), int(members[b]), weight)
            i += size

    # ------------------------------------------------------------------
    @staticmethod
    def to_networkx(net: ContactNetwork) -> nx.Graph:
        """Undirected networkx view (for analysis / visualization)."""
        g = nx.Graph()
        g.add_nodes_from(range(net.n_nodes))
        half = len(net.src) // 2
        for u, v, w in zip(net.src[:half], net.dst[:half], net.weight[:half]):
            g.add_edge(int(u), int(v), weight=float(w))
        for node in g.nodes:
            g.nodes[node]["county"] = int(net.county[node])
        return g
