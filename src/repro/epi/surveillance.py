"""The surveillance observation operator (§II-A).

Turns ground-truth county-level daily incidence into what forecasters
actually see: "weekly incidence number reported to the CDC ... of low
spatial temporal resolution (weekly at state level), not real time (at
least one week delay), incomplete (reported cases are only a small
fraction of actual ones), and noisy".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.epi.seir import SeasonResult
from repro.util.rng import ensure_rng
from repro.util.validation import check_in_range, check_positive

__all__ = ["SurveillanceData", "SurveillanceModel"]


@dataclass
class SurveillanceData:
    """What the public-health system reports for one season.

    Attributes
    ----------
    state_weekly:
        (n_weeks,) reported state-level weekly counts.
    county_weekly_true:
        (n_weeks, n_counties) *true* county weekly incidence — the
        high-resolution target a forecaster is scored against but never
        observes.
    delay_weeks:
        Reporting delay: at week t a forecaster has seen
        ``state_weekly[: t + 1 - delay_weeks]``.
    """

    state_weekly: np.ndarray
    county_weekly_true: np.ndarray
    delay_weeks: int

    @property
    def n_weeks(self) -> int:
        return len(self.state_weekly)

    def observed_through(self, week: int) -> np.ndarray:
        """State-level series available when standing at ``week``."""
        cutoff = max(0, week + 1 - self.delay_weeks)
        return self.state_weekly[:cutoff]


class SurveillanceModel:
    """Stochastic reporting process.

    Parameters
    ----------
    reporting_rate:
        Fraction of true cases that get reported (binomial thinning).
    noise_dispersion:
        Extra multiplicative log-normal noise sigma on weekly counts
        (0 disables).
    delay_weeks:
        Weeks of reporting lag.
    """

    def __init__(
        self,
        reporting_rate: float = 0.25,
        noise_dispersion: float = 0.1,
        delay_weeks: int = 1,
    ):
        check_in_range("reporting_rate", reporting_rate, 0.0, 1.0, inclusive=True)
        if reporting_rate == 0.0:
            raise ValueError("reporting_rate must be > 0 (nothing observable)")
        check_positive("noise_dispersion", noise_dispersion, strict=False)
        if delay_weeks < 0:
            raise ValueError(f"delay_weeks must be >= 0, got {delay_weeks}")
        self.reporting_rate = float(reporting_rate)
        self.noise_dispersion = float(noise_dispersion)
        self.delay_weeks = int(delay_weeks)

    def observe(
        self, season: SeasonResult, rng: int | np.random.Generator | None = None
    ) -> SurveillanceData:
        """Apply the reporting process to one simulated season."""
        gen = ensure_rng(rng)
        county_weekly = season.weekly_incidence()
        state_true = county_weekly.sum(axis=1)
        reported = gen.binomial(state_true.astype(int), self.reporting_rate).astype(float)
        if self.noise_dispersion > 0:
            reported = reported * gen.lognormal(
                0.0, self.noise_dispersion, size=reported.shape
            )
        return SurveillanceData(
            state_weekly=reported,
            county_weekly_true=county_weekly,
            delay_weeks=self.delay_weeks,
        )
