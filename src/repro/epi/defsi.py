"""DEFSI: Deep-learning epidemic forecasting with synthetic information
(§II-A, [19]).

Three modules, exactly as the paper describes:

(i)   a *model-configuration* module estimating a distribution for each
      parameter of the agent-based epidemic model from coarse
      surveillance data (:func:`estimate_parameter_distribution`, an
      ABC-style rejection sampler);
(ii)  a *synthetic-training-data* module generating high-resolution
      training seasons by running the HPC simulation parameterized from
      the estimated distributions;
(iii) a *two-branch deep neural network* trained on the synthetic data
      and applied with coarse surveillance as input to make detailed
      (county-level) forecasts.

Branch A ("within-season") sees the recent observed state-level window;
branch B ("between-season") sees the climatological weekly profile of the
synthetic ensemble at the same season position.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.epi.seir import NetworkSEIR, SEIRParams, SeasonResult
from repro.epi.surveillance import SurveillanceData, SurveillanceModel
from repro.nn.scalers import StandardScaler
from repro.util.rng import ensure_rng
from repro.nn.twobranch import TwoBranchNetwork
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["ParameterPosterior", "estimate_parameter_distribution", "DEFSIForecaster"]


@dataclass
class ParameterPosterior:
    """Empirical posterior over (tau, seed_fraction) from ABC rejection."""

    samples: np.ndarray  # (k, 2) accepted parameter draws
    scores: np.ndarray   # matching RMSE of each accepted draw

    def sample(self, rng: int | np.random.Generator, jitter: float = 0.05) -> tuple[float, float]:
        """Draw one parameter pair, with relative log-normal jitter."""
        gen = ensure_rng(rng)
        i = gen.integers(0, len(self.samples))
        tau, seed = self.samples[i]
        if jitter > 0:
            tau *= gen.lognormal(0.0, jitter)
            seed *= gen.lognormal(0.0, jitter)
        return float(np.clip(tau, 1e-4, 0.999)), float(np.clip(seed, 1e-5, 0.5))

    @property
    def mean(self) -> np.ndarray:
        return self.samples.mean(axis=0)


def estimate_parameter_distribution(
    observed_state_weekly: np.ndarray,
    seir: NetworkSEIR,
    surveillance: SurveillanceModel,
    *,
    base_params: SEIRParams,
    tau_range: tuple[float, float] = (0.02, 0.12),
    seed_range: tuple[float, float] = (0.001, 0.01),
    n_samples: int = 40,
    top_k: int = 8,
    n_days: int = 182,
    rng: int | np.random.Generator | None = None,
) -> ParameterPosterior:
    """ABC rejection: sample (tau, seed_fraction) from uniform priors, run
    the ABM, keep the ``top_k`` draws whose *reported* state curves best
    match the observed prefix (RMSE over the observed weeks)."""
    obs = np.asarray(observed_state_weekly, dtype=float).ravel()
    if obs.size < 2:
        raise ValueError("need at least 2 observed weeks to calibrate")
    if top_k < 1 or top_k > n_samples:
        raise ValueError("require 1 <= top_k <= n_samples")
    gen = ensure_rng(rng)
    draws = np.empty((n_samples, 2))
    scores = np.empty(n_samples)
    for s in range(n_samples):
        tau = gen.uniform(*tau_range)
        seed = gen.uniform(*seed_range)
        params = SEIRParams(
            tau=tau,
            sigma=base_params.sigma,
            gamma_r=base_params.gamma_r,
            seed_fraction=seed,
            seed_county=base_params.seed_county,
            seasonality=base_params.seasonality,
            peak_day=base_params.peak_day,
        )
        season = seir.run(params, n_days=n_days, rng=gen)
        data = surveillance.observe(season, rng=gen)
        sim = data.state_weekly[: obs.size]
        if sim.size < obs.size:
            sim = np.pad(sim, (0, obs.size - sim.size))
        draws[s] = (tau, seed)
        scores[s] = float(np.sqrt(np.mean((sim - obs) ** 2)))
    order = np.argsort(scores)[:top_k]
    return ParameterPosterior(samples=draws[order], scores=scores[order])


@dataclass
class _TrainingTensors:
    branch_a: np.ndarray
    branch_b: np.ndarray
    targets: np.ndarray


class DEFSIForecaster:
    """The full DEFSI pipeline bound to one contact network.

    Parameters
    ----------
    seir:
        The agent-based model (network dynamical system).
    surveillance:
        The observation operator applied to synthetic seasons, so the
        network trains on inputs distributed like real observations.
    window:
        Width W of the within-season observation window (branch A input).
    n_train_seasons:
        Synthetic seasons generated from the estimated posterior.
    base_params:
        Season configuration whose (tau, seed_fraction) get replaced by
        posterior draws.
    tracer, registry:
        Duck-typed observability hooks (same contract as
        :class:`~repro.epi.seir.NetworkSEIR`): the calibrate / synthesize
        / train / forecast phases become spans — the training phase kind
        ``"train"`` and forecasts kind ``"lookup"``, so a DEFSI run's
        trace feeds the §III-D ledger reconstruction — and the hooks are
        propagated to a ``seir`` that has none of its own, so the inner
        seasons appear as ``"simulate"`` spans.  ``None`` (the default)
        costs nothing.
    """

    def __init__(
        self,
        seir: NetworkSEIR,
        surveillance: SurveillanceModel,
        *,
        base_params: SEIRParams,
        window: int = 4,
        n_train_seasons: int = 30,
        n_days: int = 182,
        epochs: int = 150,
        hidden: int = 32,
        rng: int | np.random.Generator | None = None,
        tracer=None,
        registry=None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if n_train_seasons < 3:
            raise ValueError("need at least 3 synthetic training seasons")
        self.seir = seir
        self.surveillance = surveillance
        self.tracer = tracer
        self.registry = registry
        if tracer is not None and getattr(seir, "tracer", None) is None:
            seir.tracer = tracer
        if registry is not None and getattr(seir, "registry", None) is None:
            seir.registry = registry
        self.base_params = base_params
        self.window = int(window)
        self.n_train_seasons = int(n_train_seasons)
        self.n_days = int(n_days)
        self.epochs = int(epochs)
        self.hidden = int(hidden)
        self.rng = ensure_rng(rng)
        self.posterior: ParameterPosterior | None = None
        self.network_model: TwoBranchNetwork | None = None
        self.climatology: np.ndarray | None = None
        self._a_scaler = StandardScaler()
        self._b_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self.synthetic_seasons: list[SurveillanceData] = []

    # ------------------------------------------------------------------
    @property
    def n_counties(self) -> int:
        return self.seir.network.n_counties

    def _span(self, name: str, kind: str, **attrs):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, kind, attrs=attrs)

    def fit(self, observed_state_weekly: np.ndarray) -> None:
        """Run all three DEFSI modules against the observed coarse prefix."""
        calib_rng, sim_rng, train_rng, model_rng = spawn_rngs(self.rng, 4)

        # (i) model configuration
        with self._span("defsi.calibrate", "epi"):
            self.posterior = estimate_parameter_distribution(
                observed_state_weekly,
                self.seir,
                self.surveillance,
                base_params=self.base_params,
                n_days=self.n_days,
                rng=calib_rng,
            )

        # (ii) synthetic training data
        self.synthetic_seasons = []
        with self._span("defsi.synthesize", "epi", n_seasons=self.n_train_seasons):
            for _ in range(self.n_train_seasons):
                tau, seed = self.posterior.sample(sim_rng)
                params = SEIRParams(
                    tau=tau,
                    sigma=self.base_params.sigma,
                    gamma_r=self.base_params.gamma_r,
                    seed_fraction=seed,
                    seed_county=self.base_params.seed_county,
                    seasonality=self.base_params.seasonality,
                    peak_day=self.base_params.peak_day,
                )
                season = self.seir.run(params, n_days=self.n_days, rng=sim_rng)
                self.synthetic_seasons.append(
                    self.surveillance.observe(season, rng=sim_rng)
                )
        if self.registry is not None:
            self.registry.counter("epi.defsi.synthetic_seasons").inc(
                self.n_train_seasons
            )

        state_curves = np.stack([d.state_weekly for d in self.synthetic_seasons])
        self.climatology = state_curves.mean(axis=0)

        # (iii) two-branch network
        tensors = self._training_tensors()
        a = self._a_scaler.fit_transform(tensors.branch_a)
        b = self._b_scaler.fit_transform(tensors.branch_b)
        y = self._y_scaler.fit_transform(tensors.targets)
        with self._span("defsi.train", "train", n_examples=len(a)):
            self.network_model = TwoBranchNetwork(
                (a.shape[1], b.shape[1]),
                branch_hidden=(self.hidden,),
                branch_out=self.hidden // 2,
                head_hidden=(self.hidden,),
                out_dim=self.n_counties,
                rng=model_rng,
            )
            self.network_model.fit(a, b, y, epochs=self.epochs, rng=train_rng)

    def training_data(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(branch_a, branch_b, targets) built from the synthetic seasons.

        Exposed for architecture ablations (e.g. benchmarking the
        two-branch design against single-branch variants).  Requires
        :meth:`fit` to have generated the synthetic seasons.
        """
        if not self.synthetic_seasons:
            raise RuntimeError("training_data requires fit() to have run")
        t = self._training_tensors()
        return t.branch_a, t.branch_b, t.targets

    def _training_tensors(self) -> _TrainingTensors:
        """Sliding-window examples from every synthetic season."""
        W = self.window
        rows_a, rows_b, rows_y = [], [], []
        for data in self.synthetic_seasons:
            n_weeks = data.n_weeks
            for t in range(W - 1, n_weeks - 1):
                rows_a.append(data.state_weekly[t - W + 1 : t + 1])
                rows_b.append(self._between_season_features(t))
                rows_y.append(data.county_weekly_true[t + 1])
        return _TrainingTensors(
            branch_a=np.stack(rows_a),
            branch_b=np.stack(rows_b),
            targets=np.stack(rows_y),
        )

    def _between_season_features(self, week: int) -> np.ndarray:
        """Climatological window around the forecast week (branch B)."""
        W = self.window
        clim = self.climatology
        idx = np.clip(np.arange(week - W + 2, week + 2), 0, len(clim) - 1)
        return clim[idx]

    # ------------------------------------------------------------------
    def forecast(self, observed_state_weekly: np.ndarray, week: int) -> np.ndarray:
        """County-level next-week forecast standing at ``week``.

        ``observed_state_weekly`` is the full reported state series; only
        entries up to ``week`` (inclusive) are used.
        """
        if self.network_model is None:
            raise RuntimeError("DEFSIForecaster.forecast called before fit()")
        obs = np.asarray(observed_state_weekly, dtype=float).ravel()
        W = self.window
        if week + 1 < W:
            raise ValueError(f"need at least window={W} observed weeks")
        a = obs[week - W + 1 : week + 1][None, :]
        b = self._between_season_features(week)[None, :]
        with self._span("defsi.forecast", "lookup", week=int(week)):
            pred = self.network_model.predict(
                self._a_scaler.transform(a), self._b_scaler.transform(b)
            )
            county = self._y_scaler.inverse_transform(pred)[0]
        if self.registry is not None:
            self.registry.counter("epi.defsi.forecasts").inc()
        return np.maximum(county, 0.0)

    def forecast_series(
        self, observed_state_weekly: np.ndarray, start_week: int, end_week: int
    ) -> np.ndarray:
        """(end_week - start_week + 1, n_counties) one-week-ahead forecasts
        for target weeks ``start_week+1 .. end_week+1``."""
        return np.stack(
            [
                self.forecast(observed_state_weekly, t)
                for t in range(start_week, end_week + 1)
            ]
        )
