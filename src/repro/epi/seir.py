"""Vectorized stochastic SEIR dynamics on a contact network.

Discrete-time (daily) chain-binomial model, the workhorse of network
epidemiology (§II-A's "network dynamical system ... a popular example of
such systems is the SEIR model of disease spread in a social network"):

* S -> E: each susceptible escapes infection from each infectious contact
  independently; the per-day infection probability is
  ``1 - prod_j (1 - tau * w_ij)`` over infectious neighbors j — computed
  for all nodes at once with one scatter-add in log space,
* E -> I with probability ``sigma`` per day (mean latent period 1/sigma),
* I -> R with probability ``gamma_r`` per day (mean infectious period
  1/gamma_r),
* optional seasonal forcing modulates tau over the season.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.epi.population import ContactNetwork
from repro.util.rng import ensure_rng
from repro.util.scatter import scatter_add
from repro.util.validation import check_in_range, check_integer, check_positive

__all__ = ["SEIRParams", "SeasonResult", "NetworkSEIR"]

S, E, I, R = 0, 1, 2, 3


@dataclass(frozen=True)
class SEIRParams:
    """Disease-progression parameters.

    Attributes
    ----------
    tau:
        Per-contact per-day transmission probability scale.
    sigma:
        Daily E->I probability (1 / latent period).
    gamma_r:
        Daily I->R probability (1 / infectious period).
    seed_fraction:
        Fraction of the population initially exposed.
    seed_county:
        County receiving the seeds (None = uniform over the population).
    seasonality:
        Amplitude a in ``tau_t = tau (1 + a cos(2 pi (t - peak_day)/365))``;
        0 disables forcing.
    peak_day:
        Day of maximal transmissibility when seasonality is active.
    """

    tau: float
    sigma: float = 0.25
    gamma_r: float = 0.25
    seed_fraction: float = 0.002
    seed_county: int | None = None
    seasonality: float = 0.0
    peak_day: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("tau", self.tau, 0.0, 1.0)
        check_in_range("sigma", self.sigma, 0.0, 1.0)
        check_in_range("gamma_r", self.gamma_r, 0.0, 1.0)
        check_in_range("seed_fraction", self.seed_fraction, 0.0, 1.0)
        check_in_range("seasonality", self.seasonality, 0.0, 1.0)


@dataclass
class SeasonResult:
    """Daily output of one simulated season.

    Attributes
    ----------
    daily_incidence:
        (n_days, n_counties) new infections (S->E transitions) per day.
    final_recovered:
        Per-county recovered counts at the end.
    """

    daily_incidence: np.ndarray
    final_recovered: np.ndarray

    @property
    def n_days(self) -> int:
        return len(self.daily_incidence)

    def total_incidence(self) -> np.ndarray:
        """Daily incidence summed over counties, shape (n_days,)."""
        return self.daily_incidence.sum(axis=1)

    def weekly_incidence(self) -> np.ndarray:
        """(n_weeks, n_counties) weekly sums (trailing partial week dropped)."""
        n_weeks = self.n_days // 7
        if n_weeks == 0:
            raise ValueError("season shorter than one week")
        trimmed = self.daily_incidence[: n_weeks * 7]
        return trimmed.reshape(n_weeks, 7, -1).sum(axis=1)

    def attack_rate(self, population: int) -> float:
        return float(self.daily_incidence.sum() / population)


class NetworkSEIR:
    """SEIR simulator bound to one contact network.

    ``tracer`` / ``registry`` are the same duck-typed observability hooks
    as :class:`~repro.md.neighbors.ForceEngine`'s: when set, every
    :meth:`run` is recorded as a kind ``"simulate"`` span (so epidemic
    workloads appear in ``python -m repro.obs summarize`` and count
    toward the §III-D ledger reconstruction like md/serve work) and
    ``epi.seir.*`` counters track runs, simulated days and infections.
    Both default to ``None`` with every branch guarded — an untraced
    simulation does zero extra work.
    """

    def __init__(self, network: ContactNetwork, *, tracer=None, registry=None):
        self.network = network
        self.tracer = tracer
        self.registry = registry

    def run(
        self,
        params: SEIRParams,
        n_days: int = 182,
        rng: int | np.random.Generator | None = None,
    ) -> SeasonResult:
        """Simulate one season of ``n_days`` days."""
        n_days = check_integer("n_days", n_days, minimum=1)
        gen = ensure_rng(rng)
        net = self.network
        n = net.n_nodes

        state = np.full(n, S, dtype=np.int8)
        n_seeds = max(1, int(round(params.seed_fraction * n)))
        if params.seed_county is None:
            candidates = np.arange(n)
        else:
            if not 0 <= params.seed_county < net.n_counties:
                raise ValueError(
                    f"seed_county {params.seed_county} out of range "
                    f"[0, {net.n_counties})"
                )
            candidates = np.flatnonzero(net.county == params.seed_county)
        seeds = gen.choice(candidates, size=min(n_seeds, len(candidates)), replace=False)
        state[seeds] = E

        daily = np.zeros((int(n_days), net.n_counties))
        src, dst, w = net.src, net.dst, net.weight
        county = net.county

        sid = (
            self.tracer.open_span(
                "seir.run",
                "simulate",
                attrs={"n_days": int(n_days), "n_nodes": int(n)},
            )
            if self.tracer is not None
            else None
        )
        days_run = 0
        try:
            for day in range(int(n_days)):
                days_run = day + 1
                if params.seasonality > 0:
                    tau_t = params.tau * (
                        1.0
                        + params.seasonality
                        * np.cos(2.0 * np.pi * (day - params.peak_day) / 365.0)
                    )
                    tau_t = float(np.clip(tau_t, 0.0, 1.0))
                else:
                    tau_t = params.tau

                infectious = state[src] == I
                if np.any(infectious) and tau_t > 0:
                    # log-escape accumulation: one scatter-add over active edges
                    log_escape = np.zeros(n)
                    active = infectious & (state[dst] == S)
                    scatter_add(
                        log_escape,
                        dst[active],
                        np.log1p(-np.minimum(tau_t * w[active], 1.0 - 1e-12)),
                    )
                    p_inf = -np.expm1(log_escape)  # 1 - exp(sum log(1-p))
                    new_e = (state == S) & (gen.random(n) < p_inf)
                else:
                    new_e = np.zeros(n, dtype=bool)

                new_i = (state == E) & (gen.random(n) < params.sigma)
                new_r = (state == I) & (gen.random(n) < params.gamma_r)

                state[new_r] = R
                state[new_i] = I
                state[new_e] = E

                if np.any(new_e):
                    daily[day] = np.bincount(
                        county[new_e], minlength=net.n_counties
                    )

                if not np.any(state == E) and not np.any(state == I):
                    break  # epidemic extinguished; remaining days stay zero

            final_r = np.bincount(county[state == R], minlength=net.n_counties)
            if self.registry is not None:
                self.registry.counter("epi.seir.runs").inc()
                self.registry.counter("epi.seir.days").inc(days_run)
                self.registry.counter("epi.seir.infections").inc(float(daily.sum()))
        finally:
            if sid is not None:
                self.tracer.close_span(
                    sid,
                    attrs={
                        "days_run": int(days_run),
                        "infections": float(daily.sum()),
                    },
                )
        return SeasonResult(daily_incidence=daily, final_recovered=final_r)

    def run_many(
        self,
        params: SEIRParams,
        n_replicates: int,
        n_days: int = 182,
        rng: int | np.random.Generator | None = None,
    ) -> list[SeasonResult]:
        """Independent stochastic replicates (models are stochastic, so
        "predictivity requires many replicas" — §II-B)."""
        gen = ensure_rng(rng)
        return [self.run(params, n_days, gen) for _ in range(int(n_replicates))]
