"""The Learning-Everywhere framework — the paper's primary contribution.

This package turns the paper's prose into an operational API:

* :mod:`repro.core.taxonomy` — the six ML x HPC interface categories (§I).
* :mod:`repro.core.simulation` — the `Simulation` protocol and the run
  database ("no run is wasted", §II-C1).
* :mod:`repro.core.surrogate` — ANN surrogates over simulations (§II-C1).
* :mod:`repro.core.uq` — dropout / ensemble uncertainty quantification
  (§III-B).
* :mod:`repro.core.mlaround` — the MLaroundHPC orchestrator: per-query
  simulate-vs-lookup with online retraining (§I, §III-D).
* :mod:`repro.core.effective` — the effective-speedup performance model
  (§III-D).
* :mod:`repro.core.active` — active learning for data-efficient training
  (§II-C2).
* :mod:`repro.core.autotune` — MLautotuning of simulation control
  parameters (§I, §III-D).
* :mod:`repro.core.control` — MLControl objective-driven campaigns (§I).
* :mod:`repro.core.coarsegrain` — ML-based coarse-graining (§I, §II-B).
"""

from repro.core.taxonomy import Category, CATEGORY_INFO, classify, categories
from repro.core.simulation import (
    Simulation,
    CallableSimulation,
    RunRecord,
    RunDatabase,
    SimulationError,
)
from repro.core.surrogate import Surrogate, SurrogateReport
from repro.core.uq import (
    UQBackend,
    MCDropoutUQ,
    DeepEnsembleUQ,
    UQResult,
    bias_variance_decomposition,
    calibration_table,
)
from repro.core.mlaround import MLAroundHPC, QueryOutcome, RetrainPolicy
from repro.core.effective import (
    effective_speedup,
    EffectiveSpeedupModel,
    speedup_sweep,
)
from repro.core.active import ActiveLearner, random_sampling_baseline
from repro.core.autotune import AutoTuner, TuningRecord
from repro.core.control import CampaignController, CampaignResult
from repro.core.feasibility import FeasibilityClassifier
from repro.core.coarsegrain import LearnedCorrector, CoarseGrainedSolver

__all__ = [
    "Category",
    "CATEGORY_INFO",
    "classify",
    "categories",
    "Simulation",
    "CallableSimulation",
    "RunRecord",
    "RunDatabase",
    "SimulationError",
    "Surrogate",
    "SurrogateReport",
    "UQBackend",
    "MCDropoutUQ",
    "DeepEnsembleUQ",
    "UQResult",
    "bias_variance_decomposition",
    "calibration_table",
    "MLAroundHPC",
    "QueryOutcome",
    "RetrainPolicy",
    "effective_speedup",
    "EffectiveSpeedupModel",
    "speedup_sweep",
    "ActiveLearner",
    "random_sampling_baseline",
    "AutoTuner",
    "TuningRecord",
    "CampaignController",
    "CampaignResult",
    "FeasibilityClassifier",
    "LearnedCorrector",
    "CoarseGrainedSolver",
]
