"""MLControl: objective-driven computational campaigns (§I).

The paper files "objective driven computational campaigns" under
MLControl and notes that "the simulation surrogates are very valuable to
allow real-time predictions".  :class:`CampaignController` implements a
surrogate-steered search: a cheap learned model screens a large candidate
pool each round and only the most promising candidate is paid for with a
real simulation — the run is then banked, the surrogate retrained, and the
loop continues until the objective target or the simulation budget is hit.

Acquisition is lower-confidence-bound (LCB) when the surrogate provides
uncertainty: ``score = predicted_objective - kappa * std``, balancing
exploitation against exploring poorly learned regions (the ergodicity
concern of §I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.feasibility import FeasibilityClassifier
from repro.core.simulation import RunDatabase, Simulation, SimulationError
from repro.core.surrogate import Surrogate
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["CampaignResult", "CampaignController"]

ObjectiveFn = Callable[[np.ndarray], float]


@dataclass
class CampaignResult:
    """Outcome of one campaign."""

    best_inputs: np.ndarray
    best_outputs: np.ndarray
    best_objective: float
    n_simulations: int
    reached_target: bool
    objective_trace: list[float] = field(default_factory=list)


class CampaignController:
    """Objective-driven campaign over a simulation's input space.

    Parameters
    ----------
    simulation:
        The expensive evaluator.
    objective:
        ``objective(outputs) -> float`` to *minimize* (e.g. absolute
        distance of a contact density from its target value).
    bounds:
        Per-input (lo, hi) search box, shape (D, 2).
    surrogate_factory:
        Fresh-surrogate builder; ``dropout > 0`` enables the LCB
        exploration term.
    """

    def __init__(
        self,
        simulation: Simulation,
        objective: ObjectiveFn,
        bounds: np.ndarray,
        surrogate_factory: Callable[[], Surrogate],
        *,
        kappa: float = 1.0,
        feasibility_factory: Callable[[], "FeasibilityClassifier"] | None = None,
        feasibility_threshold: float = 0.5,
        rng: int | np.random.Generator | None = None,
    ):
        bounds = np.asarray(bounds, dtype=float)
        if bounds.shape != (simulation.n_inputs, 2):
            raise ValueError(
                f"bounds must have shape ({simulation.n_inputs}, 2), got {bounds.shape}"
            )
        if np.any(bounds[:, 0] >= bounds[:, 1]):
            raise ValueError("each bounds row must satisfy lo < hi")
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        if not 0.0 < feasibility_threshold < 1.0:
            raise ValueError(
                f"feasibility_threshold must be in (0, 1), got {feasibility_threshold}"
            )
        self.simulation = simulation
        self.objective = objective
        self.bounds = bounds
        self.surrogate_factory = surrogate_factory
        self.kappa = float(kappa)
        self.feasibility_factory = feasibility_factory
        self.feasibility_threshold = float(feasibility_threshold)
        self.rng = ensure_rng(rng)
        self.db = RunDatabase()

    # ------------------------------------------------------------------
    def _sample_box(self, n: int, gen: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds[:, 0], self.bounds[:, 1]
        return gen.uniform(lo, hi, size=(n, len(lo)))

    def _screen_feasible(self, pool: np.ndarray) -> np.ndarray:
        """Drop pool candidates a trained feasibility model rejects.

        The classifier ("no run is wasted": it learns from the campaign's
        own failed runs) only engages once both outcomes are represented;
        if screening would empty the pool it is skipped for the round.
        """
        if self.feasibility_factory is None:
            return pool
        if self.db.n_failure == 0 or self.db.n_success == 0:
            return pool
        classifier = self.feasibility_factory()
        classifier.fit_database(self.db)
        keep = classifier.predict(pool, threshold=self.feasibility_threshold)
        if not np.any(keep):
            return pool
        return pool[keep]

    def _evaluate(
        self, x: np.ndarray, sim_rng: np.random.Generator
    ) -> tuple[np.ndarray, float] | None:
        try:
            record = self.simulation.run_recorded(x, self.db, sim_rng)
        except SimulationError:
            return None
        return record.outputs, float(self.objective(record.outputs))

    def run(
        self,
        *,
        n_seed: int = 15,
        pool_size: int = 2000,
        max_simulations: int = 60,
        target: float | None = None,
    ) -> CampaignResult:
        """Execute the campaign.

        ``n_seed`` random simulations initialize the surrogate; thereafter
        each round screens ``pool_size`` random candidates through the
        surrogate and simulates only the LCB-best one.  Stops when the
        best objective falls to ``target`` (if given) or the budget of
        ``max_simulations`` is spent.
        """
        if n_seed < 5:
            raise ValueError("n_seed must be >= 5")
        if max_simulations < n_seed:
            raise ValueError("max_simulations must cover the seed phase")
        seed_rng, sim_rng, pool_rng = spawn_rngs(self.rng, 3)

        best_x: np.ndarray | None = None
        best_y: np.ndarray | None = None
        best_obj = float("inf")
        trace: list[float] = []

        for x in self._sample_box(n_seed, seed_rng):
            out = self._evaluate(x, sim_rng)
            if out is not None and out[1] < best_obj:
                best_x, best_y, best_obj = x, out[0], out[1]
            trace.append(best_obj)
        if best_x is None:
            raise RuntimeError("every seed simulation failed")
        if target is not None and best_obj <= target:
            return CampaignResult(best_x, best_y, best_obj, len(self.db), True, trace)

        n_used = len(self.db)
        while n_used < max_simulations:
            X, Y = self.db.training_arrays()
            surrogate = self.surrogate_factory()
            surrogate.fit(X, Y)

            pool = self._sample_box(pool_size, pool_rng)
            pool = self._screen_feasible(pool)
            if surrogate.uq_backend is not None and self.kappa > 0:
                uq = surrogate.predict_with_uncertainty(pool)
                pred_obj = np.array([self.objective(m) for m in uq.mean])
                scale = surrogate.y_scaler.scale_std()
                explore = np.max(uq.std / scale, axis=1)
                scores = pred_obj - self.kappa * explore * np.std(pred_obj)
            else:
                pred = surrogate.predict(pool)
                scores = np.array([self.objective(m) for m in pred])
            candidate = pool[int(np.argmin(scores))]

            out = self._evaluate(candidate, sim_rng)
            n_used = len(self.db)
            if out is not None and out[1] < best_obj:
                best_x, best_y, best_obj = candidate, out[0], out[1]
            trace.append(best_obj)
            if target is not None and best_obj <= target:
                return CampaignResult(best_x, best_y, best_obj, n_used, True, trace)

        return CampaignResult(
            best_x, best_y, best_obj, n_used, target is not None and best_obj <= target,
            trace,
        )
