"""Uncertainty quantification for learned surrogates (§III-B).

Two UQ backends over the numpy MLP stack:

* :class:`MCDropoutUQ` — Monte-Carlo dropout (Gal & Ghahramani 2016):
  dropout masks are resampled at prediction time, and the spread of the
  resulting "thinned network" ensemble is the predictive uncertainty.
* :class:`DeepEnsembleUQ` — an explicit ensemble of independently
  initialized/trained networks; more expensive but not tied to a dropout
  rate (addressing research issue 10 of §III-E).

Also provided: the bias–variance decomposition discussed in §III-B and a
calibration table (empirical coverage of z-score intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn.layers import Dropout
from repro.nn.model import MLP
from repro.nn.metrics import picp
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = [
    "UQResult",
    "UQBackend",
    "MCDropoutUQ",
    "DeepEnsembleUQ",
    "bias_variance_decomposition",
    "calibration_table",
]


@dataclass
class UQResult:
    """Predictive mean and spread, shapes (n, K)."""

    mean: np.ndarray
    std: np.ndarray

    def interval(self, z: float = 1.96) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) of the +-z*std interval."""
        if z <= 0:
            raise ValueError(f"z must be > 0, got {z}")
        return self.mean - z * self.std, self.mean + z * self.std

    @property
    def max_std(self) -> float:
        return float(np.max(self.std)) if self.std.size else 0.0

    @property
    def mean_std(self) -> float:
        return float(np.mean(self.std)) if self.std.size else 0.0


class UQBackend:
    """Interface: produce a :class:`UQResult` for a batch of inputs."""

    def predict(self, x: np.ndarray) -> UQResult:
        raise NotImplementedError


def _stable_moments(draws: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Sample mean and ddof-1 std with a batch-width-independent reduction.

    ``np.mean``/``np.std`` over a stacked ``(S, n, K)`` axis use pairwise
    summation whose blocking depends on the row width ``n``, so their last
    bits change with batch size.  Sequential elementwise accumulation has a
    fixed per-element order, preserving the bitwise row-stability the
    forward passes guarantee.
    """
    n = len(draws)
    mean = np.zeros_like(draws[0])
    for d in draws:
        mean += d
    mean /= n
    var = np.zeros_like(mean)
    for d in draws:
        var += (d - mean) ** 2
    var /= n - 1
    return mean, np.sqrt(var)


class MCDropoutUQ(UQBackend):
    """Monte-Carlo dropout over a single trained model.

    :meth:`predict` is a *pure function* of its input: every call rebuilds
    the mask generator from ``seed``, each of the ``n_samples`` stochastic
    passes samples one per-unit mask per dropout layer (a single "thinned
    network" applied to every row), and the forward pass runs through the
    row-stable :meth:`~repro.nn.model.MLP.predict_stable` kernel.  Together
    these make the result

    * identical across repeated calls (no hidden generator state), and
    * bitwise row-stable — ``predict(X).mean[i] == predict(X[i:i+1]).mean[0]``

    which is what lets the serving layer batch queries arbitrarily without
    changing any answer, and lets batched gates reproduce per-query gates
    exactly.

    Parameters
    ----------
    model:
        A trained :class:`~repro.nn.model.MLP` that contains at least one
        Dropout layer with positive rate.
    n_samples:
        Number of stochastic forward passes; the predictive distribution
        is the sample distribution over these "thinned" networks.
    seed:
        Integer seed the per-call mask generator is rebuilt from.
    """

    def __init__(self, model: MLP, n_samples: int = 50, *, seed: int = 0):
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        if not model.has_dropout():
            raise ValueError(
                "MCDropoutUQ requires a model with a Dropout layer of positive rate"
            )
        self.model = model
        self.n_samples = int(n_samples)
        self.seed = int(seed)

    def _batched_masks(
        self, gen: np.random.Generator
    ) -> list[list[np.ndarray]] | None:
        """All passes' dropout masks from one RNG block draw.

        The sequential path consumes the generator as ``S`` passes ×
        ``L`` layers of ``gen.random((1, w_l))`` calls.  A numpy
        Generator fills arrays in C order, so the single call
        ``gen.random((S, total_width))`` produces *the same uniform
        stream*: row ``s``, split at the layer widths, is bitwise what
        pass ``s`` would have drawn call by call.  Thresholding and
        scaling are elementwise, so the resulting masks — and therefore
        every UQ result — are bitwise identical to per-pass generation,
        at one RNG dispatch instead of ``S * L``.

        Returns ``None`` when mask widths cannot be derived statically
        (the caller falls back to per-pass draws).
        """
        try:
            widths = self.model.mc_dropout_widths()
        except ValueError:
            return None
        rates = [
            layer.rate
            for layer in self.model.layers
            if isinstance(layer, Dropout) and layer.rate > 0.0
        ]
        if len(widths) != len(rates):  # foreign model subclass; stay safe
            return None
        block = gen.random((self.n_samples, sum(widths)))
        masks: list[list[np.ndarray]] = []
        for s in range(self.n_samples):
            row: list[np.ndarray] = []
            offset = 0
            for width, rate in zip(widths, rates):
                keep = 1.0 - rate
                seg = block[s, offset : offset + width][None, :]
                row.append((seg < keep) / keep)
                offset += width
            masks.append(row)
        return masks

    def predict(self, x: np.ndarray) -> UQResult:
        gen = np.random.default_rng(self.seed)
        masks = self._batched_masks(gen)
        if masks is not None:
            draws = [
                self.model.predict_stable(x, mc_dropout_masks=masks[s])
                for s in range(self.n_samples)
            ]
        else:
            draws = [
                self.model.predict_stable(x, mc_dropout_rng=gen)
                for _ in range(self.n_samples)
            ]
        mean, std = _stable_moments(draws)
        return UQResult(mean=mean, std=std)


class DeepEnsembleUQ(UQBackend):
    """Ensemble of independently trained models.

    Build with :meth:`train` (which handles independent initialization) or
    wrap already-trained models directly.
    """

    def __init__(self, models: Sequence[MLP]):
        if len(models) < 2:
            raise ValueError("an ensemble needs at least 2 models")
        self.models = list(models)

    @classmethod
    def train(
        cls,
        build_and_train,
        n_members: int = 5,
        rng: int | np.random.Generator | None = None,
    ) -> "DeepEnsembleUQ":
        """Train ``n_members`` models via ``build_and_train(rng) -> MLP``.

        Each member receives an independent generator stream (independent
        initialization and shuffling — the source of ensemble diversity).
        """
        if n_members < 2:
            raise ValueError("an ensemble needs at least 2 members")
        streams = spawn_rngs(ensure_rng(rng), n_members)
        return cls([build_and_train(s) for s in streams])

    def predict(self, x: np.ndarray) -> UQResult:
        # predict_stable keeps ensemble UQ bitwise row-stable (batched ==
        # per-row), matching the MCDropoutUQ guarantee the serving layer uses.
        mean, std = _stable_moments([m.predict_stable(x) for m in self.models])
        return UQResult(mean=mean, std=std)


def bias_variance_decomposition(
    predictions: np.ndarray, target: np.ndarray
) -> dict[str, float]:
    """Decompose expected squared error over an ensemble of predictors.

    ``predictions`` has shape (M, n, K): M model instances predicting the
    same n points.  Returns the decomposition of §III-B::

        expected_mse = bias^2 + variance

    where bias is measured against ``target`` and variance is the spread
    across instances.
    """
    preds = np.asarray(predictions, dtype=float)
    if preds.ndim != 3:
        raise ValueError(f"predictions must be (M, n, K), got shape {preds.shape}")
    t = np.asarray(target, dtype=float)
    if t.shape != preds.shape[1:]:
        raise ValueError(
            f"target shape {t.shape} incompatible with predictions {preds.shape}"
        )
    mean_pred = preds.mean(axis=0)
    bias_sq = float(np.mean((mean_pred - t) ** 2))
    variance = float(np.mean(preds.var(axis=0)))
    expected_mse = float(np.mean((preds - t[None]) ** 2))
    return {
        "bias_squared": bias_sq,
        "variance": variance,
        "expected_mse": expected_mse,
    }


def calibration_table(
    uq: UQResult, target: np.ndarray, z_values: Sequence[float] = (0.674, 1.0, 1.645, 1.96)
) -> list[dict[str, float]]:
    """Empirical coverage of +-z*std intervals vs the Gaussian nominal.

    For a perfectly calibrated Gaussian predictive distribution the
    empirical coverage at z=1.96 would be 0.95, etc.
    """
    from scipy.stats import norm

    t = np.asarray(target, dtype=float)
    rows = []
    for z in z_values:
        lo, hi = uq.interval(z)
        rows.append(
            {
                "z": float(z),
                "nominal": float(norm.cdf(z) - norm.cdf(-z)),
                "empirical": picp(t, lo, hi),
            }
        )
    return rows
