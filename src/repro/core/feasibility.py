"""Feasibility classification from failed simulation runs (§II-C1).

"No run is wasted.  Training needs both successful and unsuccessful
runs."  Successful runs feed the regression surrogate; *failed* runs
(diverged integrators, unphysical parameter combinations) carry a
different signal — where the simulation cannot go — and this module
turns them into a learned feasibility boundary:

* :class:`FeasibilityClassifier` — a sigmoid-output MLP trained with
  binary cross-entropy on (inputs, success) pairs, e.g. straight from
  :meth:`repro.core.simulation.RunDatabase.feasibility_arrays`;
* campaign integration — :class:`~repro.core.control.CampaignController`
  accepts one and screens its candidate pool, so objective-driven
  campaigns stop burning budget on parameter regions that always fail.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulation import RunDatabase
from repro.nn.model import MLP
from repro.nn.optimizers import Adam
from repro.nn.scalers import StandardScaler
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["FeasibilityClassifier"]


class FeasibilityClassifier:
    """Learn ``P(run succeeds | inputs)``.

    Parameters
    ----------
    in_dim:
        Input feature count (the simulation's D).
    hidden:
        Hidden-layer widths of the classifier MLP.
    epochs, batch_size, learning_rate:
        Training configuration.
    rng:
        Seed/generator for initialization and shuffling.
    """

    def __init__(
        self,
        in_dim: int,
        *,
        hidden: tuple[int, ...] = (24, 24),
        epochs: int = 200,
        batch_size: int = 32,
        learning_rate: float = 3e-3,
        rng: int | np.random.Generator | None = None,
    ):
        if in_dim < 1:
            raise ValueError("in_dim must be >= 1")
        self.in_dim = int(in_dim)
        self._epochs = int(epochs)
        self._batch_size = int(batch_size)
        self._lr = float(learning_rate)
        gen = ensure_rng(rng)
        model_rng, self._train_rng = spawn_rngs(gen, 2)
        self.model = MLP.regressor(
            in_dim, list(hidden), 1,
            activation="relu", out_activation="sigmoid", rng=model_rng,
        )
        self.scaler = StandardScaler()
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, success: np.ndarray) -> float:
        """Train on (inputs, success flags); returns final training BCE.

        Degenerate label sets (all success or all failure) are accepted —
        the classifier then predicts a constant, which is the correct
        inference from such data.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(success, dtype=float).ravel()[:, None]
        if X.shape[1] != self.in_dim:
            raise ValueError(f"expected {self.in_dim} features, got {X.shape[1]}")
        if len(X) != len(y):
            raise ValueError("X and success lengths differ")
        if len(X) < 4:
            raise ValueError("need at least 4 runs to fit")
        if np.any((y != 0.0) & (y != 1.0)):
            raise ValueError("success labels must be 0 or 1")

        Xs = self.scaler.fit_transform(X)
        optimizer = Adam(self._lr)
        final = float("nan")
        for _ in range(self._epochs):
            perm = self._train_rng.permutation(len(Xs))
            total, n = 0.0, 0
            for start in range(0, len(Xs), self._batch_size):
                idx = perm[start : start + self._batch_size]
                loss = self.model.train_batch(Xs[idx], y[idx], "bce")
                optimizer.step(self.model.params, self.model.grads)
                total += loss
                n += 1
            final = total / n
        self._fitted = True
        return final

    def fit_database(self, db: RunDatabase) -> float:
        """Train directly from a run database (all runs, success labels)."""
        X, s = db.feasibility_arrays()
        return self.fit(X, s)

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``P(success)`` per row, shape (n,)."""
        if not self._fitted:
            raise RuntimeError("FeasibilityClassifier used before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self.model.predict(self.scaler.transform(X))[:, 0]

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Boolean feasibility mask at the given probability threshold."""
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        return self.predict_proba(X) >= threshold

    def accuracy(self, X: np.ndarray, success: np.ndarray) -> float:
        y = np.asarray(success, dtype=float).ravel()
        return float(np.mean(self.predict(X) == (y > 0.5)))
