"""The six-category taxonomy of ML x HPC interfaces (§I of the paper).

The paper's first contribution is a categorization of the links between
machine learning and HPC: two broad groups (HPCforML, MLforHPC) refined
into six categories.  This module encodes the taxonomy as data so that
tools, schedulers and documentation can reference categories by a stable
identity, and provides :func:`classify` which maps a description of a
coupling (who learns from whom, what is replaced) onto a category.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Category", "CategoryInfo", "CATEGORY_INFO", "classify", "categories"]


class Category(Enum):
    """The six interface categories defined in §I."""

    HPC_RUNS_ML = "HPCrunsML"
    SIMULATION_TRAINED_ML = "SimulationTrainedML"
    ML_AUTOTUNING = "MLautotuning"
    ML_AFTER_HPC = "MLafterHPC"
    ML_AROUND_HPC = "MLaroundHPC"
    ML_CONTROL = "MLControl"

    @property
    def group(self) -> str:
        """The broad group: ``"HPCforML"`` or ``"MLforHPC"``."""
        if self in (Category.HPC_RUNS_ML, Category.SIMULATION_TRAINED_ML):
            return "HPCforML"
        return "MLforHPC"


@dataclass(frozen=True)
class CategoryInfo:
    """Human-readable description of one taxonomy category."""

    category: Category
    summary: str
    paper_examples: tuple[str, ...]


CATEGORY_INFO: dict[Category, CategoryInfo] = {
    Category.HPC_RUNS_ML: CategoryInfo(
        Category.HPC_RUNS_ML,
        "Using HPC to execute ML with high performance.",
        ("MLPerf benchmarking", "Horovod distributed training"),
    ),
    Category.SIMULATION_TRAINED_ML: CategoryInfo(
        Category.SIMULATION_TRAINED_ML,
        "Using HPC simulations to train ML algorithms, which are then used "
        "to understand experimental data or simulations.",
        ("theory-guided machine learning", "CosmoGAN"),
    ),
    Category.ML_AUTOTUNING: CategoryInfo(
        Category.ML_AUTOTUNING,
        "Using ML to configure (autotune) ML or HPC simulations.",
        ("ATLAS block sizes", "MD timestep selection", "Spark/Hadoop configuration"),
    ),
    Category.ML_AFTER_HPC: CategoryInfo(
        Category.ML_AFTER_HPC,
        "ML analyzing results of HPC, as in trajectory analysis and "
        "structure identification in biomolecular simulations.",
        ("trajectory clustering", "structure identification"),
    ),
    Category.ML_AROUND_HPC: CategoryInfo(
        Category.ML_AROUND_HPC,
        "Using ML to learn from simulations and produce learned surrogates "
        "for the simulations; the ML wrapper improves HPC performance.",
        ("nanoconfinement density surrogate", "NN potentials for AIMD"),
    ),
    Category.ML_CONTROL: CategoryInfo(
        Category.ML_CONTROL,
        "Using simulations (with HPC) in control of experiments and in "
        "objective-driven computational campaigns; surrogates enable "
        "real-time predictions.",
        ("materials design campaigns", "experiment steering"),
    ),
}


def categories(group: str | None = None) -> list[Category]:
    """All categories, optionally filtered by broad group name."""
    cats = list(Category)
    if group is None:
        return cats
    if group not in ("HPCforML", "MLforHPC"):
        raise ValueError(f"unknown group {group!r}; expected HPCforML or MLforHPC")
    return [c for c in cats if c.group == group]


def classify(
    *,
    ml_consumes_simulation_output: bool = False,
    ml_replaces_simulation: bool = False,
    ml_configures_execution: bool = False,
    ml_targets_experiment: bool = False,
    hpc_executes_ml: bool = False,
) -> Category:
    """Map a coupling description onto its taxonomy category.

    The flags mirror the distinctions drawn in §I: what the ML reads, what
    it replaces, and what it steers.  Exactly one category is returned;
    precedence follows the paper's own ordering (control > surrogate >
    autotuning > analysis > simulation-trained > plain execution).

    Examples
    --------
    >>> classify(ml_replaces_simulation=True)
    <Category.ML_AROUND_HPC: 'MLaroundHPC'>
    >>> classify(ml_configures_execution=True)
    <Category.ML_AUTOTUNING: 'MLautotuning'>
    """
    if ml_targets_experiment:
        return Category.ML_CONTROL
    if ml_replaces_simulation:
        return Category.ML_AROUND_HPC
    if ml_configures_execution:
        return Category.ML_AUTOTUNING
    if ml_consumes_simulation_output:
        # Distinguish post-hoc analysis from training a reusable model:
        # the paper files trajectory analysis under MLafterHPC and
        # experiment-facing trained networks under SimulationTrainedML.
        return Category.ML_AFTER_HPC
    if hpc_executes_ml:
        return Category.HPC_RUNS_ML
    return Category.SIMULATION_TRAINED_ML
