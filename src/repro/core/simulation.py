"""The `Simulation` protocol and the run database.

A *simulation* in the Learning-Everywhere sense is any expensive map from
a small feature vector (the paper's ``D`` control parameters, §III-C) to
an output vector, optionally stochastic.  The framework only needs:

* ``input_names`` / ``output_names`` — the feature signature,
* ``run(x, rng)`` — one (timed) evaluation,

and everything else (surrogates, UQ, orchestration, campaigns) is built
on top.  :class:`RunDatabase` implements the "no run is wasted" principle
of §II-C1: every executed run — successful or failed — is recorded and
becomes training signal (outputs for the regressor, success flags for a
feasibility model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.timing import Timer

__all__ = [
    "SimulationError",
    "Simulation",
    "CallableSimulation",
    "RunRecord",
    "RunDatabase",
]


class SimulationError(RuntimeError):
    """Raised by a simulation run that fails for physical or numerical
    reasons (e.g. an unstable integrator timestep).  Failed runs are still
    recorded by the framework."""


class Simulation:
    """Base class for expensive parameterized computations.

    Subclasses must set :attr:`input_names` and :attr:`output_names` and
    implement :meth:`_run`.  ``run`` adds input validation and timing.
    """

    #: Names of the input features, length D (see §III-C).
    input_names: tuple[str, ...] = ()
    #: Names of the output quantities.
    output_names: tuple[str, ...] = ()

    @property
    def n_inputs(self) -> int:
        return len(self.input_names)

    @property
    def n_outputs(self) -> int:
        return len(self.output_names)

    def _run(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def run(
        self, x: Sequence[float] | np.ndarray, rng: int | np.random.Generator | None = None
    ) -> "RunRecord":
        """Execute one simulation; always returns a :class:`RunRecord`.

        Failures raise :exc:`SimulationError` *after* being wrapped into a
        record by callers that use :meth:`run_recorded`; direct ``run``
        propagates the exception.
        """
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.n_inputs:
            raise ValueError(
                f"{type(self).__name__} expects {self.n_inputs} inputs "
                f"({', '.join(self.input_names)}), got {x.size}"
            )
        gen = ensure_rng(rng)
        with Timer() as t:
            y = self._run(x, gen)
        y = np.asarray(y, dtype=float).ravel()
        if y.size != self.n_outputs:
            raise RuntimeError(
                f"{type(self).__name__}._run returned {y.size} outputs, "
                f"expected {self.n_outputs}"
            )
        return RunRecord(inputs=x, outputs=y, wall_seconds=t.elapsed, success=True)

    def run_recorded(
        self,
        x: Sequence[float] | np.ndarray,
        db: "RunDatabase",
        rng: int | np.random.Generator | None = None,
    ) -> "RunRecord":
        """Run and append to ``db``; failures are recorded, then re-raised."""
        x = np.asarray(x, dtype=float).ravel()
        t = Timer()
        try:
            with t:
                record = self.run(x, rng)
        except SimulationError as exc:
            record = RunRecord(
                inputs=x,
                outputs=np.full(self.n_outputs, np.nan),
                wall_seconds=t.elapsed,
                success=False,
                error=str(exc),
            )
            db.add(record)
            raise
        db.add(record)
        return record

    def run_batch(
        self,
        X: np.ndarray,
        rng: int | np.random.Generator | None = None,
        db: "RunDatabase | None" = None,
    ) -> np.ndarray:
        """Run every row of ``X``; returns the (n, n_outputs) output matrix.

        Failed rows contribute NaN outputs (and are recorded as failures
        when ``db`` is given) rather than aborting the sweep.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        gen = ensure_rng(rng)
        out = np.empty((len(X), self.n_outputs))
        for i, x in enumerate(X):
            try:
                if db is not None:
                    record = self.run_recorded(x, db, gen)
                else:
                    record = self.run(x, gen)
                out[i] = record.outputs
            except SimulationError:
                out[i] = np.nan
        return out


class CallableSimulation(Simulation):
    """Adapter turning a plain function into a :class:`Simulation`.

    Parameters
    ----------
    fn:
        ``fn(x, rng) -> array`` or ``fn(x) -> array`` (detected by a probe
        of its signature at first call is avoided — pass ``needs_rng``).
    input_names, output_names:
        Feature signature.
    needs_rng:
        Whether ``fn`` accepts the generator as second argument.
    """

    def __init__(
        self,
        fn: Callable[..., np.ndarray],
        input_names: Sequence[str],
        output_names: Sequence[str],
        *,
        needs_rng: bool = False,
    ):
        self._fn = fn
        self.input_names = tuple(input_names)
        self.output_names = tuple(output_names)
        self._needs_rng = bool(needs_rng)

    def _run(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self._needs_rng:
            return np.asarray(self._fn(x, rng), dtype=float)
        return np.asarray(self._fn(x), dtype=float)


@dataclass
class RunRecord:
    """One executed simulation: inputs, outputs, cost, success flag."""

    inputs: np.ndarray
    outputs: np.ndarray
    wall_seconds: float
    success: bool = True
    error: str | None = None
    metadata: dict = field(default_factory=dict)


class RunDatabase:
    """Append-only store of :class:`RunRecord` — "no run is wasted".

    Provides training matrices for surrogates (:meth:`training_arrays`,
    successful runs only) and a feasibility dataset
    (:meth:`feasibility_arrays`, all runs with success labels).
    """

    def __init__(self) -> None:
        self._records: list[RunRecord] = []

    def add(self, record: RunRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, i: int) -> RunRecord:
        return self._records[i]

    @property
    def n_success(self) -> int:
        return sum(1 for r in self._records if r.success)

    @property
    def n_failure(self) -> int:
        return len(self._records) - self.n_success

    def total_wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self._records)

    def training_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(X, Y) from successful runs; shapes (S, D) and (S, K)."""
        good = [r for r in self._records if r.success]
        if not good:
            raise ValueError("no successful runs in database")
        X = np.stack([r.inputs for r in good])
        Y = np.stack([r.outputs for r in good])
        return X, Y

    def feasibility_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(X, success) over *all* runs — training data for a feasibility
        classifier; this is where failed runs earn their keep."""
        if not self._records:
            raise ValueError("empty database")
        X = np.stack([r.inputs for r in self._records])
        s = np.array([float(r.success) for r in self._records])
        return X, s

    def mean_run_seconds(self) -> float:
        if not self._records:
            return 0.0
        return self.total_wall_seconds() / len(self._records)
