"""ML-based coarse-graining (§I, §II-B).

The paper names coarse-graining "a difficult but essential aspect of the
many multi-scale application areas" and gives the concrete example of
using "a larger grain size to solve the diffusion equation underlying
cellular and tissue level simulations".

:class:`LearnedCorrector` implements residual coarse-graining: given a
*fine* solver (expensive, accurate) and a *coarse* solver (cheap — e.g.
the same PDE on a grid coarsened by a grain factor), it trains a network
on the residual ``fine(x) - lift(coarse(x))`` so that

    corrected(x) = lift(coarse(x)) + network(x, coarse(x))

approaches fine accuracy at coarse cost.  :class:`CoarseGrainedSolver`
packages the corrected solver behind the same callable interface.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.surrogate import Surrogate
from repro.nn import metrics
from repro.util.rng import ensure_rng

__all__ = ["LearnedCorrector", "CoarseGrainedSolver"]

SolverFn = Callable[[np.ndarray], np.ndarray]


class LearnedCorrector:
    """Train the coarse-to-fine residual model.

    Parameters
    ----------
    fine_solver, coarse_solver:
        ``solver(x) -> y`` with fixed output sizes; the coarse output may
        have a different length than the fine output (``lift`` handles
        the mapping; the default lift is linear interpolation).
    in_dim:
        Length of the parameter vector ``x``.
    fine_dim, coarse_dim:
        Output lengths of the two solvers.
    lift:
        Maps a coarse output onto the fine grid; default interpolates.
    """

    def __init__(
        self,
        fine_solver: SolverFn,
        coarse_solver: SolverFn,
        in_dim: int,
        fine_dim: int,
        coarse_dim: int,
        *,
        lift: Callable[[np.ndarray], np.ndarray] | None = None,
        hidden: tuple[int, ...] = (64, 64),
        rng: int | np.random.Generator | None = None,
    ):
        if min(in_dim, fine_dim, coarse_dim) <= 0:
            raise ValueError("in_dim, fine_dim, coarse_dim must be positive")
        self.fine_solver = fine_solver
        self.coarse_solver = coarse_solver
        self.in_dim = int(in_dim)
        self.fine_dim = int(fine_dim)
        self.coarse_dim = int(coarse_dim)
        self.lift = lift if lift is not None else self._default_lift
        self.rng = ensure_rng(rng)
        # Corrector sees (x, coarse output) and predicts the fine residual.
        self.surrogate = Surrogate(
            in_dim + fine_dim,
            fine_dim,
            hidden=hidden,
            test_fraction=0.2,
            rng=self.rng,
        )
        self._fitted = False

    def _default_lift(self, y_coarse: np.ndarray) -> np.ndarray:
        """Linear interpolation from the coarse to the fine output grid."""
        if self.coarse_dim == self.fine_dim:
            return y_coarse
        xc = np.linspace(0.0, 1.0, self.coarse_dim)
        xf = np.linspace(0.0, 1.0, self.fine_dim)
        return np.interp(xf, xc, y_coarse)

    def _features(self, x: np.ndarray, lifted: np.ndarray) -> np.ndarray:
        return np.concatenate([x, lifted])

    def fit(self, X: np.ndarray) -> dict[str, float]:
        """Train on a design matrix of parameter vectors.

        Returns a dict with the corrected and uncorrected test RMSE
        against the fine solver (computed on the surrogate's held-out
        split proxy: a fresh 20% of ``X``).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.in_dim:
            raise ValueError(f"X must have {self.in_dim} columns, got {X.shape[1]}")
        if len(X) < 10:
            raise ValueError("need at least 10 training parameter vectors")
        feats, residuals, lifted_all, fine_all = [], [], [], []
        for x in X:
            y_fine = np.asarray(self.fine_solver(x), dtype=float).ravel()
            y_coarse = np.asarray(self.coarse_solver(x), dtype=float).ravel()
            if y_fine.size != self.fine_dim or y_coarse.size != self.coarse_dim:
                raise ValueError("solver output size mismatch with declared dims")
            lifted = self.lift(y_coarse)
            feats.append(self._features(x, lifted))
            residuals.append(y_fine - lifted)
            lifted_all.append(lifted)
            fine_all.append(y_fine)
        feats = np.stack(feats)
        residuals = np.stack(residuals)
        self.surrogate.fit(feats, residuals)
        self._fitted = True

        # Held-out check on a deterministic tail slice of the inputs.
        n_eval = max(2, len(X) // 5)
        corrected = np.stack([self.predict(x) for x in X[-n_eval:]])
        fine = np.stack(fine_all[-n_eval:])
        lifted = np.stack(lifted_all[-n_eval:])
        return {
            "rmse_uncorrected": metrics.rmse(lifted, fine),
            "rmse_corrected": metrics.rmse(corrected, fine),
        }

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Corrected solution: lift(coarse(x)) + learned residual."""
        if not self._fitted:
            raise RuntimeError("LearnedCorrector used before fit()")
        x = np.asarray(x, dtype=float).ravel()
        lifted = self.lift(np.asarray(self.coarse_solver(x), dtype=float).ravel())
        residual = self.surrogate.predict(self._features(x, lifted)[None, :])[0]
        return lifted + residual


class CoarseGrainedSolver:
    """Callable facade: ``solver(x) -> corrected fine-grid solution``."""

    def __init__(self, corrector: LearnedCorrector):
        self.corrector = corrector

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.corrector.predict(x)

    @property
    def fine_dim(self) -> int:
        return self.corrector.fine_dim
