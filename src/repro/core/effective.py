"""The effective-performance model of §III-D.

The paper distinguishes *traditional* performance (benchmark scores) from
*effective* performance — what the user sees when learned surrogates
answer most queries.  Its central formula, for a campaign of
``N_train`` training simulations followed by ``N_lookup`` surrogate
inferences::

                 T_seq * (N_lookup + N_train)
    S  =  ------------------------------------------------
          T_lookup * N_lookup + (T_train + T_learn) * N_train

with T_seq the sequential simulation time, T_train the (parallel)
per-simulation time while generating training data, T_learn the per-sample
training cost, and T_lookup the per-inference cost.  The two limits called
out in the paper:

* ``N_lookup = 0``  ->  ``S -> T_seq / (T_train + T_learn)`` (classic
  parallel speedup when T_learn is negligible), and
* ``N_lookup / N_train -> inf``  ->  ``S -> T_seq / T_lookup`` — "which
  can be huge!" (the paper reports ~1e5 for the nanoconfinement surrogate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.timing import WallClockLedger
from repro.util.validation import check_positive

__all__ = ["effective_speedup", "EffectiveSpeedupModel", "speedup_sweep"]


def effective_speedup(
    t_seq: float,
    t_train: float,
    t_learn: float,
    t_lookup: float,
    n_lookup: float,
    n_train: float,
) -> float:
    """Evaluate the §III-D effective-speedup formula.

    Parameters mirror the paper exactly; ``n_lookup`` and ``n_train`` may
    be floats (the formula is used for asymptotic sweeps).  ``n_train``
    must be positive (the model assumes some training simulations);
    ``n_lookup`` may be zero.
    """
    check_positive("t_seq", t_seq)
    check_positive("t_train", t_train)
    check_positive("t_learn", t_learn, strict=False)
    check_positive("t_lookup", t_lookup)
    check_positive("n_train", n_train)
    check_positive("n_lookup", n_lookup, strict=False)
    numerator = t_seq * (n_lookup + n_train)
    denominator = t_lookup * n_lookup + (t_train + t_learn) * n_train
    return numerator / denominator


@dataclass(frozen=True)
class EffectiveSpeedupModel:
    """The four timing constants of §III-D bundled with analysis helpers.

    Attributes
    ----------
    t_seq:
        Sequential execution time of one simulation.
    t_train:
        Per-simulation wall time while producing training data (lower than
        ``t_seq`` when training simulations run in parallel).
    t_learn:
        Network-training time *per training sample*.
    t_lookup:
        Inference time per surrogate query.
    """

    t_seq: float
    t_train: float
    t_learn: float
    t_lookup: float

    def __post_init__(self) -> None:
        check_positive("t_seq", self.t_seq)
        check_positive("t_train", self.t_train)
        check_positive("t_learn", self.t_learn, strict=False)
        check_positive("t_lookup", self.t_lookup)

    def speedup(self, n_lookup: float, n_train: float) -> float:
        return effective_speedup(
            self.t_seq, self.t_train, self.t_learn, self.t_lookup, n_lookup, n_train
        )

    @property
    def no_ml_limit(self) -> float:
        """S at ``n_lookup = 0``: the classic T_seq / (T_train + T_learn)."""
        return self.t_seq / (self.t_train + self.t_learn)

    @property
    def lookup_limit(self) -> float:
        """S as ``n_lookup / n_train -> inf``: T_seq / T_lookup."""
        return self.t_seq / self.t_lookup

    def speedup_at_fraction(self, lookup_fraction: float, n_total: float) -> float:
        """S for a campaign of ``n_total`` queries with a given lookup fraction.

        ``lookup_fraction`` is ``n_lookup / (n_lookup + n_train)`` — the
        quantity the MLaroundHPC ledger reports — so serving metrics can be
        compared against the analytic model without unpacking the counts.
        ``lookup_fraction`` must lie in ``[0, 1)`` (the formula needs at
        least one training simulation).
        """
        if not 0.0 <= lookup_fraction < 1.0:
            raise ValueError(
                f"lookup_fraction must be in [0, 1), got {lookup_fraction}"
            )
        check_positive("n_total", n_total)
        n_lookup = lookup_fraction * n_total
        return self.speedup(n_lookup, n_total - n_lookup)

    def crossover_ratio(self) -> float:
        """``n_lookup / n_train`` at which S reaches the geometric mean of
        its two limits — a scalar summary of where the transition happens.
        """
        target = float(np.sqrt(self.no_ml_limit * self.lookup_limit))
        # Solve S(r) = target for r = n_lookup/n_train analytically:
        #   t_seq (r + 1) = target (t_lookup r + t_train + t_learn)
        a = self.t_seq - target * self.t_lookup
        b = target * (self.t_train + self.t_learn) - self.t_seq
        if a <= 0:
            return float("inf")
        r = b / a
        return float(max(r, 0.0))

    @classmethod
    def from_ledger(
        cls, ledger: WallClockLedger, *, t_seq: float | None = None
    ) -> "EffectiveSpeedupModel":
        """Build the model from *measured* costs in a
        :class:`~repro.util.timing.WallClockLedger` using the conventional
        category names ``simulate`` / ``train`` / ``lookup``.

        ``t_seq`` defaults to the measured mean simulation time (i.e. the
        training simulations are assumed to run at sequential speed, the
        "simple case" of the paper).  ``t_learn`` is the total training
        time divided by the number of simulate calls (training cost *per
        sample*, as the paper defines it).
        """
        mean_sim = ledger.mean("simulate")
        if mean_sim == 0.0:
            raise ValueError("ledger has no 'simulate' records")
        if ledger.count("lookup") == 0:
            raise ValueError("ledger has no 'lookup' records")
        n_train = max(ledger.count("simulate"), 1)
        t_learn = ledger.total("train") / n_train
        return cls(
            t_seq=t_seq if t_seq is not None else mean_sim,
            t_train=mean_sim,
            t_learn=t_learn,
            t_lookup=ledger.mean("lookup"),
        )


def speedup_sweep(
    model: EffectiveSpeedupModel,
    ratios: np.ndarray | None = None,
    n_train: float = 1000.0,
) -> list[dict[str, float]]:
    """Tabulate S over a sweep of ``n_lookup / n_train`` ratios.

    Returns one row per ratio with the ratio, n_lookup, the speedup, and
    the fraction of the asymptotic ``lookup_limit`` attained — the series
    a figure of §III-D would plot.
    """
    if ratios is None:
        ratios = np.logspace(-2, 6, 17)
    rows = []
    for r in np.asarray(ratios, dtype=float):
        n_lookup = r * n_train
        s = model.speedup(n_lookup, n_train)
        rows.append(
            {
                "ratio": float(r),
                "n_lookup": float(n_lookup),
                "speedup": s,
                "fraction_of_limit": s / model.lookup_limit,
            }
        )
    return rows
