"""ANN surrogates over simulations (§II-C1, §III-D).

A :class:`Surrogate` packages the full recipe used by the paper's
nanoconfinement exemplar [26]: standard-scale the D input features and the
K outputs, train a small dense network on S samples with a 70/30
train/test split, and report agreement metrics on the held-out fraction.
The surrogate can carry a UQ backend (MC-dropout by default when the
network has dropout) so callers can ask not only "what is the predicted
output" but "can the prediction be trusted" (§III-B).
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.uq import MCDropoutUQ, UQBackend, UQResult
from repro.nn import metrics
from repro.nn.model import MLP
from repro.nn.optimizers import Adam, Optimizer
from repro.nn.scalers import StandardScaler
from repro.nn.training import EarlyStopping, Trainer
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["Surrogate", "SurrogateReport"]


@dataclass
class SurrogateReport:
    """Held-out accuracy of a trained surrogate."""

    n_train: int
    n_test: int
    test_rmse: float
    test_mae: float
    test_r2: float
    per_output_rmse: np.ndarray = field(repr=False, default=None)

    def __str__(self) -> str:
        return (
            f"SurrogateReport(S={self.n_train}, test={self.n_test}, "
            f"rmse={self.test_rmse:.4g}, mae={self.test_mae:.4g}, "
            f"r2={self.test_r2:.4f})"
        )


class Surrogate:
    """A trained stand-in for an expensive simulation.

    Parameters
    ----------
    in_dim, out_dim:
        Feature signature (the paper's D and the output count).
    hidden:
        Hidden layer widths; defaults mirror the exemplar networks
        (§III-D uses hidden layers of 30 and 48 units).
    dropout:
        Dropout rate; > 0 enables MC-dropout UQ.
    activation, l2, epochs, batch_size, learning_rate, patience:
        Training configuration forwarded to :class:`~repro.nn.training.Trainer`.
    test_fraction:
        Held-out fraction for the accuracy report (paper: 30%).
    rng:
        Seed or generator controlling init, splits, shuffling, dropout.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        hidden: tuple[int, ...] = (30, 48),
        dropout: float = 0.0,
        activation: str = "relu",
        l2: float = 0.0,
        epochs: int = 400,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        patience: int = 40,
        test_fraction: float = 0.3,
        rng: int | np.random.Generator | None = None,
    ):
        if not 0.0 <= test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in [0, 1), got {test_fraction}")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.test_fraction = float(test_fraction)
        self._epochs = int(epochs)
        self._batch_size = int(batch_size)
        self._lr = float(learning_rate)
        self._patience = int(patience)
        gen = ensure_rng(rng)
        model_rng, self._train_rng, self._split_rng = spawn_rngs(gen, 3)
        self.model = MLP.regressor(
            in_dim,
            list(hidden),
            out_dim,
            activation=activation,
            dropout=dropout,
            l2=l2,
            rng=model_rng,
        )
        self.x_scaler = StandardScaler()
        self.y_scaler = StandardScaler()
        self._fitted = False
        self.report: SurrogateReport | None = None
        self.uq_backend: UQBackend | None = None
        self._uq_samples = 50
        #: Optional duck-typed repro.obs.trace.Tracer; when set, fit and
        #: the predict paths are wrapped in kind="nn" spans.  Kept
        #: duck-typed (no repro.obs import) so core stays cycle-free.
        self.tracer = None
        #: Optional duck-typed repro.obs.metrics.MetricRegistry; forwarded
        #: (with the tracer) to the Trainer so fits emit per-epoch spans
        #: and loss/grad-norm gauges.
        self.registry = None

    def _span(self, name: str, n_rows: int):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, "nn", attrs={"n_rows": int(n_rows)})

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, Y: np.ndarray) -> SurrogateReport:
        """Train on (X, Y); returns the held-out accuracy report.

        Rows with non-finite outputs (failed simulation runs) are dropped
        from the regression set — they still matter elsewhere, via
        :meth:`repro.core.simulation.RunDatabase.feasibility_arrays`.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.asarray(Y, dtype=float)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.shape[1] != self.in_dim or Y.shape[1] != self.out_dim:
            raise ValueError(
                f"expected shapes (n, {self.in_dim}) and (n, {self.out_dim}); "
                f"got {X.shape} and {Y.shape}"
            )
        if len(X) != len(Y):
            raise ValueError("X and Y row counts differ")
        finite = np.all(np.isfinite(Y), axis=1) & np.all(np.isfinite(X), axis=1)
        X, Y = X[finite], Y[finite]
        if len(X) < 4:
            raise ValueError(f"need at least 4 finite samples, got {len(X)}")

        n_test = int(round(self.test_fraction * len(X)))
        order = self._split_rng.permutation(len(X))
        test_idx, train_idx = order[:n_test], order[n_test:]
        X_train, Y_train = X[train_idx], Y[train_idx]

        with self._span("surrogate.fit", len(X_train)):
            Xs = self.x_scaler.fit_transform(X_train)
            Ys = self.y_scaler.fit_transform(Y_train)
            trainer = Trainer(
                self.model,
                optimizer=Adam(self._lr),
                epochs=self._epochs,
                batch_size=self._batch_size,
                validation_fraction=0.15 if self._patience else 0.0,
                early_stopping=EarlyStopping(self._patience)
                if self._patience
                else None,
                rng=self._train_rng,
                tracer=self.tracer,
                registry=self.registry,
            )
            trainer.fit(Xs, Ys)
        self._fitted = True

        if self.model.has_dropout():
            self.uq_backend = MCDropoutUQ(self.model, n_samples=self._uq_samples)

        if n_test:
            pred = self.predict(X[test_idx])
            truth = Y[test_idx]
            per_out = np.sqrt(np.mean((pred - truth) ** 2, axis=0))
            self.report = SurrogateReport(
                n_train=len(train_idx),
                n_test=n_test,
                test_rmse=metrics.rmse(pred, truth),
                test_mae=metrics.mae(pred, truth),
                test_r2=metrics.r2_score(pred, truth),
                per_output_rmse=per_out,
            )
        else:
            self.report = SurrogateReport(
                n_train=len(train_idx),
                n_test=0,
                test_rmse=float("nan"),
                test_mae=float("nan"),
                test_r2=float("nan"),
            )
        return self.report

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("Surrogate used before fit()")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Point predictions in original output units, shape (n, K)."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        with self._span("surrogate.predict", len(X)):
            Zs = self.model.predict(self.x_scaler.transform(X))
            return self.y_scaler.inverse_transform(Zs)

    def predict_stable(self, X: np.ndarray) -> np.ndarray:
        """Row-stable point predictions, shape (n, K).

        Like :meth:`predict` but through the fixed-summation-order forward
        pass of :meth:`~repro.nn.model.MLP.predict_stable`, so row ``i`` is
        bitwise identical no matter which other rows share the batch.  The
        serving layer uses this for degraded (UQ-free) answers so responses
        never depend on how the micro-batcher happened to group queries.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        with self._span("surrogate.predict_stable", len(X)):
            Zs = self.model.predict_stable(self.x_scaler.transform(X))
            return self.y_scaler.inverse_transform(Zs)

    def predict_with_uncertainty(self, X: np.ndarray) -> UQResult:
        """Predictive mean and std in original units (requires a UQ backend).

        This is the *batched fast path*: the whole query matrix is scaled
        once and handed to the UQ backend in a single
        :meth:`~repro.core.uq.UQBackend.predict` call — one set of MC/ensemble
        forward passes for the batch instead of one per row.  Because the
        shipped backends are bitwise row-stable (per-unit dropout masks drawn
        from a per-call generator, fixed-order contractions), the batched
        result matches per-row calls exactly::

            predict_with_uncertainty(X).mean[i]
              == predict_with_uncertainty(X[i:i+1]).mean[0]   # bitwise

        so batching queries (``MLAroundHPC.query_batch``, ``repro.serve``)
        never changes any answer or gate decision.
        """
        self._require_fitted()
        if self.uq_backend is None:
            raise RuntimeError(
                "no UQ backend: construct the Surrogate with dropout > 0, "
                "or attach a DeepEnsembleUQ to .uq_backend"
            )
        X = np.atleast_2d(np.asarray(X, dtype=float))
        # Scale once, one backend call for the whole matrix; both transforms
        # are elementwise, so they preserve the backend's row stability.
        with self._span("surrogate.predict_uq", len(X)):
            raw = self.uq_backend.predict(self.x_scaler.transform(X))
            mean = self.y_scaler.inverse_transform(raw.mean)
            std = raw.std * self.y_scaler.scale_std()
            return UQResult(mean=mean, std=std)

    # ------------------------------------------------------------------
    # serialization — "enable real-time, anytime, and anywhere access to
    # simulation results" (§II-C1 outcome 4) requires shipping trained
    # surrogates around without retraining.
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize a *fitted* surrogate (weights + scalers) to JSON."""
        self._require_fitted()
        payload = {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "test_fraction": self.test_fraction,
            "model": json.loads(self.model.to_json()),
            "x_scaler": {
                "mean": self.x_scaler.mean_.tolist(),
                "scale": self.x_scaler.scale_.tolist(),
            },
            "y_scaler": {
                "mean": self.y_scaler.mean_.tolist(),
                "scale": self.y_scaler.scale_.tolist(),
            },
            "report": None
            if self.report is None
            else {
                "n_train": self.report.n_train,
                "n_test": self.report.n_test,
                "test_rmse": self.report.test_rmse,
                "test_mae": self.report.test_mae,
                "test_r2": self.report.test_r2,
            },
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Surrogate":
        """Restore a fitted surrogate saved by :meth:`to_json`.

        The restored object predicts (and, when the architecture has
        dropout, provides MC-dropout UQ); it is not meant to be refit.
        """
        payload = json.loads(text)
        surrogate = cls.__new__(cls)
        surrogate.in_dim = int(payload["in_dim"])
        surrogate.out_dim = int(payload["out_dim"])
        surrogate.test_fraction = float(payload["test_fraction"])
        surrogate.model = MLP.from_json(json.dumps(payload["model"]))
        surrogate.x_scaler = StandardScaler()
        surrogate.x_scaler.mean_ = np.asarray(payload["x_scaler"]["mean"])
        surrogate.x_scaler.scale_ = np.asarray(payload["x_scaler"]["scale"])
        surrogate.x_scaler._fitted = True
        surrogate.y_scaler = StandardScaler()
        surrogate.y_scaler.mean_ = np.asarray(payload["y_scaler"]["mean"])
        surrogate.y_scaler.scale_ = np.asarray(payload["y_scaler"]["scale"])
        surrogate.y_scaler._fitted = True
        surrogate._fitted = True
        surrogate._epochs = 0
        surrogate._batch_size = 32
        surrogate._lr = 1e-3
        surrogate._patience = 0
        surrogate._train_rng = None
        surrogate._split_rng = None
        surrogate._uq_samples = 50
        surrogate.tracer = None
        surrogate.registry = None
        rep = payload.get("report")
        surrogate.report = (
            None
            if rep is None
            else SurrogateReport(
                n_train=rep["n_train"],
                n_test=rep["n_test"],
                test_rmse=rep["test_rmse"],
                test_mae=rep["test_mae"],
                test_r2=rep["test_r2"],
            )
        )
        surrogate.uq_backend = (
            MCDropoutUQ(surrogate.model, n_samples=surrogate._uq_samples)
            if surrogate.model.has_dropout()
            else None
        )
        return surrogate

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"Surrogate(D={self.in_dim}, K={self.out_dim}, {state})"
