"""MLaroundHPC: learned surrogates wrapped around a live simulation (§I, §III-D).

:class:`MLAroundHPC` is the paper's central object rendered as code.  It
owns a :class:`~repro.core.simulation.Simulation`, a
:class:`~repro.core.surrogate.Surrogate` and a
:class:`~repro.util.timing.WallClockLedger`, and answers *queries*:

* while the surrogate is untrained (or uncertain at the query point), the
  real simulation runs — and its result is banked as training data ("no
  run is wasted");
* once the surrogate is confident, queries are answered by inference,
  orders of magnitude faster (the "effective performance" boost);
* the surrogate retrains on a configurable cadence as new simulation
  results accumulate ("with new simulation runs, the ML layer gets better
  at making predictions" — auto-tunability outcome 3 of §II-C1).

The ledger feeds :class:`~repro.core.effective.EffectiveSpeedupModel`, so
every orchestrator can report its *measured* effective speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.effective import EffectiveSpeedupModel
from repro.core.simulation import RunDatabase, Simulation, SimulationError
from repro.core.surrogate import Surrogate
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.timing import Timer, WallClockLedger

__all__ = ["RetrainPolicy", "QueryOutcome", "MLAroundHPC"]


@dataclass(frozen=True)
class RetrainPolicy:
    """When the wrapper (re)trains its surrogate.

    Attributes
    ----------
    min_initial_runs:
        No surrogate exists until this many successful runs are banked.
    retrain_every:
        After the initial fit, retrain once this many *new* successful
        runs accumulate.
    """

    min_initial_runs: int = 20
    retrain_every: int = 25

    def __post_init__(self) -> None:
        if self.min_initial_runs < 4:
            raise ValueError("min_initial_runs must be >= 4 (surrogate needs data)")
        if self.retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")


@dataclass
class QueryOutcome:
    """The answer to one query plus its provenance."""

    inputs: np.ndarray
    outputs: np.ndarray
    source: str  # "simulate" | "lookup"
    #: Normalized predictive std (max over outputs, in scaled units);
    #: NaN when the answer came from the simulation.
    uncertainty: float = float("nan")
    wall_seconds: float = 0.0


class MLAroundHPC:
    """Wrap a simulation in a learned, uncertainty-gated surrogate.

    Parameters
    ----------
    simulation:
        The expensive ground truth.
    surrogate:
        An unfitted :class:`~repro.core.surrogate.Surrogate` whose
        dimensions match the simulation signature.  Give it ``dropout>0``
        to enable the UQ gate.
    tolerance:
        Lookup is allowed when the surrogate's normalized predictive std
        (std divided by the output scaler's scale — dimensionless) is at
        most this value.  ``None`` disables the gate: any fitted surrogate
        answers every query (the non-UQ mode the paper warns about).
    policy:
        Retraining cadence.
    rng:
        Seed/generator for simulation stochasticity.
    """

    def __init__(
        self,
        simulation: Simulation,
        surrogate: Surrogate,
        *,
        tolerance: float | None = 0.2,
        policy: RetrainPolicy | None = None,
        rng: int | np.random.Generator | None = None,
    ):
        if surrogate.in_dim != simulation.n_inputs:
            raise ValueError(
                f"surrogate expects {surrogate.in_dim} inputs but simulation "
                f"has {simulation.n_inputs}"
            )
        if surrogate.out_dim != simulation.n_outputs:
            raise ValueError(
                f"surrogate predicts {surrogate.out_dim} outputs but simulation "
                f"has {simulation.n_outputs}"
            )
        if tolerance is not None and tolerance <= 0:
            raise ValueError(f"tolerance must be > 0 or None, got {tolerance}")
        self.simulation = simulation
        self.surrogate = surrogate
        self.tolerance = tolerance
        self.policy = policy or RetrainPolicy()
        self.db = RunDatabase()
        self.ledger = WallClockLedger()
        self._sim_rng, = spawn_rngs(ensure_rng(rng), 1)
        self._runs_at_last_fit = 0
        self._trained = False
        self.n_lookups = 0
        self.n_simulations = 0

    # ------------------------------------------------------------------
    def bootstrap(self, X: np.ndarray) -> None:
        """Run the simulation over a design matrix and fit the surrogate.

        This is the "run N_train simulations, then learn" phase of the
        paper's simple-case analysis.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        for x in X:
            self._simulate(x)
        self._maybe_fit(force=True)

    def query(self, x: np.ndarray) -> QueryOutcome:
        """Answer one query, choosing lookup vs simulation."""
        x = np.asarray(x, dtype=float).ravel()
        if self._trained:
            outcome = self._try_lookup(x)
            if outcome is not None:
                return outcome
        outcome = self._simulate(x)
        self._maybe_fit()
        return outcome

    def query_batch(self, X: np.ndarray) -> list[QueryOutcome]:
        """Answer a query matrix with one vectorized gate pass.

        A trained wrapper evaluates the UQ gate for *all* rows in a single
        :meth:`gate_batch` call — one batched NN forward + UQ pass instead of
        one per query — then falls back to the simulation for the rows the
        gate rejects.  Per-query ledger semantics match :meth:`query`: every
        gated row contributes one ``"lookup"`` record (its share of the batch
        cost) and every fallback contributes one ``"simulate"`` record.
        Because the UQ backends are bitwise row-stable, each row's answer and
        gate decision are identical to a per-row :meth:`query` against the
        same surrogate state.

        One documented difference from the sequential loop: the gate is
        evaluated against the surrogate state at batch entry, so a retrain
        triggered by a fallback simulation inside the batch takes effect from
        the *next* batch rather than re-gating the remaining rows.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        outcomes: list[QueryOutcome | None] = [None] * len(X)
        if self._trained and len(X):
            with Timer() as t:
                mean, _, std_norm, confident = self.gate_batch(X)
            share = t.elapsed / len(X)
            for i in range(len(X)):
                self.ledger.record("lookup", share)
                if confident[i]:
                    self.n_lookups += 1
                    outcomes[i] = QueryOutcome(
                        inputs=X[i],
                        outputs=mean[i],
                        source="lookup",
                        uncertainty=float(std_norm[i]),
                        wall_seconds=share,
                    )
        for i in range(len(X)):
            if outcomes[i] is None:
                outcomes[i] = self._simulate(X[i].ravel())
                self._maybe_fit()
        return outcomes

    # ------------------------------------------------------------------
    def gate_batch(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate the UQ gate for a whole query matrix at once.

        Returns ``(mean, std, std_norm, confident)`` — predictions of
        shape ``(n, K)``, the raw predictive std in output units with the
        same shape (NaN-filled when no UQ backend is available), the
        normalized predictive std per row (NaN without UQ), and the
        boolean gate decision per row.  The raw std is what downstream
        calibration monitoring needs: paired with a fallback simulation's
        truth it yields the served z-scores the
        :class:`~repro.obs.monitor.CalibrationCoverageMonitor` watches.
        One vectorized forward/UQ pass serves every row; this is the
        shared batched-lookup helper behind :meth:`query`,
        :meth:`query_batch` and the :mod:`repro.serve` micro-batcher.
        Requires a trained surrogate.
        """
        if not self._trained:
            raise RuntimeError("gate_batch requires a trained surrogate")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = len(X)
        if self.tolerance is None or self.surrogate.uq_backend is None:
            mean = self.surrogate.predict_stable(X)
            std = np.full((n, self.surrogate.out_dim), np.nan)
            std_norm = np.full(n, np.nan)
            confident = np.full(n, self.tolerance is None)
        else:
            uq = self.surrogate.predict_with_uncertainty(X)
            mean = uq.mean
            std = uq.std
            scale = self.surrogate.y_scaler.scale_std()
            std_norm = np.max(uq.std / scale, axis=1)
            confident = std_norm <= self.tolerance
        return mean, std, std_norm, confident

    def retrain_now(self) -> bool:
        """Retrain immediately on everything banked, off-cadence.

        This is the MLControl early-retrain entry point: a drift monitor
        that has stopped trusting the surrogate's calibration can force a
        refit without waiting for ``policy.retrain_every`` new runs to
        accumulate.  Returns True when a retrain actually ran (the ledger
        gains one ``"train"`` record); False when too few successful runs
        are banked for any fit to be possible.
        """
        if self.db.n_success < self.policy.min_initial_runs:
            return False
        self._maybe_fit(force=True)
        return True

    def set_tolerance(self, tolerance: float | None) -> None:
        """Replace the UQ gate tolerance (MLControl gate tightening).

        Same validation as the constructor; takes effect from the next
        :meth:`gate_batch` call.
        """
        if tolerance is not None and tolerance <= 0:
            raise ValueError(f"tolerance must be > 0 or None, got {tolerance}")
        self.tolerance = tolerance

    def force_simulate(self, x: np.ndarray) -> QueryOutcome:
        """Run the ground-truth simulation regardless of surrogate confidence.

        The run is banked in the database ("no run is wasted") and the
        retrain cadence is honored, exactly as for a gate-rejected
        :meth:`query`.  The serving layer's fallback pool dispatches
        low-confidence queries through this entry point.
        """
        outcome = self._simulate(np.asarray(x, dtype=float).ravel())
        self._maybe_fit()
        return outcome

    def _try_lookup(self, x: np.ndarray) -> QueryOutcome | None:
        with self.ledger.measure("lookup") as t:
            mean, _, std_norm, confident = self.gate_batch(x[None, :])
        if not confident[0]:
            return None
        self.n_lookups += 1
        return QueryOutcome(
            inputs=x, outputs=mean[0], source="lookup",
            uncertainty=float(std_norm[0]), wall_seconds=t.elapsed,
        )

    def _simulate(self, x: np.ndarray) -> QueryOutcome:
        with self.ledger.measure("simulate") as t:
            try:
                record = self.simulation.run_recorded(x, self.db, self._sim_rng)
            except SimulationError:
                # The failure is banked in the db (feasibility signal);
                # surface NaNs to the caller rather than aborting.
                self.n_simulations += 1
                return QueryOutcome(
                    inputs=x,
                    outputs=np.full(self.simulation.n_outputs, np.nan),
                    source="simulate",
                    wall_seconds=t.elapsed,
                )
        self.n_simulations += 1
        return QueryOutcome(
            inputs=x, outputs=record.outputs, source="simulate",
            wall_seconds=t.elapsed,
        )

    def _maybe_fit(self, force: bool = False) -> None:
        n_good = self.db.n_success
        if n_good < self.policy.min_initial_runs:
            return
        new_runs = n_good - self._runs_at_last_fit
        due = force or not self._trained or new_runs >= self.policy.retrain_every
        if not due:
            return
        X, Y = self.db.training_arrays()
        with self.ledger.measure("train"):
            self.surrogate.fit(X, Y)
        self._trained = True
        self._runs_at_last_fit = n_good

    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._trained

    def lookup_fraction(self) -> float:
        total = self.n_lookups + self.n_simulations
        return self.n_lookups / total if total else 0.0

    def effective_speedup_model(self) -> EffectiveSpeedupModel:
        """Measured-cost effective-speedup model for this wrapper."""
        return EffectiveSpeedupModel.from_ledger(self.ledger)

    def measured_effective_speedup(self) -> float:
        """S evaluated at the actually observed (N_lookup, N_train)."""
        model = self.effective_speedup_model()
        return model.speedup(max(self.n_lookups, 0), max(self.n_simulations, 1))

    def __repr__(self) -> str:
        return (
            f"MLAroundHPC(sim={type(self.simulation).__name__}, "
            f"trained={self._trained}, lookups={self.n_lookups}, "
            f"simulations={self.n_simulations})"
        )
