"""MLautotuning: learn optimal simulation control parameters (§I, §III-D).

The exemplar [9] trains an ANN so that an MD simulation "runs at its
optimal speed (using, for example, the lowest allowable timestep dt and
'good' simulation control parameters for high efficiency) while retaining
the accuracy of the final result".  The recipe implemented here:

1. **Collection** — for a sample of system parameter vectors, evaluate a
   grid of candidate control settings through a caller-supplied
   ``evaluate(params, control, rng) -> (quality, cost)`` probe, and label
   each parameter vector with the cheapest control that still meets the
   quality threshold.
2. **Learning** — fit an ANN (the paper's network is 6 -> 30 -> 48 -> 3)
   from parameters to optimal controls.
3. **Recommendation** — predict controls for unseen systems, clipped to
   the convex hull of controls ever observed safe, with an optional
   safety margin pulling toward the conservative end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.surrogate import Surrogate
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["TuningRecord", "AutoTuner"]

EvaluateFn = Callable[[np.ndarray, np.ndarray, np.random.Generator], tuple[float, float]]


@dataclass
class TuningRecord:
    """One probe: a (params, control) pair with its measured outcome."""

    params: np.ndarray
    control: np.ndarray
    quality: float
    cost: float
    acceptable: bool


class AutoTuner:
    """Learn the map from system parameters to optimal control settings.

    Parameters
    ----------
    param_names:
        Names of the system parameters (the exemplar has D=6 inputs).
    control_names:
        Names of the tunable controls (the exemplar has 3 outputs).
    quality_threshold:
        Minimum acceptable quality (higher is better) for a control to be
        considered safe.
    conservative_control:
        The always-safe fallback control (e.g. the smallest timestep);
        also the target of the safety margin and the recommendation when
        the tuner is unfitted or a prediction falls outside observed-safe
        bounds.
    """

    def __init__(
        self,
        param_names: Sequence[str],
        control_names: Sequence[str],
        *,
        quality_threshold: float,
        conservative_control: Sequence[float],
        hidden: tuple[int, ...] = (30, 48),
        rng: int | np.random.Generator | None = None,
    ):
        self.param_names = tuple(param_names)
        self.control_names = tuple(control_names)
        if len(self.param_names) == 0 or len(self.control_names) == 0:
            raise ValueError("need at least one parameter and one control")
        conservative = np.asarray(conservative_control, dtype=float).ravel()
        if conservative.size != len(self.control_names):
            raise ValueError(
                f"conservative_control must have {len(self.control_names)} entries"
            )
        self.quality_threshold = float(quality_threshold)
        self.conservative_control = conservative
        self._hidden = hidden
        self.rng = ensure_rng(rng)
        self.records: list[TuningRecord] = []
        self.surrogate: Surrogate | None = None
        self._safe_lo: np.ndarray | None = None
        self._safe_hi: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return len(self.param_names)

    @property
    def n_controls(self) -> int:
        return len(self.control_names)

    def collect(
        self,
        evaluate: EvaluateFn,
        param_samples: np.ndarray,
        control_candidates: np.ndarray,
    ) -> int:
        """Probe every (params, candidate-control) pair.

        ``control_candidates`` has shape (m, n_controls); candidates are
        assumed ordered from conservative to aggressive along the cost
        axis (only the *measured* cost is used for selection, so the
        ordering only matters for tie-breaks).  Returns the number of
        parameter vectors that gained an acceptable optimal control.
        """
        params = np.atleast_2d(np.asarray(param_samples, dtype=float))
        controls = np.atleast_2d(np.asarray(control_candidates, dtype=float))
        if params.shape[1] != self.n_params:
            raise ValueError(f"param_samples must have {self.n_params} columns")
        if controls.shape[1] != self.n_controls:
            raise ValueError(f"control_candidates must have {self.n_controls} columns")
        eval_rng, = spawn_rngs(self.rng, 1)
        n_labeled = 0
        for p in params:
            best: TuningRecord | None = None
            for c in controls:
                quality, cost = evaluate(p, c, eval_rng)
                acceptable = quality >= self.quality_threshold
                rec = TuningRecord(
                    params=p.copy(), control=c.copy(),
                    quality=float(quality), cost=float(cost),
                    acceptable=acceptable,
                )
                self.records.append(rec)
                if acceptable and (best is None or rec.cost < best.cost):
                    best = rec
            if best is not None:
                n_labeled += 1
        return n_labeled

    def optimal_dataset(self) -> tuple[np.ndarray, np.ndarray]:
        """(params, optimal-control) matrix built from collected records.

        For each distinct parameter vector the cheapest acceptable probe
        wins; parameter vectors with no acceptable probe are omitted.
        """
        if not self.records:
            raise ValueError("no records collected")
        best: dict[bytes, TuningRecord] = {}
        for rec in self.records:
            if not rec.acceptable:
                continue
            key = rec.params.tobytes()
            cur = best.get(key)
            if cur is None or rec.cost < cur.cost:
                best[key] = rec
        if not best:
            raise ValueError("no acceptable controls found for any parameter vector")
        X = np.stack([r.params for r in best.values()])
        C = np.stack([r.control for r in best.values()])
        return X, C

    # ------------------------------------------------------------------
    def fit(self) -> None:
        """Train the params -> optimal-control network."""
        X, C = self.optimal_dataset()
        self._safe_lo = C.min(axis=0)
        self._safe_hi = C.max(axis=0)
        # Below ~40 labeled vectors the held-out report starves training
        # (0.3 test + 0.15 validation leaves ~half the data): spend every
        # sample on the fit and report NaN accuracy instead.
        self.surrogate = Surrogate(
            self.n_params,
            self.n_controls,
            hidden=self._hidden,
            test_fraction=0.3 if len(X) >= 40 else 0.0,
            rng=self.rng,
        )
        self.surrogate.fit(X, C)

    def recommend(
        self, params: np.ndarray, *, safety_margin: float = 0.0
    ) -> np.ndarray:
        """Predict controls for ``params`` (shape (n, n_params) or (n_params,)).

        ``safety_margin`` in [0, 1] linearly interpolates the prediction
        toward :attr:`conservative_control`; predictions are clipped to
        the observed-safe control box.  Falls back to the conservative
        control when unfitted.
        """
        if not 0.0 <= safety_margin <= 1.0:
            raise ValueError(f"safety_margin must be in [0, 1], got {safety_margin}")
        params = np.atleast_2d(np.asarray(params, dtype=float))
        if self.surrogate is None:
            return np.tile(self.conservative_control, (len(params), 1))
        pred = self.surrogate.predict(params)
        pred = np.clip(pred, self._safe_lo, self._safe_hi)
        if safety_margin:
            pred = (1.0 - safety_margin) * pred + safety_margin * self.conservative_control
        return pred

    def __repr__(self) -> str:
        state = "fitted" if self.surrogate is not None else "unfitted"
        return (
            f"AutoTuner({self.n_params} params -> {self.n_controls} controls, "
            f"{len(self.records)} probes, {state})"
        )
