"""Active learning for data-efficient surrogate training (§II-C2).

The paper highlights (via Smith et al. [34]) that an active-learning
approach "reduced the amount of required training data to 10% of the
original model" by iteratively adding simulations "for regions of
chemical space where the current ML model could not make good
predictions".  :class:`ActiveLearner` implements that loop in
pool-based form:

1. seed the surrogate with a small random batch,
2. score the remaining pool by predictive uncertainty (MC-dropout or
   ensemble std),
3. run the simulation on the most-uncertain points, retrain, repeat
   until the accuracy target (or budget) is met.

:func:`random_sampling_baseline` runs the identical loop with random
acquisition so experiments can report the data-fraction ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.simulation import RunDatabase, Simulation, SimulationError
from repro.core.surrogate import Surrogate
from repro.nn import metrics
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = [
    "ActiveLearningResult",
    "ActiveLearner",
    "compare_campaigns",
    "random_sampling_baseline",
]


@dataclass
class ActiveLearningResult:
    """Trace of one acquisition campaign.

    ``sim_calls`` records the simulator invocations made in each round
    (including failed runs, which still cost compute) — the currency
    §III-D's effective-speedup argument is denominated in.
    """

    n_labeled: list[int] = field(default_factory=list)
    test_mae: list[float] = field(default_factory=list)
    sim_calls: list[int] = field(default_factory=list)
    reached_target: bool = False

    @property
    def final_n_labeled(self) -> int:
        return self.n_labeled[-1] if self.n_labeled else 0

    @property
    def final_test_mae(self) -> float:
        return self.test_mae[-1] if self.test_mae else float("nan")

    @property
    def total_sim_calls(self) -> int:
        """Simulator invocations across the whole campaign."""
        return int(sum(self.sim_calls))

    def n_labeled_to_reach(self, target_mae: float) -> int | None:
        """Smallest label count whose test MAE met ``target_mae``."""
        for n, m in zip(self.n_labeled, self.test_mae):
            if m <= target_mae:
                return n
        return None

    def sims_to_reach(self, target_mae: float) -> int | None:
        """Cumulative simulator calls when ``target_mae`` was first met."""
        total = 0
        for calls, m in zip(self.sim_calls, self.test_mae):
            total += calls
            if m <= target_mae:
                return total
        return None


class ActiveLearner:
    """Pool-based uncertainty-sampling acquisition loop.

    Parameters
    ----------
    simulation:
        Ground-truth oracle (labels acquired by running it).
    surrogate_factory:
        Zero-argument callable returning a *fresh unfitted* Surrogate with
        ``dropout > 0`` (each retraining starts from scratch so the loop
        is not path-dependent on earlier optima).
    pool:
        Candidate inputs, shape (n_pool, D).
    x_test, y_test:
        Fixed evaluation set for the accuracy trace.
    batch_size:
        Points acquired per round.
    seed_size:
        Random points labeled before the first fit.
    """

    def __init__(
        self,
        simulation: Simulation,
        surrogate_factory: Callable[[], Surrogate],
        pool: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        *,
        batch_size: int = 10,
        seed_size: int = 10,
        rng: int | np.random.Generator | None = None,
    ):
        self.simulation = simulation
        self.surrogate_factory = surrogate_factory
        self.pool = np.atleast_2d(np.asarray(pool, dtype=float))
        self.x_test = np.atleast_2d(np.asarray(x_test, dtype=float))
        self.y_test = np.atleast_2d(np.asarray(y_test, dtype=float))
        if batch_size < 1 or seed_size < 4:
            raise ValueError("batch_size >= 1 and seed_size >= 4 required")
        if seed_size + batch_size > len(self.pool):
            raise ValueError("pool smaller than seed_size + one batch")
        self.batch_size = int(batch_size)
        self.seed_size = int(seed_size)
        self.rng = ensure_rng(rng)
        self.db = RunDatabase()
        self.surrogate: Surrogate | None = None

    def run(
        self,
        *,
        target_mae: float | None = None,
        max_rounds: int = 20,
        strategy: str = "uncertainty",
        diversity_factor: int = 3,
    ) -> ActiveLearningResult:
        """Execute the acquisition loop.

        ``strategy`` is ``"uncertainty"`` (scored by predictive std) or
        ``"random"`` (the baseline).  Stops when ``target_mae`` is reached
        on the test set or after ``max_rounds`` acquisitions.

        ``diversity_factor`` controls batch diversity for uncertainty
        sampling: each batch is drawn uniformly from the top
        ``diversity_factor * batch_size`` most-uncertain candidates
        (1 = strict top-k).  Strict top-k batches collapse onto one
        uncertain region and starve the rest of the space; quantile
        sampling is the standard remedy.
        """
        if strategy not in ("uncertainty", "random"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if diversity_factor < 1:
            raise ValueError(f"diversity_factor must be >= 1, got {diversity_factor}")
        sim_rng, = spawn_rngs(self.rng, 1)
        unlabeled = np.ones(len(self.pool), dtype=bool)
        result = ActiveLearningResult()

        seed_idx = self.rng.choice(len(self.pool), size=self.seed_size, replace=False)
        n_calls = self._label(seed_idx, unlabeled, sim_rng)
        if self._finish_round(result, n_calls, target_mae):
            return result

        for _ in range(max_rounds):
            candidates = np.flatnonzero(unlabeled)
            if candidates.size == 0:
                break
            k = min(self.batch_size, candidates.size)
            if strategy == "uncertainty":
                uq = self.surrogate.predict_with_uncertainty(self.pool[candidates])
                scale = self.surrogate.y_scaler.scale_std()
                scores = np.max(uq.std / scale, axis=1)
                top = candidates[np.argsort(scores)[-min(k * diversity_factor,
                                                         candidates.size):]]
                pick = self.rng.choice(top, size=k, replace=False)
            else:
                pick = self.rng.choice(candidates, size=k, replace=False)
            n_calls = self._label(pick, unlabeled, sim_rng)
            if self._finish_round(result, n_calls, target_mae):
                break
        return result

    # ------------------------------------------------------------------
    def _label(
        self, indices: np.ndarray, unlabeled: np.ndarray, sim_rng: np.random.Generator
    ) -> int:
        """Run the simulator on each index; returns the number of calls made."""
        for i in indices:
            try:
                self.simulation.run_recorded(self.pool[i], self.db, sim_rng)
            except SimulationError:
                pass  # failure recorded; point still consumed from the pool
            unlabeled[i] = False
        return len(indices)

    def _refit(self) -> None:
        X, Y = self.db.training_arrays()
        self.surrogate = self.surrogate_factory()
        self.surrogate.fit(X, Y)

    def _finish_round(
        self,
        result: ActiveLearningResult,
        n_calls: int,
        target_mae: float | None,
    ) -> bool:
        """Refit, record the round, and report whether the target was met.

        One code path for the seed round and every acquisition round, so
        the stopping rule and the bookkeeping cannot drift apart.
        """
        self._refit()
        pred = self.surrogate.predict(self.x_test)
        result.n_labeled.append(self.db.n_success)
        result.sim_calls.append(int(n_calls))
        result.test_mae.append(metrics.mae(pred, self.y_test))
        if target_mae is not None and result.final_test_mae <= target_mae:
            result.reached_target = True
            return True
        return False


def random_sampling_baseline(
    simulation: Simulation,
    surrogate_factory: Callable[[], Surrogate],
    pool: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    *,
    batch_size: int = 10,
    seed_size: int = 10,
    target_mae: float | None = None,
    max_rounds: int = 20,
    rng: int | np.random.Generator | None = None,
) -> ActiveLearningResult:
    """Run the identical loop with random acquisition (the AL baseline)."""
    learner = ActiveLearner(
        simulation,
        surrogate_factory,
        pool,
        x_test,
        y_test,
        batch_size=batch_size,
        seed_size=seed_size,
        rng=rng,
    )
    return learner.run(target_mae=target_mae, max_rounds=max_rounds, strategy="random")


def compare_campaigns(
    campaigns: dict[str, Callable[[], ActiveLearningResult]],
    *,
    target_mae: float,
) -> dict[str, dict]:
    """Run named acquisition campaigns and compare sims-to-target.

    The single harness the ISSUE asks for: the ANN+uncertainty loop, the
    GP adaptive-DoE loop, and the random baseline each reduce to a
    zero-argument thunk returning an :class:`ActiveLearningResult`, and
    every entry is scored in the same currency — simulator calls spent
    to first reach ``target_mae`` on the shared test set (``None`` when
    the campaign never got there).
    """
    summary: dict[str, dict] = {}
    for name, run in campaigns.items():
        result = run()
        summary[name] = {
            "reached_target": bool(result.reached_target),
            "sims_to_target": result.sims_to_reach(target_mae),
            "total_sim_calls": result.total_sim_calls,
            "final_test_mae": result.final_test_mae,
            "final_n_labeled": result.final_n_labeled,
            "rounds": len(result.test_mae),
        }
    return summary
