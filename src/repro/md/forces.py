"""Force kernels: vectorized O(N²) reference and cell-list version.

Per the optimization guides, the O(N²) kernel is the simple, legible
reference implementation; the :class:`CellList` kernel is the
algorithmic optimization (linear scaling for short-ranged cutoffs).  The
test suite cross-validates the two on random configurations, which is the
safety net recommended before trusting any optimized kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.md.potentials import PairPotential, Wall93
from repro.md.system import ParticleSystem

__all__ = ["PairTable", "pairwise_forces", "CellList", "cell_list_forces", "wall_forces"]


@dataclass
class PairTable:
    """The interaction set of a simulation.

    Attributes
    ----------
    pair_potentials:
        Applied to every particle pair (each with its own cutoff).
    wall:
        Optional 9-3 wall potential applied at z=0 and z=h.
    """

    pair_potentials: Sequence[PairPotential]
    wall: Wall93 | None = None

    @property
    def max_rcut(self) -> float:
        return max((p.rcut for p in self.pair_potentials), default=0.0)


def wall_forces(system: ParticleSystem, wall: Wall93) -> tuple[np.ndarray, float]:
    """Forces and energy from the two slit walls."""
    z = system.x[:, 2]
    h = system.box.h
    # Keep dz strictly positive; particles that have leaked past a wall
    # feel a strong restoring force from the clamped distance.
    dz_lo = np.maximum(z, 1e-6)
    dz_hi = np.maximum(h - z, 1e-6)
    f = np.zeros_like(system.x)
    f[:, 2] = wall.wall_force(dz_lo) - wall.wall_force(dz_hi)
    energy = float(np.sum(wall.wall_energy(dz_lo)) + np.sum(wall.wall_energy(dz_hi)))
    return f, energy


def pairwise_forces(
    system: ParticleSystem, table: PairTable
) -> tuple[np.ndarray, float]:
    """O(N²) vectorized forces and potential energy.

    Minimum-image convention in x/y; z is open (wall-bounded).  Forces
    obey Newton's third law by construction (antisymmetric displacement
    matrix), giving zero net force from the pair terms.
    """
    x = system.x
    n = system.n
    forces = np.zeros_like(x)
    energy = 0.0
    if n >= 2 and table.pair_potentials:
        dr = x[:, None, :] - x[None, :, :]
        dr = system.box.minimum_image(dr)
        r2 = np.sum(dr * dr, axis=-1)
        iu, ju = np.triu_indices(n, k=1)
        r2u = r2[iu, ju]
        dru = dr[iu, ju]
        qqu = system.q[iu] * system.q[ju]
        for pot in table.pair_potentials:
            mask = r2u < pot.rcut * pot.rcut
            if not np.any(mask):
                continue
            r2m = r2u[mask]
            qqm = qqu[mask] if pot.needs_charge else None
            energy += float(np.sum(pot.energy(r2m, qqm)))
            fr = pot.force_over_r(r2m, qqm)
            fvec = fr[:, None] * dru[mask]
            np.add.at(forces, iu[mask], fvec)
            np.add.at(forces, ju[mask], -fvec)
    if table.wall is not None:
        fw, ew = wall_forces(system, table.wall)
        forces += fw
        energy += ew
    return forces, energy


class CellList:
    """Linked-cell neighbor structure for the slit geometry.

    Cells are at least ``rcut`` wide in every direction; neighbor search
    visits the 27-cell stencil with periodic wrapping in x/y only.
    """

    def __init__(self, system: ParticleSystem, rcut: float):
        if rcut <= 0:
            raise ValueError(f"rcut must be > 0, got {rcut}")
        box = system.box
        self.ncx = max(1, int(box.lx // rcut))
        self.ncy = max(1, int(box.ly // rcut))
        self.ncz = max(1, int(box.h // rcut))
        self.rcut = rcut
        x = system.box.wrap(system.x)
        cx = np.clip((x[:, 0] / box.lx * self.ncx).astype(int), 0, self.ncx - 1)
        cy = np.clip((x[:, 1] / box.ly * self.ncy).astype(int), 0, self.ncy - 1)
        cz = np.clip((x[:, 2] / box.h * self.ncz).astype(int), 0, self.ncz - 1)
        flat = (cx * self.ncy + cy) * self.ncz + cz
        order = np.argsort(flat, kind="stable")
        self._sorted = order
        self._flat_sorted = flat[order]
        self._starts = np.searchsorted(
            self._flat_sorted, np.arange(self.ncx * self.ncy * self.ncz + 1)
        )

    def members(self, cx: int, cy: int, cz: int) -> np.ndarray:
        flat = (cx * self.ncy + cy) * self.ncz + cz
        return self._sorted[self._starts[flat] : self._starts[flat + 1]]

    def candidate_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All (i, j) candidate pairs with i != j, each pair once."""
        pairs_i: list[np.ndarray] = []
        pairs_j: list[np.ndarray] = []
        periodic_x = self.ncx >= 3
        periodic_y = self.ncy >= 3
        for cx in range(self.ncx):
            for cy in range(self.ncy):
                for cz in range(self.ncz):
                    home = self.members(cx, cy, cz)
                    if home.size == 0:
                        continue
                    # pairs within the home cell
                    if home.size >= 2:
                        ii, jj = np.triu_indices(home.size, k=1)
                        pairs_i.append(home[ii])
                        pairs_j.append(home[jj])
                    # half-stencil of neighbor cells to count each pair once
                    for dx, dy, dz in _HALF_STENCIL:
                        nx, ny, nz = cx + dx, cy + dy, cz + dz
                        if periodic_x:
                            nx %= self.ncx
                        elif not 0 <= nx < self.ncx:
                            continue
                        if periodic_y:
                            ny %= self.ncy
                        elif not 0 <= ny < self.ncy:
                            continue
                        if not 0 <= nz < self.ncz:
                            continue
                        other = self.members(nx, ny, nz)
                        if other.size == 0:
                            continue
                        gi, gj = np.meshgrid(home, other, indexing="ij")
                        pairs_i.append(gi.ravel())
                        pairs_j.append(gj.ravel())
        if not pairs_i:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        i = np.concatenate(pairs_i)
        j = np.concatenate(pairs_j)
        # With fewer than 3 cells along a periodic axis the half-stencil
        # can produce duplicate pairs through wrapping; deduplicate.
        if self.ncx < 3 or self.ncy < 3 or self.ncz < 3:
            lo = np.minimum(i, j)
            hi = np.maximum(i, j)
            keys = np.unique(lo.astype(np.int64) << 32 | hi.astype(np.int64))
            lo = (keys >> 32).astype(int)
            hi = (keys & 0xFFFFFFFF).astype(int)
            keep = lo != hi
            return lo[keep], hi[keep]
        return i, j


# 13 of the 26 neighbor offsets: lexicographically positive half.
_HALF_STENCIL = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
]


def cell_list_forces(
    system: ParticleSystem, table: PairTable
) -> tuple[np.ndarray, float]:
    """Cell-list forces: identical physics to :func:`pairwise_forces`,
    O(N) for short-ranged cutoffs."""
    forces = np.zeros_like(system.x)
    energy = 0.0
    rcut = table.max_rcut
    if system.n >= 2 and table.pair_potentials and rcut > 0:
        cl = CellList(system, rcut)
        i, j = cl.candidate_pairs()
        if i.size:
            dr = system.box.minimum_image(system.x[i] - system.x[j])
            r2 = np.sum(dr * dr, axis=-1)
            qq = system.q[i] * system.q[j]
            for pot in table.pair_potentials:
                mask = r2 < pot.rcut * pot.rcut
                if not np.any(mask):
                    continue
                r2m = r2[mask]
                qqm = qq[mask] if pot.needs_charge else None
                energy += float(np.sum(pot.energy(r2m, qqm)))
                fr = pot.force_over_r(r2m, qqm)
                fvec = fr[:, None] * dr[mask]
                np.add.at(forces, i[mask], fvec)
                np.add.at(forces, j[mask], -fvec)
    if table.wall is not None:
        fw, ew = wall_forces(system, table.wall)
        forces += fw
        energy += ew
    return forces, energy
