"""Force kernels: vectorized O(N²) reference and cell-list version.

Per the optimization guides, the O(N²) kernel is the simple, legible
reference implementation; the :class:`CellList` kernel is the
algorithmic optimization (linear scaling for short-ranged cutoffs).  The
test suite cross-validates the two on random configurations, which is the
safety net recommended before trusting any optimized kernel.

All three force paths (reference, cell-list, and the persistent Verlet
engine in :mod:`repro.md.neighbors`) share one inner kernel,
:func:`accumulate_pair_forces`: a single displacement/distance
computation feeds every potential in the :class:`PairTable`, and
accumulation goes through the bincount-based
:func:`repro.util.scatter.scatter_add` instead of ``np.add.at``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.md.potentials import PairPotential, Wall93
from repro.md.system import ParticleSystem
from repro.util.scatter import scatter_add
from repro.util.validation import check_finite

__all__ = [
    "PairTable",
    "PairScratch",
    "pairwise_forces",
    "CellList",
    "cell_list_forces",
    "wall_forces",
    "accumulate_pair_forces",
    "pair_displacements",
]


class PairScratch:
    """Grow-only per-pair work buffers for the reused force path.

    One instance lives on a :class:`~repro.md.neighbors.ForceEngine` and
    is threaded through :func:`pair_displacements` /
    :func:`accumulate_pair_forces`, so the per-call cost of a force
    evaluation stops including six O(n_pairs) allocations.  Buffers only
    ever grow (to the largest pair count seen); all kernels slice
    ``[:m]`` views, which stay C-contiguous.  The profile view
    (``python -m repro.obs profile``) attributes ~all md.reuse self-time
    to this kernel, which is why it is the one place buffers are managed
    manually.
    """

    __slots__ = ("capacity", "xi", "dr", "r2", "fr", "fvec", "col", "qq")

    def __init__(self) -> None:
        self.capacity = 0

    def ensure(self, m: int) -> None:
        """Guarantee capacity for ``m`` pairs (reallocating only to grow)."""
        if m <= self.capacity:
            return
        self.capacity = m
        self.xi = np.empty((m, 3))
        self.dr = np.empty((m, 3))
        self.r2 = np.empty(m)
        self.fr = np.empty(m)
        self.fvec = np.empty((m, 3))
        self.col = np.empty(m)
        self.qq = np.empty(m)


def pair_displacements(
    system: ParticleSystem,
    i: np.ndarray,
    j: np.ndarray,
    scratch: PairScratch,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimum-image displacements and squared distances, allocation-free.

    Returns ``(dr, r2)`` views into ``scratch`` sized to ``len(i)``.
    Bitwise identical to
    ``dr = box.minimum_image(x[i] - x[j]); r2 = einsum("ij,ij->i", dr, dr)``:
    the per-axis wrap applies the same multiply/round/subtract sequence
    (float multiplication is commutative bitwise), only the destination
    buffers differ.
    """
    m = i.size
    scratch.ensure(m)
    xi = scratch.xi[:m]
    dr = scratch.dr[:m]
    r2 = scratch.r2[:m]
    col = scratch.col[:m]
    np.take(system.x, i, axis=0, out=dr)
    np.take(system.x, j, axis=0, out=xi)
    np.subtract(dr, xi, out=dr)
    box = system.box
    for ax, length in ((0, box.lx), (1, box.ly)):
        axis = dr[:, ax]
        np.divide(axis, length, out=col)
        np.round(col, out=col)
        np.multiply(col, length, out=col)
        axis -= col
    np.einsum("ij,ij->i", dr, dr, out=r2)
    return dr, r2


@dataclass
class PairTable:
    """The interaction set of a simulation.

    Attributes
    ----------
    pair_potentials:
        Applied to every particle pair (each with its own cutoff).
    wall:
        Optional 9-3 wall potential applied at z=0 and z=h.
    """

    pair_potentials: Sequence[PairPotential]
    wall: Wall93 | None = None

    @property
    def max_rcut(self) -> float:
        return max((p.rcut for p in self.pair_potentials), default=0.0)


def wall_forces(system: ParticleSystem, wall: Wall93) -> tuple[np.ndarray, float]:
    """Forces and energy from the two slit walls."""
    z = system.x[:, 2]
    h = system.box.h
    # Keep dz strictly positive; particles that have leaked past a wall
    # feel a strong restoring force from the clamped distance.
    dz_lo = np.maximum(z, 1e-6)
    dz_hi = np.maximum(h - z, 1e-6)
    f = np.zeros_like(system.x)
    f[:, 2] = wall.wall_force(dz_lo) - wall.wall_force(dz_hi)
    energy = float(np.sum(wall.wall_energy(dz_lo)) + np.sum(wall.wall_energy(dz_hi)))
    return f, energy


def accumulate_pair_forces(
    system: ParticleSystem,
    table: PairTable,
    i: np.ndarray,
    j: np.ndarray,
    forces: np.ndarray,
    *,
    fr_scratch: np.ndarray | None = None,
    scratch: PairScratch | None = None,
) -> float:
    """Evaluate every pair potential over the pairs ``(i, j)``.

    The shared inner kernel of all three force paths (reference,
    cell-list, Verlet engine): one displacement/distance computation
    feeds every potential in the table, per-pair ``-(dU/dr)/r`` factors
    are summed across potentials, and the resulting pair-force vectors
    are scattered into ``forces`` (modified in place) with the bincount
    helper — Newton's third law by construction.  Returns the potential
    energy of the evaluated pairs.

    ``fr_scratch``, when given, must be a float buffer of length
    ``len(i)``; it is zeroed and reused, letting a persistent engine
    avoid a per-step allocation.

    ``scratch`` selects the fully reused path: every O(n_pairs)
    intermediate (gathers, displacements, distances, force factors,
    force vectors) lives in the :class:`PairScratch` buffers, the
    combined :meth:`~repro.md.potentials.PairPotential.energy_and_force_over_r`
    kernel shares subexpressions between energy and force, and the
    Newton's-third-law scatter subtracts in place.  Results are bitwise
    identical to the allocating path; ``fr_scratch`` is ignored.
    """
    if i.size == 0:
        return 0.0
    if scratch is not None:
        return _accumulate_reused(system, table, i, j, forces, scratch)
    dr = system.box.minimum_image(system.x[i] - system.x[j])
    r2 = np.einsum("ij,ij->i", dr, dr)
    qq = system.q[i] * system.q[j]
    if fr_scratch is None:
        fr = np.zeros(i.size)
    else:
        fr = fr_scratch
        fr[:] = 0.0
    energy = 0.0
    for pot in table.pair_potentials:
        mask = r2 < pot.rcut * pot.rcut
        if not np.any(mask):
            continue
        r2m = r2[mask]
        qqm = qq[mask] if pot.needs_charge else None
        energy += float(np.sum(pot.energy(r2m, qqm)))
        fr[mask] += pot.force_over_r(r2m, qqm)
    fvec = fr[:, None] * dr
    scatter_add(forces, i, fvec)
    scatter_add(forces, j, -fvec)
    return energy


def _accumulate_reused(
    system: ParticleSystem,
    table: PairTable,
    i: np.ndarray,
    j: np.ndarray,
    forces: np.ndarray,
    scratch: PairScratch,
) -> float:
    """Scratch-buffer variant of :func:`accumulate_pair_forces`.

    Bitwise-identity notes (each step mirrors the allocating path):
    displacements via :func:`pair_displacements`; ``qq`` gathered only
    when some potential needs it (its value is unchanged — the
    allocating path computes it unconditionally but charge-free tables
    never read it); per-potential masked evaluation and the
    ``fr[mask] +=`` accumulation are verbatim; ``fvec`` is the same
    commutative elementwise product; and the subtracting scatter equals
    adding ``-fvec`` because IEEE negation is exact.
    """
    m = i.size
    dr, r2 = pair_displacements(system, i, j, scratch)
    fr = scratch.fr[:m]
    fr[:] = 0.0
    qq = None
    if any(pot.needs_charge for pot in table.pair_potentials):
        qq = scratch.qq[:m]
        col = scratch.col[:m]  # free after pair_displacements
        np.take(system.q, i, out=qq)
        np.take(system.q, j, out=col)
        np.multiply(qq, col, out=qq)
    energy = 0.0
    for pot in table.pair_potentials:
        mask = r2 < pot.rcut * pot.rcut
        if not np.any(mask):
            continue
        r2m = r2[mask]
        qqm = qq[mask] if pot.needs_charge else None
        e, f = pot.energy_and_force_over_r(r2m, qqm)
        energy += float(np.sum(e))
        fr[mask] += f
    fvec = scratch.fvec[:m]
    np.multiply(dr, fr[:, None], out=fvec)
    # Inlined scatter_add(forces, i, fvec) / scatter_add(..., subtract=True):
    # same bincount accumulation, minus the per-call index validation —
    # (i, j) come from the NeighborList, already validated at build time.
    n = forces.shape[0]
    for c in range(3):
        forces[:, c] += np.bincount(i, weights=fvec[:, c], minlength=n)
        forces[:, c] -= np.bincount(j, weights=fvec[:, c], minlength=n)
    return energy


def pairwise_forces(
    system: ParticleSystem, table: PairTable
) -> tuple[np.ndarray, float]:
    """O(N²) vectorized forces and potential energy.

    Minimum-image convention in x/y; z is open (wall-bounded).  Forces
    obey Newton's third law by construction (antisymmetric displacement
    matrix), giving zero net force from the pair terms.
    """
    n = system.n
    forces = np.zeros_like(system.x)
    energy = 0.0
    if n >= 2 and table.pair_potentials:
        iu, ju = np.triu_indices(n, k=1)
        energy += accumulate_pair_forces(system, table, iu, ju, forces)
    if table.wall is not None:
        fw, ew = wall_forces(system, table.wall)
        forces += fw
        energy += ew
    return forces, energy


class CellList:
    """Linked-cell neighbor structure for the slit geometry.

    Cells are at least ``rcut`` wide in every direction; neighbor search
    visits the 27-cell stencil with periodic wrapping in x/y only.
    Candidate-pair generation is fully vectorized: particles are bucketed
    into a padded ``(n_cells, max_occupancy)`` slot matrix once, and the
    13-offset half stencil is broadcast over every cell at the same time
    — no per-cell Python loops.
    """

    def __init__(self, system: ParticleSystem, rcut: float):
        if rcut <= 0:
            raise ValueError(f"rcut must be > 0, got {rcut}")
        # Non-finite coordinates would silently poison the binning below
        # (NaN compares false everywhere, so clip/argsort shuffle the
        # particle into an arbitrary cell); reject them loudly instead.
        check_finite("positions", system.x)
        box = system.box
        self.ncx = max(1, int(box.lx // rcut))
        self.ncy = max(1, int(box.ly // rcut))
        self.ncz = max(1, int(box.h // rcut))
        self.rcut = rcut
        x = system.box.wrap(system.x)
        cx = np.clip((x[:, 0] / box.lx * self.ncx).astype(int), 0, self.ncx - 1)
        cy = np.clip((x[:, 1] / box.ly * self.ncy).astype(int), 0, self.ncy - 1)
        cz = np.clip((x[:, 2] / box.h * self.ncz).astype(int), 0, self.ncz - 1)
        flat = (cx * self.ncy + cy) * self.ncz + cz
        order = np.argsort(flat, kind="stable")
        self._sorted = order
        self._flat_sorted = flat[order]
        self._starts = np.searchsorted(
            self._flat_sorted, np.arange(self.ncx * self.ncy * self.ncz + 1)
        )

    def members(self, cx: int, cy: int, cz: int) -> np.ndarray:
        flat = (cx * self.ncy + cy) * self.ncz + cz
        return self._sorted[self._starts[flat] : self._starts[flat + 1]]

    def candidate_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All (i, j) candidate pairs with i != j, each pair once.

        Vectorized over cells: intra-cell pairs come from one padded
        triangular gather; cross-cell pairs from broadcasting the
        13-offset half stencil (each unordered cell pair visited from
        exactly one side) against the slot matrix of every cell at once.
        """
        counts = np.diff(self._starts)
        n_cells = counts.size
        if n_cells == 0 or counts.max() == 0:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        occ = int(counts.max())
        # Padded member matrix: row c lists the particles of cell c in
        # sorted order; `filled` marks real slots vs padding.  Boolean
        # assignment fills row-major, matching the cell-sorted order.
        slot = np.arange(occ)
        filled = slot[None, :] < counts[:, None]            # (n_cells, occ)
        members = np.zeros((n_cells, occ), dtype=np.int64)
        members[filled] = self._sorted

        # Intra-cell pairs: the strict upper triangle of every cell's
        # slot matrix, padding masked out.
        ii, jj = np.triu_indices(occ, k=1)
        intra_ok = filled[:, ii] & filled[:, jj]
        pairs_i = [members[:, ii][intra_ok]]
        pairs_j = [members[:, jj][intra_ok]]

        # Cross-cell pairs: broadcast all 13 half-stencil offsets over
        # all cells simultaneously.
        cells = np.arange(n_cells)
        cz = cells % self.ncz
        cy = (cells // self.ncz) % self.ncy
        cx = cells // (self.ncz * self.ncy)
        off = _HALF_STENCIL_ARRAY                           # (13, 3)
        nx = cx[None, :] + off[:, 0:1]                      # (13, n_cells)
        ny = cy[None, :] + off[:, 1:2]
        nz = cz[None, :] + off[:, 2:3]
        valid = (nz >= 0) & (nz < self.ncz)                 # z is never periodic
        if self.ncx >= 3:
            nx %= self.ncx
        else:
            valid &= (nx >= 0) & (nx < self.ncx)
        if self.ncy >= 3:
            ny %= self.ncy
        else:
            valid &= (ny >= 0) & (ny < self.ncy)
        nflat = np.where(valid, (nx * self.ncy + ny) * self.ncz + nz, 0)
        nb_members = members[nflat]                         # (13, n_cells, occ)
        nb_filled = filled[nflat] & valid[:, :, None]
        # Every home slot against every neighbor-cell slot.
        cross_ok = filled[None, :, :, None] & nb_filled[:, :, None, :]
        shape = cross_ok.shape                              # (13, n_cells, occ, occ)
        pairs_i.append(np.broadcast_to(members[None, :, :, None], shape)[cross_ok])
        pairs_j.append(np.broadcast_to(nb_members[:, :, None, :], shape)[cross_ok])

        i = np.concatenate(pairs_i)
        j = np.concatenate(pairs_j)
        # With fewer than 3 cells along a periodic axis the half-stencil
        # can produce duplicate pairs through wrapping; deduplicate.
        if self.ncx < 3 or self.ncy < 3 or self.ncz < 3:
            lo = np.minimum(i, j)
            hi = np.maximum(i, j)
            keys = np.unique(lo.astype(np.int64) << 32 | hi.astype(np.int64))
            lo = (keys >> 32).astype(int)
            hi = (keys & 0xFFFFFFFF).astype(int)
            keep = lo != hi
            return lo[keep], hi[keep]
        return i, j


# 13 of the 26 neighbor offsets: lexicographically positive half.
_HALF_STENCIL = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
]
_HALF_STENCIL_ARRAY = np.array(_HALF_STENCIL, dtype=np.int64)


def cell_list_forces(
    system: ParticleSystem, table: PairTable
) -> tuple[np.ndarray, float]:
    """Cell-list forces: identical physics to :func:`pairwise_forces`,
    O(N) for short-ranged cutoffs."""
    forces = np.zeros_like(system.x)
    energy = 0.0
    rcut = table.max_rcut
    if system.n >= 2 and table.pair_potentials and rcut > 0:
        cl = CellList(system, rcut)
        i, j = cl.candidate_pairs()
        energy += accumulate_pair_forces(system, table, i, j, forces)
    if table.wall is not None:
        fw, ew = wall_forces(system, table.wall)
        forces += fw
        energy += ew
    return forces, energy
