"""Molecular-dynamics / nanoscale-simulation substrate (§II-C, §III-D).

A from-scratch particle-simulation engine standing in for the LAMMPS-class
codes behind the paper's nanoconfinement exemplar [26] and autotuning
exemplar [9]:

* :mod:`repro.md.system` — particle state in a slit-confined periodic box,
* :mod:`repro.md.potentials` — Lennard-Jones, WCA, screened-Coulomb
  (Yukawa), 9-3 walls, and a Stillinger–Weber-like many-body reference,
* :mod:`repro.md.forces` — vectorized O(N²) and cell-list pair kernels,
* :mod:`repro.md.neighbors` — persistent Verlet-list
  :class:`~repro.md.neighbors.ForceEngine` (the production force path),
* :mod:`repro.md.bench` — force-kernel benchmark CLI
  (``python -m repro.md.bench``) tracking the perf trajectory,
* :mod:`repro.md.integrators` — velocity-Verlet and Langevin (BAOAB),
  with instability detection,
* :mod:`repro.md.observables` — z-density profiles (contact / peak /
  mid-plane densities), radial distribution functions,
* :mod:`repro.md.analysis` — autocorrelation times, block averaging and
  statistical inefficiency (the dc-blocking discussion of §III-D),
* :mod:`repro.md.mc` — Metropolis Monte-Carlo sampling (statistical-physics
  route; research issue 9 of §III-E),
* :mod:`repro.md.bp` — Behler–Parrinello symmetry functions and an
  NN potential trained against the many-body reference (§II-C2),
* :mod:`repro.md.nanoconfinement` — the 5-feature ionic-density
  :class:`~repro.core.simulation.Simulation` of the paper's central
  exemplar.
"""

from repro.md.system import ParticleSystem, SlitBox
from repro.md.potentials import (
    PairPotential,
    LennardJones,
    WCA,
    Yukawa,
    SoftSphere,
    Wall93,
    StillingerWeberLike,
)
from repro.md.forces import pairwise_forces, PairTable, CellList, cell_list_forces
from repro.md.neighbors import NeighborList, ForceEngine
from repro.md.integrators import VelocityVerlet, Langevin, IntegrationDiverged
from repro.md.observables import DensityProfile, density_features, radial_distribution
from repro.md.analysis import (
    autocorrelation,
    integrated_autocorrelation_time,
    block_average,
    statistical_inefficiency,
)
from repro.md.mc import MetropolisMC
from repro.md.transport import (
    TrajectoryRecorder,
    mean_squared_displacement,
    diffusion_coefficient,
)
from repro.md.tightbinding import TightBindingModel
from repro.md.structure import StructureClassifier, fcc_lattice
from repro.md.bp import SymmetryFunctions, BPPotential, train_bp_potential
from repro.md.nanoconfinement import NanoconfinementSimulation, NANO_INPUTS, NANO_OUTPUTS

__all__ = [
    "ParticleSystem",
    "SlitBox",
    "PairPotential",
    "LennardJones",
    "WCA",
    "Yukawa",
    "SoftSphere",
    "Wall93",
    "StillingerWeberLike",
    "pairwise_forces",
    "PairTable",
    "CellList",
    "cell_list_forces",
    "NeighborList",
    "ForceEngine",
    "VelocityVerlet",
    "Langevin",
    "IntegrationDiverged",
    "DensityProfile",
    "density_features",
    "radial_distribution",
    "autocorrelation",
    "integrated_autocorrelation_time",
    "block_average",
    "statistical_inefficiency",
    "MetropolisMC",
    "TrajectoryRecorder",
    "mean_squared_displacement",
    "diffusion_coefficient",
    "TightBindingModel",
    "StructureClassifier",
    "fcc_lattice",
    "SymmetryFunctions",
    "BPPotential",
    "train_bp_potential",
    "NanoconfinementSimulation",
    "NANO_INPUTS",
    "NANO_OUTPUTS",
]
