"""Observables: z-density profiles and radial distribution functions.

The nanoconfinement exemplar's outputs (§II-C1) are *features of the
ionic density profile*: the contact density (at the walls), the mid-plane
(center) density, and the peak density — "average values of contact
density or center density directly relate to important experimentally
measured quantities such as the osmotic pressure".
"""

from __future__ import annotations

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.validation import check_positive

__all__ = ["DensityProfile", "density_features", "radial_distribution"]


class DensityProfile:
    """Accumulates the z-resolved number density of a species.

    Parameters
    ----------
    h:
        Slit height; bins span [0, h].
    n_bins:
        Histogram resolution.
    lateral_area:
        Box cross-section used to normalize counts to number densities.
    species:
        Which species label to histogram (None = all particles).
    """

    def __init__(
        self,
        h: float,
        n_bins: int,
        lateral_area: float,
        species: int | None = None,
    ):
        check_positive("h", h)
        check_positive("lateral_area", lateral_area)
        if n_bins < 4:
            raise ValueError(f"n_bins must be >= 4, got {n_bins}")
        self.h = float(h)
        self.n_bins = int(n_bins)
        self.lateral_area = float(lateral_area)
        self.species = species
        self.edges = np.linspace(0.0, h, n_bins + 1)
        self.counts = np.zeros(n_bins)
        self.n_samples = 0

    def sample(self, system: ParticleSystem) -> None:
        """Accumulate one configuration."""
        z = system.x[:, 2]
        if self.species is not None:
            z = z[system.species == self.species]
        hist, _ = np.histogram(z, bins=self.edges)
        self.counts += hist
        self.n_samples += 1

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def density(self) -> np.ndarray:
        """Mean number density per bin (particles / volume)."""
        if self.n_samples == 0:
            raise ValueError("no samples accumulated")
        bin_volume = self.lateral_area * (self.h / self.n_bins)
        return self.counts / (self.n_samples * bin_volume)

    def reset(self) -> None:
        self.counts.fill(0.0)
        self.n_samples = 0


def density_features(profile_z: np.ndarray, density: np.ndarray) -> dict[str, float]:
    """Extract the exemplar's three output features from a profile.

    * ``contact`` — density at the wall, averaged over the first and last
      occupied bins on either side (first bin whose density exceeds 1% of
      the profile max; purely-excluded bins right at the wall are skipped),
    * ``peak`` — the global maximum,
    * ``center`` — density at the mid-plane (central bin average).
    """
    z = np.asarray(profile_z, dtype=float)
    rho = np.asarray(density, dtype=float)
    if z.shape != rho.shape or z.ndim != 1 or z.size < 4:
        raise ValueError("profile_z and density must be equal-length 1-D, size >= 4")
    rho_max = float(np.max(rho))
    if rho_max <= 0:
        return {"contact": 0.0, "peak": 0.0, "center": 0.0}
    threshold = 0.01 * rho_max
    occupied = np.flatnonzero(rho > threshold)
    lo, hi = occupied[0], occupied[-1]
    contact = 0.5 * (rho[lo] + rho[hi])
    mid = len(rho) // 2
    center = float(np.mean(rho[max(0, mid - 1) : mid + 1]))
    return {"contact": float(contact), "peak": rho_max, "center": center}


def radial_distribution(
    system: ParticleSystem,
    r_max: float,
    n_bins: int = 100,
    species_pair: tuple[int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """In-plane pair correlation g(r) (xy minimum image, z included raw).

    Normalization uses the full slit volume; adequate for the
    structure-tracking use of §II-C1 (peak positions of pair correlation
    functions characterizing assembly).

    Returns (bin centers, g).
    """
    check_positive("r_max", r_max)
    if n_bins < 4:
        raise ValueError(f"n_bins must be >= 4, got {n_bins}")
    x = system.x
    if species_pair is not None:
        sa, sb = species_pair
        xa = x[system.species == sa]
        xb = x[system.species == sb]
        same = sa == sb
    else:
        xa = xb = x
        same = True
    if len(xa) == 0 or len(xb) == 0:
        raise ValueError("empty species selection")
    dr = xa[:, None, :] - xb[None, :, :]
    dr = system.box.minimum_image(dr)
    r = np.sqrt(np.sum(dr * dr, axis=-1)).ravel()
    if same:
        r = r[r > 1e-12]  # drop self-pairs
    r = r[r < r_max]
    edges = np.linspace(0.0, r_max, n_bins + 1)
    hist, _ = np.histogram(r, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell = 4.0 * np.pi * centers**2 * (r_max / n_bins)
    rho_pairs = len(xa) * len(xb) / system.box.volume
    g = hist / (shell * rho_pairs)
    return centers, g
