"""Time-series analysis: autocorrelation and block averaging.

§III-D: "you want to block at a timescale that is at least greater than
the autocorrelation time dc ... Blocking every timestep will not improve
the training as typically it won't produce a statistically independent
data point."  These routines measure dc, the statistical inefficiency,
and the effective number of independent samples — the quantities that
set how often a simulation should emit training data (experiment E12).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation",
    "integrated_autocorrelation_time",
    "block_average",
    "statistical_inefficiency",
    "effective_samples",
]


def autocorrelation(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalized autocorrelation function C(t)/C(0) via FFT.

    Returns lags 0..max_lag (default n//2).  Constant series return all
    ones (perfectly correlated) by convention.
    """
    x = np.asarray(series, dtype=float).ravel()
    n = x.size
    if n < 2:
        raise ValueError(f"series must have >= 2 points, got {n}")
    if max_lag is None:
        max_lag = n // 2
    max_lag = int(min(max_lag, n - 1))
    x = x - x.mean()
    var = float(np.dot(x, x) / n)
    if var == 0.0:
        return np.ones(max_lag + 1)
    nfft = 1 << (2 * n - 1).bit_length()
    fx = np.fft.rfft(x, nfft)
    acov = np.fft.irfft(fx * np.conj(fx), nfft)[: max_lag + 1]
    acov /= np.arange(n, n - max_lag - 1, -1)  # unbiased normalization
    return acov / acov[0]


def integrated_autocorrelation_time(
    series: np.ndarray, *, c_window: float = 6.0
) -> float:
    """Integrated autocorrelation time tau with Sokal's self-consistent
    windowing: sum C(t) up to the first lag exceeding ``c_window * tau``.

    tau = 0.5 for white noise; larger values mean fewer independent
    samples per step.
    """
    acf = autocorrelation(series)
    tau = 0.5
    for t in range(1, len(acf)):
        tau += float(acf[t])
        if t >= c_window * tau:
            break
    return max(tau, 0.5)


def block_average(series: np.ndarray, block_size: int) -> tuple[float, float]:
    """Mean and standard error from non-overlapping blocks.

    The standard error is computed across block means; it converges to
    the true error of the mean once ``block_size`` exceeds the
    correlation time — the classic Flyvbjerg–Petersen picture.
    """
    x = np.asarray(series, dtype=float).ravel()
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n_blocks = x.size // block_size
    if n_blocks < 2:
        raise ValueError(
            f"need >= 2 blocks; series of {x.size} with block_size {block_size} "
            f"gives {n_blocks}"
        )
    blocks = x[: n_blocks * block_size].reshape(n_blocks, block_size).mean(axis=1)
    mean = float(blocks.mean())
    sem = float(blocks.std(ddof=1) / np.sqrt(n_blocks))
    return mean, sem


def statistical_inefficiency(series: np.ndarray) -> float:
    """g = 1 + 2 tau_int-style factor: the subsampling stride that yields
    approximately independent samples.  g = 1 for white noise."""
    tau = integrated_autocorrelation_time(series)
    return max(1.0, 2.0 * tau)


def effective_samples(series: np.ndarray) -> float:
    """Number of effectively independent samples, n / g."""
    x = np.asarray(series, dtype=float).ravel()
    return x.size / statistical_inefficiency(x)
