"""MLafterHPC: structure identification in simulation output (§I).

The taxonomy's MLafterHPC category is "ML analyzing results of HPC as in
trajectory analysis and structure identification in biomolecular
simulations".  This module implements the standard recipe for particle
systems:

1. describe each particle's local environment with the same
   rotation/translation/permutation-invariant symmetry functions the NN
   potentials use (:class:`repro.md.bp.SymmetryFunctions`),
2. cluster the descriptors with K-means (unsupervised structure
   classes), or score them against labeled reference environments
   (supervised identification),
3. label every particle in every frame — crystalline vs disordered,
   surface vs bulk, etc.

The classifier is exercised in tests against configurations with known
ground truth (FCC crystal vs dilute gas).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.bp import SymmetryFunctions
from repro.util.rng import ensure_rng

__all__ = ["StructureClassifier", "fcc_lattice", "StructureLabels"]


def fcc_lattice(n_cells: int, lattice_constant: float = 1.5) -> np.ndarray:
    """Open FCC crystallite of ``4 * n_cells^3`` atoms."""
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    if lattice_constant <= 0:
        raise ValueError("lattice_constant must be > 0")
    base = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    cells = np.array(
        [
            [i, j, k]
            for i in range(n_cells)
            for j in range(n_cells)
            for k in range(n_cells)
        ],
        dtype=float,
    )
    pts = (cells[:, None, :] + base[None, :, :]).reshape(-1, 3)
    return pts * lattice_constant


@dataclass
class StructureLabels:
    """Per-particle structure assignments for one or more frames."""

    frame_labels: list[np.ndarray]  # one integer-label array per frame
    centroids: np.ndarray           # (k, n_features) descriptor-space centers

    @property
    def n_classes(self) -> int:
        return len(self.centroids)

    @property
    def n_frames(self) -> int:
        return len(self.frame_labels)

    @property
    def labels(self) -> np.ndarray:
        """(n_frames, n_particles) matrix; frames must be equal-sized."""
        sizes = {len(l) for l in self.frame_labels}
        if len(sizes) != 1:
            raise ValueError("frames have different particle counts; use frame_labels")
        return np.stack(self.frame_labels)

    def class_fractions(self, frame: int = -1) -> np.ndarray:
        """Fraction of particles in each class for one frame."""
        counts = np.bincount(self.frame_labels[frame], minlength=self.n_classes)
        total = counts.sum()
        if total == 0:
            return np.zeros(self.n_classes)
        return counts / total


class StructureClassifier:
    """Unsupervised local-structure identification.

    Parameters
    ----------
    symmetry:
        Descriptor generator (defaults match the BP-potential setup).
    n_classes:
        Number of structure classes (K in K-means).
    rng:
        Seed/generator for centroid initialization.
    """

    def __init__(
        self,
        symmetry: SymmetryFunctions | None = None,
        n_classes: int = 2,
        *,
        n_iters: int = 50,
        rng: int | np.random.Generator | None = None,
    ):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if n_iters < 1:
            raise ValueError("n_iters must be >= 1")
        self.symmetry = symmetry if symmetry is not None else SymmetryFunctions()
        self.n_classes = int(n_classes)
        self.n_iters = int(n_iters)
        self.rng = ensure_rng(rng)
        self.centroids: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _describe_frames(self, frames: list[np.ndarray]) -> list[np.ndarray]:
        return [self.symmetry.describe(np.asarray(f, dtype=float)) for f in frames]

    def fit(self, frames: list[np.ndarray]) -> StructureLabels:
        """Cluster environments across all frames; returns per-frame labels.

        Frames may have different particle counts.
        """
        if not frames:
            raise ValueError("need at least one frame")
        descs = self._describe_frames(frames)
        stacked = np.concatenate(descs)
        if len(stacked) < self.n_classes:
            raise ValueError("fewer environments than classes")
        self._mean = stacked.mean(axis=0)
        scale = stacked.std(axis=0)
        self._scale = np.where(scale > 0, scale, 1.0)
        z = (stacked - self._mean) / self._scale

        # Lloyd's algorithm with k-means++-style farthest-point seeding.
        centroids = self._seed(z)
        for _ in range(self.n_iters):
            d2 = np.sum((z[:, None, :] - centroids[None]) ** 2, axis=-1)
            assign = np.argmin(d2, axis=1)
            new = centroids.copy()
            for j in range(self.n_classes):
                members = z[assign == j]
                if len(members):
                    new[j] = members.mean(axis=0)
            if np.allclose(new, centroids):
                break
            centroids = new
        self.centroids = centroids

        frame_labels: list[np.ndarray] = []
        offset = 0
        for d in descs:
            frame_labels.append(assign[offset : offset + len(d)].copy())
            offset += len(d)
        return StructureLabels(frame_labels=frame_labels, centroids=centroids)

    def _seed(self, z: np.ndarray) -> np.ndarray:
        first = z[self.rng.integers(0, len(z))]
        centroids = [first]
        for _ in range(self.n_classes - 1):
            d2 = np.min(
                np.stack([np.sum((z - c) ** 2, axis=1) for c in centroids]), axis=0
            )
            centroids.append(z[int(np.argmax(d2))])
        return np.stack(centroids)

    def classify(self, positions: np.ndarray) -> np.ndarray:
        """Per-particle class labels for one configuration."""
        if self.centroids is None:
            raise RuntimeError("StructureClassifier used before fit()")
        desc = self.symmetry.describe(np.asarray(positions, dtype=float))
        z = (desc - self._mean) / self._scale
        d2 = np.sum((z[:, None, :] - self.centroids[None]) ** 2, axis=-1)
        return np.argmin(d2, axis=1)
