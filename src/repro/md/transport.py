"""Transport observables: mean-squared displacement and diffusion.

The autotuning exemplar [9] targets "efficient dynamics of ions near
polarizable nanoparticles" — dynamical fidelity, not just structure.
This module provides the standard dynamical diagnostics:

* :class:`TrajectoryRecorder` — accumulates unwrapped positions
  (minimum-image displacement integration, so periodic wrapping never
  corrupts displacements),
* :func:`mean_squared_displacement` — MSD(t) over all time origins,
* :func:`diffusion_coefficient` — Einstein-relation fit
  ``MSD = 2 d D t`` over a chosen window.

For Langevin dynamics the exact free-particle result ``D = k_B T /
(m gamma)`` makes these routines sharply testable.
"""

from __future__ import annotations

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.validation import check_positive

__all__ = [
    "TrajectoryRecorder",
    "mean_squared_displacement",
    "diffusion_coefficient",
]


class TrajectoryRecorder:
    """Records unwrapped particle trajectories across periodic boundaries.

    Call :meth:`sample` after every block of integrator steps; frame-to-
    frame displacements are taken minimum-image in x/y, so particles that
    wrap around the box keep continuous unwrapped coordinates.  Frames
    must therefore be close enough in time that no particle travels more
    than half a box length between samples.
    """

    def __init__(self, system: ParticleSystem):
        self._box = system.box
        self._last = system.x.copy()
        self._unwrapped = system.x.copy()
        self.frames: list[np.ndarray] = [self._unwrapped.copy()]

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def sample(self, system: ParticleSystem) -> None:
        dr = self._box.minimum_image(system.x - self._last)
        self._unwrapped = self._unwrapped + dr
        self._last = system.x.copy()
        self.frames.append(self._unwrapped.copy())

    def trajectory(self) -> np.ndarray:
        """(n_frames, n_particles, 3) unwrapped positions."""
        return np.stack(self.frames)


def mean_squared_displacement(
    trajectory: np.ndarray, max_lag: int | None = None, axes: tuple[int, ...] = (0, 1, 2)
) -> np.ndarray:
    """MSD(lag) averaged over particles and all time origins.

    Parameters
    ----------
    trajectory:
        (n_frames, n_particles, 3) unwrapped positions.
    max_lag:
        Largest lag (default: n_frames // 2).
    axes:
        Cartesian components to include (e.g. ``(0, 1)`` for in-plane
        diffusion in the slit geometry, where z is confined).

    Returns
    -------
    ndarray of shape (max_lag + 1,), MSD at lags 0..max_lag.
    """
    traj = np.asarray(trajectory, dtype=float)
    if traj.ndim != 3 or traj.shape[2] != 3:
        raise ValueError(f"trajectory must be (frames, particles, 3), got {traj.shape}")
    n = traj.shape[0]
    if n < 2:
        raise ValueError("need at least 2 frames")
    if max_lag is None:
        max_lag = n // 2
    max_lag = int(min(max_lag, n - 1))
    if max_lag < 1:
        raise ValueError("max_lag must be >= 1")
    sel = traj[:, :, list(axes)]
    msd = np.zeros(max_lag + 1)
    for lag in range(1, max_lag + 1):
        diff = sel[lag:] - sel[:-lag]
        msd[lag] = float(np.mean(np.sum(diff * diff, axis=-1)))
    return msd


def diffusion_coefficient(
    msd: np.ndarray,
    dt_per_lag: float,
    *,
    n_dims: int = 3,
    fit_start_fraction: float = 0.2,
) -> float:
    """Einstein-relation diffusion constant from an MSD curve.

    Fits ``MSD = 2 n_dims D t`` by least squares over the tail of the
    curve (skipping the ballistic/short-time regime).
    """
    check_positive("dt_per_lag", dt_per_lag)
    if n_dims < 1 or n_dims > 3:
        raise ValueError("n_dims must be 1, 2 or 3")
    if not 0.0 <= fit_start_fraction < 1.0:
        raise ValueError("fit_start_fraction must be in [0, 1)")
    msd = np.asarray(msd, dtype=float).ravel()
    if msd.size < 4:
        raise ValueError("MSD curve too short to fit")
    lags = np.arange(msd.size) * dt_per_lag
    start = max(1, int(fit_start_fraction * msd.size))
    t = lags[start:]
    y = msd[start:]
    # Through-origin least squares: slope = sum(t y) / sum(t^2).
    slope = float(np.dot(t, y) / np.dot(t, t))
    return slope / (2.0 * n_dims)
