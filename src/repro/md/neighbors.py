"""Persistent Verlet-list force engine.

The cell-list kernel in :mod:`repro.md.forces` rebuilds its spatial
structure on *every* force call.  A Verlet (neighbor) list amortizes
that cost: candidate pairs are gathered once out to ``rcut + skin`` and
reused across timesteps, and the list is rebuilt only when some particle
has drifted more than ``skin / 2`` from the position it had at build
time.  Until that happens, the list provably still contains every pair
closer than ``rcut`` — two particles can close their mutual distance by
at most ``2 * (skin / 2) = skin``.

:class:`ForceEngine` wraps a :class:`NeighborList` together with the
:class:`~repro.md.forces.PairTable` and per-step scratch buffers, and is
callable with the ``ForceFn`` signature the integrators expect, so one
engine object can be threaded through the MD loop
(:mod:`repro.md.integrators`), Monte-Carlo moves (:mod:`repro.md.mc`),
and surrogate training-data generation
(:mod:`repro.md.nanoconfinement`, :mod:`repro.md.autotune_probes`),
all sharing one persistent list.
"""

from __future__ import annotations

import numpy as np

from repro.md.forces import (
    CellList,
    PairScratch,
    PairTable,
    accumulate_pair_forces,
    pair_displacements,
    wall_forces,
)
from repro.md.system import ParticleSystem
from repro.util.validation import check_positive

__all__ = ["NeighborList", "ForceEngine", "DEFAULT_SKIN"]

#: Default skin distance (reduced LJ units).  Chosen so that at the
#: exemplar's temperatures/timesteps a rebuild happens every O(10)
#: steps: larger skins mean fewer rebuilds but more candidate pairs per
#: force call; 0.4 sigma sits near the flat minimum of that trade-off
#: for the densities the nanoconfinement systems reach.
DEFAULT_SKIN = 0.4


class NeighborList:
    """Verlet list with a skin distance over a cell-list build.

    Parameters
    ----------
    system:
        Configuration to build from.
    rcut:
        Largest interaction cutoff the list must serve.
    skin:
        Extra capture radius; pairs are kept out to ``rcut + skin``.

    Attributes
    ----------
    i, j:
        Candidate pair index arrays (each unordered pair appears once).
    n_builds:
        Total number of builds, including the initial one.
    """

    def __init__(
        self,
        system: ParticleSystem,
        rcut: float,
        skin: float = DEFAULT_SKIN,
        *,
        scratch: PairScratch | None = None,
    ):
        self.rcut = check_positive("rcut", rcut)
        self.skin = check_positive("skin", skin)
        self.n_builds = 0
        self.i = np.empty(0, dtype=int)
        self.j = np.empty(0, dtype=int)
        self._x_ref: np.ndarray | None = None
        self._adj: np.ndarray | None = None
        self._adj_starts: np.ndarray | None = None
        # Shared with the owning ForceEngine: builds run their
        # displacement/distance pass through the same grow-only buffers
        # the per-step kernel uses, instead of allocating per build.
        self._scratch = scratch
        self.build(system)

    @property
    def n_rebuilds(self) -> int:
        """Rebuilds after the initial construction."""
        return self.n_builds - 1

    @property
    def n_pairs(self) -> int:
        """Number of candidate pairs currently stored."""
        return int(self.i.size)

    def build(self, system: ParticleSystem) -> None:
        """(Re)build the list from the current positions."""
        r_list = self.rcut + self.skin
        cl = CellList(system, r_list)
        ci, cj = cl.candidate_pairs()
        if ci.size:
            if self._scratch is not None:
                _, r2 = pair_displacements(system, ci, cj, self._scratch)
            else:
                dr = system.box.minimum_image(system.x[ci] - system.x[cj])
                r2 = np.einsum("ij,ij->i", dr, dr)
            keep = r2 <= r_list * r_list
            self.i, self.j = ci[keep], cj[keep]
        else:
            self.i = np.empty(0, dtype=int)
            self.j = np.empty(0, dtype=int)
        self._x_ref = system.x.copy()
        self._adj = None  # adjacency is derived lazily from (i, j)
        self._adj_starts = None
        self.n_builds += 1

    def max_displacement(self, system: ParticleSystem) -> float:
        """Largest particle displacement since the last build."""
        if self._x_ref is None or self._x_ref.shape != system.x.shape:
            return np.inf
        d = system.box.minimum_image(system.x - self._x_ref)
        if d.size == 0:
            return 0.0
        return float(np.sqrt(np.max(np.einsum("ij,ij->i", d, d))))

    def displacement_of(self, system: ParticleSystem, index: int) -> float:
        """Displacement of one particle since the last build."""
        if self._x_ref is None or self._x_ref.shape != system.x.shape:
            return np.inf
        d = system.box.minimum_image(system.x[index] - self._x_ref[index])
        return float(np.sqrt(np.dot(d, d)))

    def needs_rebuild(self, system: ParticleSystem) -> bool:
        """True when some displacement exceeded ``skin / 2``.

        Past that point two particles may have closed their mutual
        distance by more than ``skin``, so a pair inside ``rcut`` could
        be missing from the list.
        """
        return self.max_displacement(system) > 0.5 * self.skin

    def ensure_current(self, system: ParticleSystem) -> bool:
        """Rebuild if stale; returns whether a rebuild happened."""
        if self.needs_rebuild(system):
            self.build(system)
            return True
        return False

    def neighbors_of(self, index: int) -> np.ndarray:
        """Candidate neighbors of one particle (both pair directions).

        Backed by a CSR adjacency built lazily per list build; queries
        are O(degree), which is what makes single-particle MC moves
        O(neighbors) instead of O(N).
        """
        if self._adj is None:
            n = len(self._x_ref) if self._x_ref is not None else 0
            src = np.concatenate([self.i, self.j])
            dst = np.concatenate([self.j, self.i])
            order = np.argsort(src, kind="stable")
            self._adj = dst[order]
            self._adj_starts = np.searchsorted(src[order], np.arange(n + 1))
        return self._adj[self._adj_starts[index] : self._adj_starts[index + 1]]


class ForceEngine:
    """Persistent Verlet-list force evaluator for one :class:`PairTable`.

    Usable directly as a ``ForceFn`` — ``engine(system)`` (or
    ``engine(system, table)`` with the bound table, which is what the
    integrators pass) returns ``(forces, potential_energy)`` exactly
    like :func:`~repro.md.forces.pairwise_forces`, but reuses the
    neighbor list and scratch buffers across calls, rebuilding only on
    the ``skin / 2`` displacement criterion.

    Parameters
    ----------
    table:
        Interactions; the engine is permanently bound to this table.
    skin:
        Verlet skin distance handed to the :class:`NeighborList`.
    tracer:
        Optional duck-typed :class:`~repro.obs.trace.Tracer`; when set,
        every :meth:`compute` call is recorded as a span of kind
        ``"md.rebuild"`` or ``"md.reuse"`` depending on whether the
        neighbor list had to be reconstructed.
    registry:
        Optional duck-typed :class:`~repro.obs.metrics.MetricRegistry`;
        when set, the engine mirrors its build counter into
        ``md.neighbor.builds`` / ``md.neighbor.reuses`` counters and the
        current pair count into the ``md.neighbor.pairs`` gauge.  Both
        hooks are duck-typed so :mod:`repro.md` never imports
        :mod:`repro.obs`.
    reuse_buffers:
        When True (default) the engine owns a
        :class:`~repro.md.forces.PairScratch` and runs the fully reused
        force kernel: no O(n_pairs) allocation per call, combined
        energy+force potential evaluation, in-place Newton scatter.
        Results are bitwise identical to the allocating path — the flag
        exists for A/B benchmarking
        (``python -m repro.md.bench``, ``kernel`` section), not because
        semantics differ.
    """

    def __init__(
        self,
        table: PairTable,
        *,
        skin: float = DEFAULT_SKIN,
        tracer=None,
        registry=None,
        reuse_buffers: bool = True,
    ):
        self.table = table
        self.skin = check_positive("skin", skin)
        self.nlist: NeighborList | None = None
        self._fr_scratch: np.ndarray | None = None
        self._scratch: PairScratch | None = PairScratch() if reuse_buffers else None
        self.tracer = tracer
        self.registry = registry

    # -- bookkeeping ---------------------------------------------------

    @property
    def n_builds(self) -> int:
        """Total neighbor-list builds performed so far."""
        return self.nlist.n_builds if self.nlist is not None else 0

    @property
    def n_rebuilds(self) -> int:
        """Neighbor-list rebuilds after the initial construction."""
        return self.nlist.n_rebuilds if self.nlist is not None else 0

    @property
    def reuse_buffers(self) -> bool:
        """Whether the reused (scratch-buffer) force kernel is active."""
        return self._scratch is not None

    def reset(self) -> None:
        """Drop the neighbor list (e.g. when switching systems)."""
        self.nlist = None
        self._fr_scratch = None
        if self._scratch is not None:
            self._scratch = PairScratch()

    def prepare(self, system: ParticleSystem) -> bool:
        """Build the list for ``system``, or refresh it if stale.

        Returns whether a (re)build happened — the flag the tracer uses
        to classify the enclosing force call as rebuild vs. reuse.
        """
        rcut = self.table.max_rcut
        if not self.table.pair_potentials or rcut <= 0 or system.n < 2:
            return False
        if (
            self.nlist is None
            or self.nlist.rcut != rcut
            or self.nlist._x_ref is None
            or self.nlist._x_ref.shape != system.x.shape
        ):
            self.nlist = NeighborList(system, rcut, self.skin, scratch=self._scratch)
            self._fr_scratch = None
            self._note_build(rebuilt=True)
            return True
        if self.nlist.ensure_current(system):
            self._fr_scratch = None
            self._note_build(rebuilt=True)
            return True
        self._note_build(rebuilt=False)
        return False

    def _note_build(self, *, rebuilt: bool) -> None:
        """Mirror one prepare outcome into the bound metric registry."""
        if self.registry is None:
            return
        name = "md.neighbor.builds" if rebuilt else "md.neighbor.reuses"
        self.registry.counter(name).inc()
        if self.nlist is not None:
            self.registry.gauge("md.neighbor.pairs").set(self.nlist.n_pairs)

    # -- full-system forces --------------------------------------------

    def compute(self, system: ParticleSystem) -> tuple[np.ndarray, float]:
        """Forces and potential energy at the current positions."""
        if self.tracer is None:
            return self._compute(system)
        sid = self.tracer.open_span("force.compute", "md.reuse")
        rebuilt = False
        try:
            rebuilt = self.prepare(system)
            return self._compute(system, prepared=True)
        finally:
            self.tracer.close_span(
                sid,
                kind="md.rebuild" if rebuilt else "md.reuse",
                attrs={
                    "n": int(system.n),
                    "n_pairs": self.nlist.n_pairs if self.nlist else 0,
                },
            )

    def _compute(
        self, system: ParticleSystem, *, prepared: bool = False
    ) -> tuple[np.ndarray, float]:
        # Freshly allocated on purpose: integrators and MC callers hold
        # the returned array across calls, so it cannot be a reused
        # buffer (see the analysis baseline entry for PERF003).
        forces = np.zeros_like(system.x)
        energy = 0.0
        if not prepared:
            self.prepare(system)
        if self.nlist is not None and self.nlist.n_pairs:
            if self._scratch is not None:
                energy += accumulate_pair_forces(
                    system,
                    self.table,
                    self.nlist.i,
                    self.nlist.j,
                    forces,
                    scratch=self._scratch,
                )
            else:
                if (
                    self._fr_scratch is None
                    or self._fr_scratch.size != self.nlist.n_pairs
                ):
                    self._fr_scratch = np.zeros(self.nlist.n_pairs)
                energy += accumulate_pair_forces(
                    system,
                    self.table,
                    self.nlist.i,
                    self.nlist.j,
                    forces,
                    fr_scratch=self._fr_scratch,
                )
        if self.table.wall is not None:
            fw, ew = wall_forces(system, self.table.wall)
            forces += fw
            energy += ew
        return forces, energy

    def __call__(
        self, system: ParticleSystem, table: PairTable | None = None
    ) -> tuple[np.ndarray, float]:
        """``ForceFn`` adapter; ``table`` must be the bound table."""
        if table is not None and table is not self.table:
            raise ValueError(
                "ForceEngine is bound to its own PairTable; construct the "
                "integrator with the same table the engine was built from"
            )
        return self.compute(system)

    # -- single-particle energies (Monte-Carlo moves) ------------------

    def particle_energy(
        self,
        system: ParticleSystem,
        index: int,
        position: np.ndarray | None = None,
    ) -> float:
        """Interaction energy of one particle with neighbors + walls.

        ``position`` evaluates the particle *as if* it sat there
        (positions are not mutated) — the trial-move primitive.  The
        caller is responsible for list freshness (see
        :meth:`prepare` / :meth:`note_moved`); a trial displacement must
        stay within ``skin / 2`` of the build reference for the
        candidate set to be provably complete.
        """
        x_i = system.x[index] if position is None else np.asarray(position, dtype=float)
        energy = 0.0
        if self.nlist is not None and self.table.pair_potentials:
            nbrs = self.nlist.neighbors_of(index)
            if nbrs.size:
                dr = system.box.minimum_image(x_i - system.x[nbrs])
                r2 = np.einsum("ij,ij->i", dr, dr)
                qq = system.q[index] * system.q[nbrs]
                for pot in self.table.pair_potentials:
                    mask = r2 < pot.rcut * pot.rcut
                    if not np.any(mask):
                        continue
                    qqm = qq[mask] if pot.needs_charge else None
                    energy += float(np.sum(pot.energy(r2[mask], qqm)))
        if self.table.wall is not None:
            z = float(x_i[2])
            dz = np.array([max(z, 1e-6), max(system.box.h - z, 1e-6)])
            energy += float(np.sum(self.table.wall.wall_energy(dz)))
        return energy

    def note_moved(
        self, system: ParticleSystem, index: int, *, margin: float = 0.0
    ) -> None:
        """Record that particle ``index`` moved; rebuild when needed.

        Rebuilds once the particle's displacement from its build
        reference exceeds ``skin / 2 - margin``.  A Monte-Carlo caller
        passes ``margin = sqrt(3) * max_displacement`` (the largest
        possible trial step) so that the *next* trial position is still
        guaranteed to sit inside the ``skin / 2`` safety sphere.
        """
        if self.nlist is None:
            return
        if self.nlist.displacement_of(system, index) > 0.5 * self.skin - margin:
            self.nlist.build(system)
            self._fr_scratch = None
